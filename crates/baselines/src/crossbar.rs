//! The `N × N` crossbar — the trivial non-blocking switch the paper's §1
//! rules out on cost grounds: `O(N²)` crosspoints against the BNB's
//! `O(N·log³N)` switch slices.
//!
//! Unlike the multistage networks, the crossbar natively supports *partial*
//! mappings (idle inputs), so it is also the reference implementation the
//! partial-traffic simulator tests compare against.

use bnb_core::cost::HardwareCost;
use bnb_core::delay::PropagationDelay;
use bnb_core::error::RouteError;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// An `n × n` crossbar (any `n ≥ 1`, not restricted to powers of two).
///
/// # Example
///
/// ```
/// use bnb_baselines::crossbar::Crossbar;
/// use bnb_topology::record::Record;
///
/// let xbar = Crossbar::new(4);
/// let out = xbar.route_partial(&[
///     Some(Record::new(2, 7)),
///     None,
///     Some(Record::new(0, 9)),
///     None,
/// ])?;
/// assert_eq!(out[2], Some(Record::new(2, 7)));
/// assert_eq!(out[0], Some(Record::new(0, 9)));
/// assert_eq!(out[1], None);
/// # Ok::<(), bnb_core::RouteError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossbar {
    n: usize,
}

impl Crossbar {
    /// An `n × n` crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "crossbar needs at least one port");
        Crossbar { n }
    }

    /// Port count.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Crosspoint count: `n²`.
    pub fn crosspoint_count(&self) -> usize {
        self.n * self.n
    }

    /// Routes a full permutation of records.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`],
    /// [`RouteError::DestinationTooWide`] or
    /// [`RouteError::DuplicateDestination`] on malformed input.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        if records.len() != self.n {
            return Err(RouteError::WidthMismatch {
                expected: self.n,
                actual: records.len(),
            });
        }
        let partial: Vec<Option<Record>> = records.iter().copied().map(Some).collect();
        let out = self.route_partial(&partial)?;
        Ok(out
            .into_iter()
            .map(|o| o.expect("full input fills every output"))
            .collect())
    }

    /// Routes a partial mapping: idle inputs are `None`, unclaimed outputs
    /// come back `None`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`],
    /// [`RouteError::DestinationTooWide`] or
    /// [`RouteError::DuplicateDestination`] (two records claiming one
    /// output port).
    pub fn route_partial(
        &self,
        records: &[Option<Record>],
    ) -> Result<Vec<Option<Record>>, RouteError> {
        if records.len() != self.n {
            return Err(RouteError::WidthMismatch {
                expected: self.n,
                actual: records.len(),
            });
        }
        let mut out: Vec<Option<Record>> = vec![None; self.n];
        let mut owner = vec![usize::MAX; self.n];
        for (i, slot) in records.iter().enumerate() {
            let Some(r) = slot else { continue };
            if r.dest() >= self.n {
                return Err(RouteError::DestinationTooWide {
                    dest: r.dest(),
                    n: self.n,
                });
            }
            if owner[r.dest()] != usize::MAX {
                return Err(RouteError::DuplicateDestination {
                    dest: r.dest(),
                    first_input: owner[r.dest()],
                    second_input: i,
                });
            }
            owner[r.dest()] = i;
            out[r.dest()] = Some(*r);
        }
        Ok(out)
    }

    /// Hardware cost: `n²` crosspoints, modeled as switches.
    pub fn cost(&self) -> HardwareCost {
        HardwareCost {
            switches: (self.n * self.n) as u64,
            function_nodes: 0,
            adder_slices: 0,
        }
    }

    /// Propagation delay: a single switch traversal.
    pub fn delay(&self) -> PropagationDelay {
        PropagationDelay {
            switch_units: 1,
            fn_units: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};

    #[test]
    fn routes_any_permutation() {
        let xbar = Crossbar::new(8);
        for k in [0u64, 1, 1000, 40_319] {
            let p = Permutation::nth_lexicographic(8, k);
            let out = xbar.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out));
        }
    }

    #[test]
    fn supports_non_power_of_two_sizes() {
        let xbar = Crossbar::new(5);
        let p = Permutation::try_from(vec![4, 3, 2, 1, 0]).unwrap();
        let out = xbar.route(&records_for_permutation(&p)).unwrap();
        assert!(all_delivered(&out));
    }

    #[test]
    fn partial_mapping_leaves_gaps() {
        let xbar = Crossbar::new(3);
        let out = xbar
            .route_partial(&[None, Some(Record::new(0, 5)), None])
            .unwrap();
        assert_eq!(out, vec![Some(Record::new(0, 5)), None, None]);
    }

    #[test]
    fn output_conflicts_are_rejected() {
        let xbar = Crossbar::new(3);
        let err = xbar
            .route_partial(&[Some(Record::new(1, 0)), Some(Record::new(1, 1)), None])
            .unwrap_err();
        assert!(matches!(
            err,
            RouteError::DuplicateDestination { dest: 1, .. }
        ));
    }

    #[test]
    fn cost_is_quadratic() {
        assert_eq!(Crossbar::new(16).crosspoint_count(), 256);
        assert_eq!(Crossbar::new(16).cost().switches, 256);
        assert_eq!(Crossbar::new(16).delay().total_units(), 1);
    }

    #[test]
    fn validates_width_and_destination() {
        let xbar = Crossbar::new(2);
        assert!(xbar.route(&[Record::new(0, 0)]).is_err());
        assert!(xbar.route(&[Record::new(5, 0), Record::new(1, 0)]).is_err());
    }
}
