//! The Benes rearrangeable network with Waksman's looping algorithm
//! (paper refs \[5, 6\]).
//!
//! The Benes network routes all `N!` permutations with only
//! `(2·log N − 1)·N/2` switches — far cheaper than any self-routing
//! permutation network — but setting its switches requires a **global**
//! routing computation over the whole permutation (the looping algorithm).
//! The paper's §1 argues this setup cost is "rather costly than the network
//! itself"; the routing-time benches quantify that claim against the BNB
//! network's local, constant-time-per-switch decisions.

use bnb_core::error::RouteError;
use bnb_topology::connection::require_power_of_two;
use bnb_topology::perm::Permutation;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// Switch settings for one Benes network, computed by the looping
/// algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenesRouting {
    n: usize,
    /// Input-stage switch settings: `true` = cross.
    first: Vec<bool>,
    /// Output-stage switch settings: `true` = cross.
    last: Vec<bool>,
    upper: Option<Box<BenesRouting>>,
    lower: Option<Box<BenesRouting>>,
    /// Terminal assignments performed while computing this routing
    /// (including recursion) — the global work the looping algorithm does.
    steps: usize,
}

impl BenesRouting {
    /// Total looping-algorithm steps (terminal assignments) spent computing
    /// this routing, including recursion.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// `true` if this routing respects the Waksman reduction: the last
    /// output-stage switch of every recursion level is set straight (so
    /// the physical switch can be removed and replaced by wires).
    pub fn is_waksman_reduced(&self) -> bool {
        if self.n == 2 {
            return true; // the 2-input base network keeps its one switch
        }
        self.last.last().is_none_or(|&cross| !cross)
            && self
                .upper
                .as_deref()
                .is_some_and(BenesRouting::is_waksman_reduced)
            && self
                .lower
                .as_deref()
                .is_some_and(BenesRouting::is_waksman_reduced)
    }

    /// Switches set to cross across all levels (a routing-density metric).
    pub fn cross_count(&self) -> usize {
        let own = self.first.iter().chain(&self.last).filter(|&&c| c).count();
        own + self.upper.as_deref().map_or(0, BenesRouting::cross_count)
            + self.lower.as_deref().map_or(0, BenesRouting::cross_count)
    }
}

/// An `N = 2^m`-input Benes network.
///
/// # Example
///
/// ```
/// use bnb_baselines::benes::BenesNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net = BenesNetwork::with_inputs(8)?;
/// let p = Permutation::try_from(vec![3, 7, 4, 0, 6, 2, 5, 1])?;
/// let routing = net.route_permutation(&p)?;          // global computation
/// let out = net.apply(&routing, &records_for_permutation(&p))?;
/// assert!(all_delivered(&out));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenesNetwork {
    m: usize,
}

impl BenesNetwork {
    /// A Benes network with `2^m` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "network needs at least 2 inputs");
        BenesNetwork { m }
    }

    /// A Benes network with `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let m = require_power_of_two(n)?;
        if m == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(Self::new(m))
    }

    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Network width.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// Number of switch stages: `2·log N − 1`.
    pub fn stage_count(&self) -> usize {
        2 * self.m - 1
    }

    /// Total 2×2 switches: `(2·log N − 1)·N/2`.
    pub fn switch_count(&self) -> usize {
        self.stage_count() * self.inputs() / 2
    }

    /// Total 2×2 switches after Waksman's reduction (one output switch
    /// removed per recursion node): `N·log N − N + 1`.
    pub fn waksman_switch_count(&self) -> usize {
        let n = self.inputs();
        n * self.m - n + 1
    }

    /// Computes switch settings realizing `perm` with the looping
    /// algorithm. This is the *global* routing computation self-routing
    /// networks avoid.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] if `perm.len()` differs from
    /// the network width.
    pub fn route_permutation(&self, perm: &Permutation) -> Result<BenesRouting, RouteError> {
        let n = self.inputs();
        if perm.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: perm.len(),
            });
        }
        Ok(loop_route(perm, false))
    }

    /// Like [`BenesNetwork::route_permutation`], but produces a
    /// Waksman-reduced setting: the last output-stage switch of every
    /// recursion level is forced straight, so `N/2 − 1` switches (one per
    /// recursion node of size ≥ 4) can be deleted from the hardware
    /// (Waksman 1968, paper ref \[5\]). The
    /// resulting routing satisfies
    /// [`BenesRouting::is_waksman_reduced`].
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] if `perm.len()` differs from
    /// the network width.
    pub fn route_permutation_waksman(
        &self,
        perm: &Permutation,
    ) -> Result<BenesRouting, RouteError> {
        let n = self.inputs();
        if perm.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: perm.len(),
            });
        }
        Ok(loop_route(perm, true))
    }

    /// Pushes records through the network under precomputed settings.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] if the record count or the
    /// routing's width differs from the network width.
    pub fn apply(
        &self,
        routing: &BenesRouting,
        records: &[Record],
    ) -> Result<Vec<Record>, RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        if routing.n != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: routing.n,
            });
        }
        Ok(apply_rec(routing, records.to_vec()))
    }

    /// Convenience: compute the routing for the permutation implied by the
    /// records' destinations and apply it.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`],
    /// [`RouteError::DestinationTooWide`] or
    /// [`RouteError::DuplicateDestination`] on malformed input.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        let mut images = Vec::with_capacity(n);
        for r in records {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
            images.push(r.dest());
        }
        let perm = Permutation::try_from(images).map_err(|e| match e {
            bnb_topology::TopologyError::DuplicateImage {
                value,
                first_index,
                second_index,
            } => RouteError::DuplicateDestination {
                dest: value,
                first_input: first_index,
                second_input: second_index,
            },
            other => RouteError::Topology(other),
        })?;
        let routing = self.route_permutation(&perm)?;
        self.apply(&routing, records)
    }
}

/// One terminal of the looping algorithm's constraint graph.
#[derive(Debug, Clone, Copy)]
enum Terminal {
    In(usize),
    Out(usize),
}

/// The looping algorithm (Waksman 1968 / Opferman–Tsao-Wu): assign every
/// input/output terminal to the upper (0) or lower (1) subnetwork so that
/// paired terminals differ and connected terminals agree, then recurse on
/// the two sub-permutations. With `waksman = true`, the chain is seeded so
/// the last output-stage switch stays straight and can be removed from the
/// hardware.
fn loop_route(perm: &Permutation, waksman: bool) -> BenesRouting {
    let n = perm.len();
    if n == 2 {
        return BenesRouting {
            n,
            first: vec![perm.apply(0) == 1],
            last: vec![],
            upper: None,
            lower: None,
            steps: 1,
        };
    }
    let inv = perm.inverse();
    let mut in_sub = vec![u8::MAX; n]; // subnetwork of each input terminal
    let mut out_sub = vec![u8::MAX; n];
    let mut steps = 0usize;
    let mut worklist: Vec<(Terminal, u8)> = Vec::new();
    let mut propagate =
        |seed: (Terminal, u8), in_sub: &mut Vec<u8>, out_sub: &mut Vec<u8>, steps: &mut usize| {
            worklist.push(seed);
            while let Some((t, s)) = worklist.pop() {
                match t {
                    Terminal::In(i) => {
                        if in_sub[i] != u8::MAX {
                            debug_assert_eq!(in_sub[i], s, "inconsistent looping constraint");
                            continue;
                        }
                        in_sub[i] = s;
                        *steps += 1;
                        // Connected output keeps the subnetwork; paired input
                        // takes the opposite one.
                        worklist.push((Terminal::Out(perm.apply(i)), s));
                        worklist.push((Terminal::In(i ^ 1), s ^ 1));
                    }
                    Terminal::Out(o) => {
                        if out_sub[o] != u8::MAX {
                            debug_assert_eq!(out_sub[o], s, "inconsistent looping constraint");
                            continue;
                        }
                        out_sub[o] = s;
                        *steps += 1;
                        worklist.push((Terminal::In(inv.apply(o)), s));
                        worklist.push((Terminal::Out(o ^ 1), s ^ 1));
                    }
                }
            }
        };
    if waksman {
        // Fix the removed output switch: output n−2 via upper, n−1 via
        // lower — i.e. straight wiring where the switch used to be.
        propagate(
            (Terminal::Out(n - 1), 1),
            &mut in_sub,
            &mut out_sub,
            &mut steps,
        );
    }
    #[allow(clippy::needless_range_loop)] // start indexes terminal state
    for start in 0..n {
        if in_sub[start] == u8::MAX {
            propagate(
                (Terminal::In(start), 0),
                &mut in_sub,
                &mut out_sub,
                &mut steps,
            );
        }
    }
    // Build the two sub-permutations: the subnet-s input at input switch t
    // enters sub-network port t and must exit at the port of its output
    // switch.
    let half = n / 2;
    let mut upper_images = vec![0usize; half];
    let mut lower_images = vec![0usize; half];
    #[allow(clippy::needless_range_loop)] // input indexes both perm and in_sub
    for input in 0..n {
        let output = perm.apply(input);
        let (t_in, t_out) = (input / 2, output / 2);
        if in_sub[input] == 0 {
            upper_images[t_in] = t_out;
        } else {
            lower_images[t_in] = t_out;
        }
    }
    let upper_perm = Permutation::try_from(upper_images).expect("looping yields a bijection");
    let lower_perm = Permutation::try_from(lower_images).expect("looping yields a bijection");
    let upper = loop_route(&upper_perm, waksman);
    let lower = loop_route(&lower_perm, waksman);
    steps += upper.steps + lower.steps;
    let first = (0..half).map(|t| in_sub[2 * t] == 1).collect();
    let last = (0..half).map(|t| out_sub[2 * t] == 1).collect();
    BenesRouting {
        n,
        first,
        last,
        upper: Some(Box::new(upper)),
        lower: Some(Box::new(lower)),
        steps,
    }
}

fn apply_rec(routing: &BenesRouting, lines: Vec<Record>) -> Vec<Record> {
    let n = lines.len();
    debug_assert_eq!(n, routing.n);
    if n == 2 {
        let mut lines = lines;
        if routing.first[0] {
            lines.swap(0, 1);
        }
        return lines;
    }
    let half = n / 2;
    let mut upper_in = Vec::with_capacity(half);
    let mut lower_in = Vec::with_capacity(half);
    for t in 0..half {
        let (a, b) = (lines[2 * t], lines[2 * t + 1]);
        if routing.first[t] {
            upper_in.push(b);
            lower_in.push(a);
        } else {
            upper_in.push(a);
            lower_in.push(b);
        }
    }
    let upper_out = apply_rec(routing.upper.as_ref().expect("inner routing"), upper_in);
    let lower_out = apply_rec(routing.lower.as_ref().expect("inner routing"), lower_in);
    let mut out = Vec::with_capacity(n);
    for t in 0..half {
        if routing.last[t] {
            out.push(lower_out[t]);
            out.push(upper_out[t]);
        } else {
            out.push(upper_out[t]);
            out.push(lower_out[t]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn routes_all_permutations_n4_and_n8() {
        for (n, total) in [(4usize, 24u64), (8, 40_320)] {
            let net = BenesNetwork::with_inputs(n).unwrap();
            for k in 0..total {
                let p = Permutation::nth_lexicographic(n, k);
                let out = net.route(&records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "N={n} perm {p}");
            }
        }
    }

    #[test]
    fn routes_random_large_permutations() {
        let mut rng = StdRng::seed_from_u64(11);
        for m in [4usize, 7, 10] {
            let net = BenesNetwork::new(m);
            let n = 1 << m;
            for _ in 0..10 {
                let p = Permutation::random(n, &mut rng);
                let out = net.route(&records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "m = {m}");
            }
        }
    }

    #[test]
    fn switch_count_matches_closed_form() {
        for m in 1..=10usize {
            let net = BenesNetwork::new(m);
            assert_eq!(net.switch_count(), (2 * m - 1) * (1 << (m - 1)));
            assert_eq!(net.stage_count(), 2 * m - 1);
        }
    }

    #[test]
    fn looping_steps_grow_superlinearly() {
        // Global routing work is Θ(N log N): every terminal is assigned at
        // every recursion level.
        let mut rng = StdRng::seed_from_u64(12);
        let p_small = Permutation::random(16, &mut rng);
        let p_large = Permutation::random(256, &mut rng);
        let net_small = BenesNetwork::new(4);
        let net_large = BenesNetwork::new(8);
        let steps_small = net_small.route_permutation(&p_small).unwrap().steps();
        let steps_large = net_large.route_permutation(&p_large).unwrap().steps();
        assert!(
            steps_large > 16 * steps_small / 2,
            "steps must scale with N log N"
        );
    }

    #[test]
    fn duplicate_destinations_rejected() {
        let net = BenesNetwork::new(2);
        let records = vec![
            Record::new(0, 0),
            Record::new(0, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        assert!(matches!(
            net.route(&records),
            Err(RouteError::DuplicateDestination { dest: 0, .. })
        ));
    }

    #[test]
    fn apply_checks_widths() {
        let net = BenesNetwork::new(2);
        let p = Permutation::identity(4);
        let routing = net.route_permutation(&p).unwrap();
        assert!(net.apply(&routing, &[Record::new(0, 0)]).is_err());
        let other = BenesNetwork::new(3);
        assert!(other
            .apply(
                &routing,
                &records_for_permutation(&Permutation::identity(8))
            )
            .is_err());
    }

    #[test]
    fn waksman_reduction_routes_all_n8_permutations() {
        let net = BenesNetwork::new(3);
        for k in 0..40_320u64 {
            let p = Permutation::nth_lexicographic(8, k);
            let routing = net.route_permutation_waksman(&p).unwrap();
            assert!(routing.is_waksman_reduced(), "perm {p} not reduced");
            let out = net.apply(&routing, &records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p} mis-routed under Waksman");
        }
    }

    #[test]
    fn waksman_reduction_routes_random_large_permutations() {
        let mut rng = StdRng::seed_from_u64(44);
        for m in [4usize, 6, 9] {
            let net = BenesNetwork::new(m);
            let n = 1 << m;
            for _ in 0..10 {
                let p = Permutation::random(n, &mut rng);
                let routing = net.route_permutation_waksman(&p).unwrap();
                assert!(routing.is_waksman_reduced(), "m = {m}");
                let out = net.apply(&routing, &records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "m = {m}");
            }
        }
    }

    #[test]
    fn waksman_switch_count_closed_form() {
        for m in 1..=10usize {
            let net = BenesNetwork::new(m);
            let n = 1usize << m;
            assert_eq!(net.waksman_switch_count(), n * m - n + 1);
            // The reduction removes exactly N/2 − 1 switches (one per
            // recursion node of size >= 4).
            assert_eq!(net.switch_count() - net.waksman_switch_count(), n / 2 - 1);
        }
    }

    #[test]
    fn plain_routing_is_not_necessarily_reduced() {
        // The unconstrained looping algorithm sometimes crosses the last
        // output switch; find one such permutation to prove the reduction
        // is a real constraint.
        let net = BenesNetwork::new(3);
        let mut found = false;
        for k in 0..5000u64 {
            let p = Permutation::nth_lexicographic(8, k * 8);
            if !net.route_permutation(&p).unwrap().is_waksman_reduced() {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "some plain routing should cross the reducible switch"
        );
    }

    #[test]
    fn cross_count_is_zero_for_identity_waksman() {
        // Identity under the Waksman seeding: everything straight.
        let net = BenesNetwork::new(3);
        let routing = net
            .route_permutation_waksman(&Permutation::identity(8))
            .unwrap();
        let out = net
            .apply(
                &routing,
                &records_for_permutation(&Permutation::identity(8)),
            )
            .unwrap();
        assert!(all_delivered(&out));
        assert_eq!(routing.cross_count(), 0);
    }

    #[test]
    fn n2_network_is_a_single_switch() {
        let net = BenesNetwork::new(1);
        let swap = Permutation::try_from(vec![1, 0]).unwrap();
        let out = net.route(&records_for_permutation(&swap)).unwrap();
        assert!(all_delivered(&out));
        assert_eq!(net.switch_count(), 1);
    }
}
