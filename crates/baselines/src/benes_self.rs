//! Self-routing on the Benes network for restricted permutation classes
//! (paper refs \[7, 8\]: Nassimi & Sahni 1981, Boppana & Raghavendra 1988).
//!
//! The paper's §1: *"rich classes of permutations can be self-routed on
//! the Benes network with simple switch setting strategies … switch
//! setting is determined simply by checking a bit of the destination
//! address. However, these algorithms cannot self-route all
//! permutations."* This module implements that strategy — in the input
//! half of the Benes recursion each switch is set by the least significant
//! remaining destination bit of its upper input, the output half is
//! destination-tag routed — and measures both sides of the claim:
//!
//! - every **BPC** (bit-permute-complement) permutation self-routes, for
//!   all `m! · N` members of the class;
//! - only ~29% of *all* permutations do at `N = 8` (11 632 of 40 320) —
//!   richer than omega's 10% but far from the BNB's 100%.

use std::error::Error;
use std::fmt;

use bnb_core::error::RouteError;
use bnb_topology::connection::require_power_of_two;
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use serde::{Deserialize, Serialize};

/// A self-routing conflict: two records demanded the same sub-network
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfRouteBlocked {
    /// Recursion level (0 = outermost, `log N` lines halving per level).
    pub level: usize,
    /// Sub-network output-switch index both records demanded.
    pub switch: usize,
}

impl fmt::Display for SelfRouteBlocked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "self-routing conflict at recursion level {}, output switch {}",
            self.level, self.switch
        )
    }
}

impl Error for SelfRouteBlocked {}

/// A Benes network operated purely by local bit checks.
///
/// # Example
///
/// ```
/// use bnb_baselines::benes_self::{bpc_permutation, SelfRoutingBenes};
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net = SelfRoutingBenes::with_inputs(8)?;
/// // A BPC permutation: destination bits are a permutation of the source
/// // bits, XORed with a complement mask — always self-routable.
/// let p = bpc_permutation(3, &[2, 0, 1], 0b101)?;
/// let out = net.route(&records_for_permutation(&p))?.expect("BPC self-routes");
/// assert!(all_delivered(&out));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfRoutingBenes {
    m: usize,
}

impl SelfRoutingBenes {
    /// A self-routing Benes over `2^m` lines.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "network needs at least 2 inputs");
        SelfRoutingBenes { m }
    }

    /// A self-routing Benes over `n` lines.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let m = require_power_of_two(n)?;
        if m == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(Self::new(m))
    }

    /// Network width.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// Attempts to self-route `records`. The outer error reports malformed
    /// input; the inner `Err` is a [`SelfRouteBlocked`] conflict — the
    /// permutation is outside this strategy's class.
    ///
    /// # Errors
    ///
    /// [`RouteError::WidthMismatch`] / [`RouteError::DestinationTooWide`] /
    /// [`RouteError::DuplicateDestination`] for malformed input.
    #[allow(clippy::type_complexity)]
    pub fn route(
        &self,
        records: &[Record],
    ) -> Result<Result<Vec<Record>, SelfRouteBlocked>, RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        let mut seen = vec![usize::MAX; n];
        for (i, r) in records.iter().enumerate() {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
            if seen[r.dest()] != usize::MAX {
                return Err(RouteError::DuplicateDestination {
                    dest: r.dest(),
                    first_input: seen[r.dest()],
                    second_input: i,
                });
            }
            seen[r.dest()] = i;
        }
        let tagged: Vec<(Record, usize)> = records.iter().map(|&r| (r, r.dest())).collect();
        Ok(route_rec(tagged, 0))
    }

    /// `true` if the bit-controlled strategy routes `perm`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len()` differs from the network width.
    pub fn is_self_routable(&self, perm: &Permutation) -> bool {
        self.route(&records_for_permutation(perm))
            .expect("well-formed by construction")
            .is_ok()
    }

    /// Counts self-routable permutations by enumeration (tiny networks).
    pub fn count_self_routable(&self) -> u64 {
        let n = self.inputs();
        let total: u64 = (1..=n as u64).product();
        (0..total)
            .filter(|&k| self.is_self_routable(&Permutation::nth_lexicographic(n, k)))
            .count() as u64
    }
}

/// Recursive self-routing: `lines[i].1` is the destination *relative to
/// this sub-network* (the original destination with already-consumed low
/// bits shifted out). Returns the records ordered by this sub-network's
/// output line.
///
/// Invariant: the relative destinations handed to each recursion level are
/// pairwise distinct (the caller validates the permutation at the top; the
/// in-subnet duplicate check enforces it below), so the output stage can
/// never conflict — both records reaching an output switch carry opposite
/// consumed bits.
fn route_rec(lines: Vec<(Record, usize)>, level: usize) -> Result<Vec<Record>, SelfRouteBlocked> {
    let n = lines.len();
    if n == 2 {
        let (a, b) = (lines[0], lines[1]);
        if a.1 == b.1 {
            return Err(SelfRouteBlocked { level, switch: 0 });
        }
        return Ok(if a.1 == 0 {
            vec![a.0, b.0]
        } else {
            vec![b.0, a.0]
        });
    }
    let half = n / 2;
    // Input stage: the upper input's relative-destination LSB decides the
    // switch — a purely local, single-bit decision (refs [7, 8] style).
    let mut up = Vec::with_capacity(half);
    let mut lo = Vec::with_capacity(half);
    // Remember the consumed bit of the record that will surface at each
    // sub-network output, for the output-stage placement.
    let mut up_parity = vec![false; half];
    let mut lo_parity = vec![false; half];
    for t in 0..half {
        let (a, b) = (lines[2 * t], lines[2 * t + 1]);
        let (u, l) = if a.1 & 1 == 0 { (a, b) } else { (b, a) };
        // Conflict detection: another record already claimed this
        // sub-network output.
        let (usw, lsw) = (u.1 / 2, l.1 / 2);
        up.push((u.0, usw));
        lo.push((l.0, lsw));
        up_parity[usw] = u.1 & 1 == 1;
        lo_parity[lsw] = l.1 & 1 == 1;
    }
    for sub in [&up, &lo] {
        let mut seen = vec![false; half];
        for &(_, d) in sub.iter() {
            if seen[d] {
                return Err(SelfRouteBlocked { level, switch: d });
            }
            seen[d] = true;
        }
    }
    let up_out = route_rec(up, level + 1)?;
    let lo_out = route_rec(lo, level + 1)?;
    // Output stage: out-switch t receives the upper sub-network's output t
    // and the lower's; the consumed bit places each on line 2t or 2t+1.
    // Distinct relative destinations guarantee the parities differ.
    let mut out = vec![Record::new(0, 0); n];
    for t in 0..half {
        let (pu, pl) = (up_parity[t], lo_parity[t]);
        debug_assert_ne!(
            pu, pl,
            "distinct relative destinations imply opposite parities"
        );
        out[2 * t + usize::from(pu)] = up_out[t];
        out[2 * t + usize::from(pl)] = lo_out[t];
    }
    Ok(out)
}

/// Builds the BPC (bit-permute-complement) permutation on `2^m` lines:
/// destination bit `b` is source bit `bit_perm[b]`, and the result is
/// XORed with `complement`.
///
/// # Errors
///
/// Returns a [`RouteError::Topology`] error if `bit_perm` is not a
/// permutation of `0..m` or `complement >= 2^m`.
pub fn bpc_permutation(
    m: usize,
    bit_perm: &[usize],
    complement: usize,
) -> Result<Permutation, RouteError> {
    let n = 1usize << m;
    if bit_perm.len() != m {
        return Err(RouteError::Topology(
            bnb_topology::TopologyError::SizeMismatch {
                expected: m,
                actual: bit_perm.len(),
            },
        ));
    }
    // Validate bit_perm is a bijection on 0..m.
    Permutation::try_from(bit_perm.to_vec()).map_err(RouteError::Topology)?;
    if complement >= n {
        return Err(RouteError::DestinationTooWide {
            dest: complement,
            n,
        });
    }
    Permutation::from_fn(n, |i| {
        let mut d = 0usize;
        for (b, &src_bit) in bit_perm.iter().enumerate() {
            d |= ((i >> src_bit) & 1) << b;
        }
        d ^ complement
    })
    .map_err(RouteError::Topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::record::all_delivered;

    fn all_bit_perms(m: usize) -> Vec<Vec<usize>> {
        let total: u64 = (1..=m as u64).product();
        (0..total)
            .map(|k| Permutation::nth_lexicographic(m, k).as_slice().to_vec())
            .collect()
    }

    /// Refs [7, 8] reproduced: every BPC permutation self-routes, at
    /// N = 8 and N = 16, for all m!·N class members.
    #[test]
    fn all_bpc_permutations_self_route() {
        for m in [3usize, 4] {
            let net = SelfRoutingBenes::new(m);
            let n = 1usize << m;
            for bp in all_bit_perms(m) {
                for mask in 0..n {
                    let p = bpc_permutation(m, &bp, mask).unwrap();
                    let out = net
                        .route(&records_for_permutation(&p))
                        .unwrap()
                        .unwrap_or_else(|b| panic!("BPC {bp:?}/{mask:b} blocked: {b}"));
                    assert!(all_delivered(&out), "BPC {bp:?}/{mask:b} misdelivered");
                }
            }
        }
    }

    /// The paper's point: the strategy cannot self-route all permutations
    /// — but it covers far more than omega's destination-tag class.
    #[test]
    fn self_routable_class_is_rich_but_incomplete() {
        let net = SelfRoutingBenes::new(3);
        let count = net.count_self_routable();
        assert_eq!(count, 11_632, "measured class size at N = 8");
        assert!(count > 4096, "richer than the omega class");
        assert!(count < 40_320, "but not all permutations");
    }

    /// Successful self-routes deliver correctly.
    #[test]
    fn successful_routes_deliver() {
        let net = SelfRoutingBenes::new(3);
        let mut delivered = 0;
        for k in (0..40_320u64).step_by(11) {
            let p = Permutation::nth_lexicographic(8, k);
            if let Ok(out) = net.route(&records_for_permutation(&p)).unwrap() {
                assert!(all_delivered(&out), "perm {p}");
                delivered += 1;
            }
        }
        assert!(delivered > 0);
    }

    /// The identity and all cyclic bit-rotations are BPC, hence routable.
    #[test]
    fn rotations_self_route_at_larger_sizes() {
        let net = SelfRoutingBenes::new(6);
        for r in 0..6usize {
            let bp: Vec<usize> = (0..6).map(|b| (b + r) % 6).collect();
            let p = bpc_permutation(6, &bp, 0).unwrap();
            let out = net.route(&records_for_permutation(&p)).unwrap().unwrap();
            assert!(all_delivered(&out), "rotation {r}");
        }
    }

    #[test]
    fn blocked_error_is_informative() {
        let net = SelfRoutingBenes::new(3);
        let mut blocked = None;
        for k in 0..40_320u64 {
            let p = Permutation::nth_lexicographic(8, k);
            if let Err(b) = net.route(&records_for_permutation(&p)).unwrap() {
                blocked = Some(b);
                break;
            }
        }
        let b = blocked.expect("some permutation must block");
        assert!(b.to_string().contains("conflict"));
    }

    #[test]
    fn bpc_generator_validates() {
        assert!(bpc_permutation(3, &[0, 1], 0).is_err());
        assert!(bpc_permutation(3, &[0, 1, 1], 0).is_err());
        assert!(bpc_permutation(3, &[0, 1, 2], 8).is_err());
        let id = bpc_permutation(3, &[0, 1, 2], 0).unwrap();
        assert!(id.is_identity());
    }

    #[test]
    fn route_validates_input() {
        let net = SelfRoutingBenes::new(2);
        assert!(net.route(&[Record::new(0, 0)]).is_err());
        let dup = vec![
            Record::new(0, 0),
            Record::new(0, 1),
            Record::new(1, 2),
            Record::new(2, 3),
        ];
        assert!(matches!(
            net.route(&dup),
            Err(RouteError::DuplicateDestination { .. })
        ));
    }
}
