//! [`PermutationNetwork`] implementations for every baseline and a
//! registry that builds the whole fleet at a given width — the generic
//! sweep harness used by tests, the report and the CLI `compare` command.

use bnb_core::error::RouteError;
use bnb_core::fabric::PermutationNetwork;
use bnb_core::network::BnbNetwork;
use bnb_topology::record::Record;

use crate::batcher::BatcherNetwork;
use crate::benes::BenesNetwork;
use crate::bitonic::BitonicNetwork;
use crate::cellular::CellularArray;
use crate::clos::ClosNetwork;
use crate::crossbar::Crossbar;
use crate::koppelman::KoppelmanModel;

impl PermutationNetwork for BatcherNetwork {
    fn inputs(&self) -> usize {
        BatcherNetwork::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "Batcher odd-even"
    }

    fn is_self_routing(&self) -> bool {
        true // sorting networks self-route by compare/exchange
    }
}

impl PermutationNetwork for BitonicNetwork {
    fn inputs(&self) -> usize {
        BitonicNetwork::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "bitonic"
    }

    fn is_self_routing(&self) -> bool {
        true
    }
}

impl PermutationNetwork for BenesNetwork {
    fn inputs(&self) -> usize {
        BenesNetwork::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "Benes + Waksman looping"
    }

    fn is_self_routing(&self) -> bool {
        false // global looping algorithm
    }
}

impl PermutationNetwork for KoppelmanModel {
    fn inputs(&self) -> usize {
        KoppelmanModel::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "Koppelman-Oruc SRPN (model)"
    }

    fn is_self_routing(&self) -> bool {
        true
    }
}

impl PermutationNetwork for Crossbar {
    fn inputs(&self) -> usize {
        Crossbar::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "crossbar"
    }

    fn is_self_routing(&self) -> bool {
        true
    }
}

impl PermutationNetwork for CellularArray {
    fn inputs(&self) -> usize {
        CellularArray::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "cellular array"
    }

    fn is_self_routing(&self) -> bool {
        true
    }
}

impl PermutationNetwork for ClosNetwork {
    fn inputs(&self) -> usize {
        ClosNetwork::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "Clos (edge coloring)"
    }

    fn is_self_routing(&self) -> bool {
        false // global edge-coloring computation
    }
}

/// Builds every permutation-capable network at `2^m` inputs.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn all_networks(m: usize) -> Vec<Box<dyn PermutationNetwork>> {
    assert!(m >= 1, "networks need at least 2 inputs");
    let n = 1usize << m;
    vec![
        Box::new(BnbNetwork::builder(m).data_width(64).build()),
        Box::new(BatcherNetwork::new(m)),
        Box::new(BitonicNetwork::new(m)),
        Box::new(BenesNetwork::new(m)),
        Box::new(KoppelmanModel::new(m)),
        Box::new(Crossbar::new(n)),
        Box::new(CellularArray::new(n)),
        Box::new(ClosNetwork::new(1 << (m / 2), 1 << (m - m / 2)).expect("power of two")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn the_whole_fleet_agrees_on_random_permutations() {
        let mut rng = StdRng::seed_from_u64(2026);
        for m in [2usize, 4, 6] {
            let fleet = all_networks(m);
            assert_eq!(fleet.len(), 8);
            let n = 1usize << m;
            for _ in 0..5 {
                let p = Permutation::random(n, &mut rng);
                let recs = records_for_permutation(&p);
                let reference = fleet[0].route(&recs).unwrap();
                assert!(all_delivered(&reference));
                for net in &fleet[1..] {
                    let out = net.route(&recs).unwrap();
                    assert_eq!(out, reference, "{} disagrees at m = {m}", net.name());
                }
            }
        }
    }

    #[test]
    fn self_routing_flags_match_the_paper_taxonomy() {
        let fleet = all_networks(3);
        let by_name = |name: &str| {
            fleet
                .iter()
                .find(|n| n.name().contains(name))
                .unwrap_or_else(|| panic!("{name} in fleet"))
        };
        assert!(by_name("BNB").is_self_routing());
        assert!(!by_name("Benes").is_self_routing());
        assert!(!by_name("Clos").is_self_routing());
        assert!(by_name("Batcher").is_self_routing());
    }

    #[test]
    fn fleet_widths_are_consistent() {
        for net in all_networks(5) {
            assert_eq!(net.inputs(), 32, "{}", net.name());
        }
    }
}
