//! The 0–1 principle: a comparator network sorts **all** inputs iff it
//! sorts every 0–1 vector (Knuth TAOCP vol. 3, §5.3.4).
//!
//! This gives a complete correctness check for the sorting-network
//! baselines at exponential-but-feasible cost (`2^n` vectors), far beyond
//! what `n!` permutation enumeration could reach: verifying Batcher at
//! `n = 16` needs 65 536 vectors instead of `20.9 × 10^12` permutations.

use serde::{Deserialize, Serialize};

use crate::batcher::Comparator;

/// Verdict of a 0–1 verification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZeroOneVerdict {
    /// The network sorts every 0–1 vector, hence every input.
    Sorts,
    /// A counterexample vector the network fails to sort.
    Fails {
        /// The unsorted-output witness, as input bits (LSB = line 0).
        input: u64,
        /// The network's (unsorted) output bits.
        output: u64,
    },
}

impl ZeroOneVerdict {
    /// `true` for [`ZeroOneVerdict::Sorts`].
    pub fn is_sorting(&self) -> bool {
        matches!(self, ZeroOneVerdict::Sorts)
    }
}

/// Applies the comparator schedule to a 0–1 vector packed into a `u64`
/// (bit `j` = line `j`; a comparator moves the 0 to `low`).
fn apply(n: usize, stages: &[Vec<Comparator>], mut v: u64) -> u64 {
    debug_assert!(n <= 64);
    for stage in stages {
        for c in stage {
            let lo = v >> c.low & 1;
            let hi = v >> c.high & 1;
            if lo > hi {
                v ^= (1 << c.low) | (1 << c.high);
            }
        }
    }
    v
}

/// Exhaustively verifies a comparator network over `n` lines by the 0–1
/// principle.
///
/// # Panics
///
/// Panics if `n > 24` (the check would exceed 16M vectors) or if any
/// comparator references a line `>= n`.
pub fn verify(n: usize, stages: &[Vec<Comparator>]) -> ZeroOneVerdict {
    assert!(n <= 24, "0-1 verification is exponential; n must be <= 24");
    for stage in stages {
        for c in stage {
            assert!(c.low < n && c.high < n, "comparator out of range");
        }
    }
    for input in 0..(1u64 << n) {
        let output = apply(n, stages, input);
        // Sorted ascending = all zeros below all ones = output + 1 is a
        // power of two shifted: output must be of the form 1...10...0 read
        // from the top, i.e. as bits: 0^k 1^(n-k) with ones at the TOP
        // lines. Ascending by line index means zeros first:
        // bits 0..k are 0, bits k..n are 1 -> output = ((1<<ones)-1) << (n-ones).
        let ones = output.count_ones() as u64;
        let expected = if ones == 0 {
            0
        } else {
            ((1u64 << ones) - 1) << (n as u64 - ones)
        };
        if output != expected {
            return ZeroOneVerdict::Fails { input, output };
        }
        if output.count_ones() != input.count_ones() {
            return ZeroOneVerdict::Fails { input, output };
        }
    }
    ZeroOneVerdict::Sorts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatcherNetwork;
    use crate::bitonic::BitonicNetwork;

    #[test]
    fn batcher_sorts_by_the_zero_one_principle_up_to_n16() {
        for m in 1..=4usize {
            let net = BatcherNetwork::new(m);
            assert!(
                verify(1 << m, net.stages()).is_sorting(),
                "Batcher N = {} must sort",
                1 << m
            );
        }
    }

    #[test]
    fn bitonic_sorts_by_the_zero_one_principle_up_to_n16() {
        for m in 1..=4usize {
            let net = BitonicNetwork::new(m);
            assert!(
                verify(1 << m, net.stages()).is_sorting(),
                "bitonic N = {} must sort",
                1 << m
            );
        }
    }

    #[test]
    fn removing_a_comparator_breaks_batcher() {
        let net = BatcherNetwork::new(3);
        let mut stages: Vec<Vec<Comparator>> = net.stages().to_vec();
        // Drop the last comparator of the last stage.
        let dropped = stages.last_mut().unwrap().pop().unwrap();
        let verdict = verify(8, &stages);
        match verdict {
            ZeroOneVerdict::Fails { input, output } => {
                // The witness must really be unsorted.
                assert_ne!(
                    apply(8, net.stages(), input),
                    output,
                    "full network sorts it"
                );
            }
            ZeroOneVerdict::Sorts => {
                panic!("dropping comparator {dropped:?} should break sorting")
            }
        }
    }

    #[test]
    fn empty_network_sorts_only_trivially() {
        // With no comparators, only already-sorted vectors survive; n = 1
        // line is trivially sorted, n = 2 is not.
        assert!(verify(1, &[]).is_sorting());
        assert!(!verify(2, &[]).is_sorting());
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn refuses_huge_n() {
        let _ = verify(30, &[]);
    }
}
