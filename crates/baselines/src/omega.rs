//! The omega network — shuffle-exchange destination-tag routing.
//!
//! Like the plain baseline network, the omega network self-routes by
//! destination tags but is **blocking**: it realizes only a fraction of the
//! `N!` permutations. It is included as the second member of the
//! "cheap but blocking" family the BNB network improves upon, and because
//! self-routing subclasses of Benes/shuffle-exchange networks (paper refs
//! \[7, 8\]) are defined in terms of omega-realizable permutations.

use std::error::Error;
use std::fmt;

use bnb_core::error::RouteError;
use bnb_topology::bitops::shuffle;
use bnb_topology::connection::require_power_of_two;
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};

/// A destination-tag conflict in an omega-network switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmegaBlocked {
    /// Stage of the conflict.
    pub stage: usize,
    /// Switch index within the stage.
    pub switch: usize,
}

impl fmt::Display for OmegaBlocked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "omega conflict at stage {}, switch {}",
            self.stage, self.switch
        )
    }
}

impl Error for OmegaBlocked {}

/// An `N = 2^m`-input omega network: `m` stages of `N/2` switches, each
/// preceded by a perfect shuffle.
///
/// # Example
///
/// ```
/// use bnb_baselines::omega::OmegaNetwork;
/// use bnb_topology::perm::Permutation;
///
/// let net = OmegaNetwork::with_inputs(8)?;
/// // The identity is omega-realizable…
/// assert!(net.is_admissible(&Permutation::identity(8)));
/// // …but the network is blocking overall.
/// assert!(net.count_admissible() < 40_320);
/// # Ok::<(), bnb_core::RouteError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmegaNetwork {
    m: usize,
}

impl OmegaNetwork {
    /// An omega network with `2^m` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "network needs at least 2 inputs");
        OmegaNetwork { m }
    }

    /// An omega network with `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let m = require_power_of_two(n)?;
        if m == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(Self::new(m))
    }

    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Network width.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// Attempts to route `records` by destination tags: at stage `i` a
    /// packet for destination `d` takes the switch output equal to bit
    /// `m−1−i` of `d` (MSB first).
    ///
    /// # Errors
    ///
    /// The outer error reports malformed input
    /// ([`RouteError::WidthMismatch`] /
    /// [`RouteError::DestinationTooWide`]); the inner `Err` is an
    /// [`OmegaBlocked`] conflict.
    #[allow(clippy::type_complexity)]
    pub fn route(
        &self,
        records: &[Record],
    ) -> Result<Result<Vec<Record>, OmegaBlocked>, RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        for r in records {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
        }
        let mut lines = records.to_vec();
        for stage in 0..self.m {
            // Perfect shuffle in front of every switch column.
            let mut shuffled = vec![Record::new(0, 0); n];
            for (j, &r) in lines.iter().enumerate() {
                shuffled[shuffle(self.m, self.m, j)] = r;
            }
            lines = shuffled;
            let bit = self.m - 1 - stage;
            let mut next = vec![Record::new(0, 0); n];
            for sw in 0..n / 2 {
                let upper = lines[2 * sw];
                let lower = lines[2 * sw + 1];
                let want_upper = upper.dest() >> bit & 1 == 1;
                let want_lower = lower.dest() >> bit & 1 == 1;
                if want_upper == want_lower {
                    return Ok(Err(OmegaBlocked { stage, switch: sw }));
                }
                if want_upper {
                    next[2 * sw] = lower;
                    next[2 * sw + 1] = upper;
                } else {
                    next[2 * sw] = upper;
                    next[2 * sw + 1] = lower;
                }
            }
            lines = next;
        }
        Ok(Ok(lines))
    }

    /// `true` if `perm` is omega-realizable.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len()` differs from the network width.
    pub fn is_admissible(&self, perm: &Permutation) -> bool {
        self.route(&records_for_permutation(perm))
            .expect("well-formed by construction")
            .is_ok()
    }

    /// Counts omega-realizable permutations by enumeration (tiny networks
    /// only).
    pub fn count_admissible(&self) -> u64 {
        let n = self.inputs();
        let total: u64 = (1..=n as u64).product();
        (0..total)
            .filter(|&k| self.is_admissible(&Permutation::nth_lexicographic(n, k)))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::record::all_delivered;

    #[test]
    fn identity_is_omega_realizable() {
        for m in 1..=5 {
            let net = OmegaNetwork::new(m);
            assert!(net.is_admissible(&Permutation::identity(1 << m)), "m = {m}");
        }
    }

    #[test]
    fn successful_routes_deliver() {
        let net = OmegaNetwork::new(3);
        let mut ok = 0;
        for k in 0..40_320 {
            let p = Permutation::nth_lexicographic(8, k);
            if let Ok(out) = net.route(&records_for_permutation(&p)).unwrap() {
                assert!(all_delivered(&out), "perm {p}");
                ok += 1;
            }
        }
        assert!(ok > 0);
        assert!(ok < 40_320, "omega must be blocking");
    }

    #[test]
    fn admissible_count_is_switch_settings() {
        // As with the baseline network, each of the 2^(m·N/2) switch
        // settings realizes a distinct permutation.
        let net = OmegaNetwork::new(2);
        assert_eq!(net.count_admissible(), 16);
    }

    #[test]
    fn blocked_error_names_the_switch() {
        let net = OmegaNetwork::new(2);
        let mut found = false;
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            if let Err(b) = net.route(&records_for_permutation(&p)).unwrap() {
                assert!(b.stage < 2);
                assert!(b.to_string().contains("conflict"));
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn validates_input() {
        let net = OmegaNetwork::new(2);
        assert!(net.route(&[Record::new(0, 0)]).is_err());
        assert!(OmegaNetwork::with_inputs(6).is_err());
    }
}
