//! Comparison networks for the BNB reproduction (paper §1 and §5.3).
//!
//! The paper positions the BNB network against several alternatives; all of
//! them are implemented here from scratch:
//!
//! - [`batcher`] — Batcher's odd–even merge sorting network \[9\]: the
//!   classic hardware-sorting permutation network the paper's Tables 1–2
//!   compare against (eqs. (10)–(12)).
//! - [`bitonic`] — Batcher's bitonic sorter, same asymptotics, included as
//!   an extra reference point.
//! - [`benes`] — the Benes network with Waksman's looping algorithm
//!   \[5, 6\]: routes all permutations but needs a *global* routing
//!   computation, the costly alternative that motivates self-routing.
//! - [`koppelman`] — the Koppelman–Oruç self-routing permutation network
//!   \[11\]: its exact Table 1/2 complexity model, plus a behavioural
//!   rank-based stand-in (ranking adder tree + positional concentrator)
//!   that routes all permutations with the same delay shape.
//! - [`crossbar`] — the `O(N²)` crossbar: trivially non-blocking, the
//!   hardware-cost upper bound of §1.
//! - [`cellular`] — the cellular interconnection array \[3, 4\]: the other
//!   `O(N²)` design §1 rules out, modelled as an odd–even transposition
//!   array with purely nearest-neighbour wiring.
//! - [`omega`] — the omega network: destination-tag self-routing but
//!   blocking, demonstrating why cheap multistage networks alone are not
//!   permutation networks.

pub mod batcher;
pub mod batcher_gates;
pub mod benes;
pub mod benes_self;
pub mod bitonic;
pub mod cellular;
pub mod clos;
pub mod crossbar;
pub mod koppelman;
pub mod omega;
pub mod registry;
pub mod zero_one;

pub use batcher::BatcherNetwork;
pub use benes::BenesNetwork;
pub use bitonic::BitonicNetwork;
pub use cellular::CellularArray;
pub use clos::ClosNetwork;
pub use crossbar::Crossbar;
pub use koppelman::KoppelmanModel;
pub use omega::OmegaNetwork;
pub use registry::all_networks;
