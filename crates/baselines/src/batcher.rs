//! Batcher's odd–even merge sorting network (Batcher 1968, paper ref \[9\]).
//!
//! A sorting network routes any permutation by sorting on destination
//! addresses with a fixed schedule of compare/exchange elements, so it
//! doubles as a self-routing permutation network — the paper's primary
//! comparison target. The construction is the classic recursive odd–even
//! merge; the comparator count matches paper eq. (10) exactly and the stage
//! depth is `log N (log N + 1)/2`.

use bnb_core::cost::HardwareCost;
use bnb_core::delay::PropagationDelay;
use bnb_core::error::RouteError;
use bnb_topology::connection::require_power_of_two;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// One compare/exchange element: sorts `(lines[low], lines[high])` so the
/// smaller key exits on `low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Comparator {
    /// Line receiving the minimum.
    pub low: usize,
    /// Line receiving the maximum.
    pub high: usize,
}

/// Batcher's `N = 2^m`-input odd–even merge sorting network.
///
/// # Example
///
/// ```
/// use bnb_baselines::batcher::BatcherNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net = BatcherNetwork::with_inputs(8)?;
/// let p = Permutation::try_from(vec![4, 6, 1, 7, 0, 3, 5, 2])?;
/// let out = net.route(&records_for_permutation(&p))?;
/// assert!(all_delivered(&out));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatcherNetwork {
    m: usize,
    /// Comparators grouped into parallel stages (no two comparators in a
    /// stage touch the same line).
    stages: Vec<Vec<Comparator>>,
}

impl BatcherNetwork {
    /// Builds the network for `2^m` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "sorting network needs at least 2 inputs");
        let n = 1usize << m;
        let mut comparators = Vec::new();
        sort(0, n, &mut comparators);
        let stages = schedule(n, &comparators);
        BatcherNetwork { m, stages }
    }

    /// Builds the network for `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let m = require_power_of_two(n)?;
        if m == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(Self::new(m))
    }

    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Network width.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// The comparator schedule, stage by stage.
    pub fn stages(&self) -> &[Vec<Comparator>] {
        &self.stages
    }

    /// Total compare/exchange elements — paper eq. (10):
    /// `N/4·log²N − N/4·log N + N − 1`.
    pub fn comparator_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Number of parallel stages: `log N (log N + 1)/2`.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Routes records by sorting on destination address.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] or
    /// [`RouteError::DestinationTooWide`] on malformed input. Duplicate
    /// destinations are *not* an error for a sorting network — the records
    /// still come out sorted — but then `out[j].dest() == j` no longer
    /// holds.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        for r in records {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
        }
        let mut lines = records.to_vec();
        for stage in &self.stages {
            for c in stage {
                if lines[c.low].dest() > lines[c.high].dest() {
                    lines.swap(c.low, c.high);
                }
            }
        }
        Ok(lines)
    }

    /// Sorts an arbitrary slice with the comparator schedule — the generic
    /// sorting-network view (used by property tests against the 0–1
    /// principle).
    ///
    /// # Panics
    ///
    /// Panics if `items.len()` differs from the network width.
    pub fn sort_slice<T: Ord + Copy>(&self, items: &mut [T]) {
        assert_eq!(
            items.len(),
            self.inputs(),
            "item count must match network width"
        );
        for stage in &self.stages {
            for c in stage {
                if items[c.low] > items[c.high] {
                    items.swap(c.low, c.high);
                }
            }
        }
    }

    /// Hardware cost under the paper's model, eq. (11): each comparison
    /// element carries `log N + w` switch slices and `log N` function
    /// slices.
    pub fn cost(&self, w: usize) -> HardwareCost {
        let ce = self.comparator_count() as u64;
        HardwareCost {
            switches: ce * (self.m + w) as u64,
            function_nodes: ce * self.m as u64,
            adder_slices: 0,
        }
    }

    /// Propagation delay under the paper's model, eq. (12): each of the
    /// `log N(log N + 1)/2` stages costs one `D_SW` plus `log N` `D_FN`
    /// (the bit-serial address comparison).
    pub fn delay(&self) -> PropagationDelay {
        let stages = self.stage_count() as u64;
        PropagationDelay {
            switch_units: stages,
            fn_units: stages * self.m as u64,
        }
    }

    /// Table 2 combined polynomial with unit weights:
    /// `1/2·log³N + 1/2·log²N` (`D_FN` part) `+ 1/2·log²N + 1/2·log N`
    /// (`D_SW` part).
    pub fn table2(m: usize) -> f64 {
        let mf = m as f64;
        0.5 * mf.powi(3) + 0.5 * mf.powi(2) + 0.5 * mf.powi(2) + 0.5 * mf
    }
}

/// Paper eq. (10) as a closed form.
pub fn comparator_count_closed_form(m: usize) -> u64 {
    let n = 1u64 << m;
    let mu = m as u64;
    (n / 4) * mu * mu - (n / 4) * mu + n - 1
}

fn sort(lo: usize, n: usize, out: &mut Vec<Comparator>) {
    if n > 1 {
        let mid = n / 2;
        sort(lo, mid, out);
        sort(lo + mid, mid, out);
        merge(lo, n, 1, out);
    }
}

/// Odd–even merge of the `n` lines starting at `lo`, comparing lines `r`
/// apart (Batcher's recursive construction).
fn merge(lo: usize, n: usize, r: usize, out: &mut Vec<Comparator>) {
    let step = r * 2;
    if step < n {
        merge(lo, n, step, out);
        merge(lo + r, n, step, out);
        let mut i = lo + r;
        while i + r < lo + n {
            out.push(Comparator {
                low: i,
                high: i + r,
            });
            i += step;
        }
    } else {
        out.push(Comparator {
            low: lo,
            high: lo + r,
        });
    }
}

/// Greedy ASAP scheduling of comparators into parallel stages, preserving
/// the dependency order of the generated sequence.
fn schedule(n: usize, comparators: &[Comparator]) -> Vec<Vec<Comparator>> {
    let mut ready = vec![0usize; n]; // earliest stage each line is free
    let mut stages: Vec<Vec<Comparator>> = Vec::new();
    for &c in comparators {
        let stage = ready[c.low].max(ready[c.high]);
        if stage == stages.len() {
            stages.push(Vec::new());
        }
        stages[stage].push(c);
        ready[c.low] = stage + 1;
        ready[c.high] = stage + 1;
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// eq. (10): constructed comparator count equals the closed form.
    #[test]
    fn comparator_count_matches_eq10() {
        for m in 1..=10 {
            let net = BatcherNetwork::new(m);
            assert_eq!(
                net.comparator_count() as u64,
                comparator_count_closed_form(m),
                "m = {m}"
            );
        }
    }

    /// Stage depth is log N (log N + 1) / 2.
    #[test]
    fn stage_count_is_m_m_plus_1_over_2() {
        for m in 1..=10 {
            let net = BatcherNetwork::new(m);
            assert_eq!(net.stage_count(), m * (m + 1) / 2, "m = {m}");
        }
    }

    /// Stages are truly parallel: no line is touched twice per stage.
    #[test]
    fn stages_are_conflict_free() {
        let net = BatcherNetwork::new(6);
        for (s, stage) in net.stages().iter().enumerate() {
            let mut used = vec![false; net.inputs()];
            for c in stage {
                assert!(!used[c.low] && !used[c.high], "stage {s} reuses a line");
                used[c.low] = true;
                used[c.high] = true;
            }
        }
    }

    /// All 40 320 permutations of 8 inputs are routed.
    #[test]
    fn routes_all_permutations_n8() {
        let net = BatcherNetwork::new(3);
        for k in 0..40_320 {
            let p = Permutation::nth_lexicographic(8, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p}");
        }
    }

    /// The 0–1 principle: since the BNB tests validated balanced vectors,
    /// here we validate the sorting network on random u64 multisets.
    #[test]
    fn sorts_arbitrary_multisets() {
        let mut rng = StdRng::seed_from_u64(77);
        for m in [2usize, 4, 6] {
            let net = BatcherNetwork::new(m);
            let n = 1 << m;
            for _ in 0..20 {
                let mut items: Vec<u64> = (0..n).map(|_| rng.random_range(0..10)).collect();
                let mut expected = items.clone();
                expected.sort_unstable();
                net.sort_slice(&mut items);
                assert_eq!(items, expected);
            }
        }
    }

    /// Duplicate destinations are sorted, not errored.
    #[test]
    fn duplicates_sort_without_error() {
        let net = BatcherNetwork::new(2);
        let records = vec![
            Record::new(3, 0),
            Record::new(1, 1),
            Record::new(1, 2),
            Record::new(0, 3),
        ];
        let out = net.route(&records).unwrap();
        let dests: Vec<usize> = out.iter().map(Record::dest).collect();
        assert_eq!(dests, vec![0, 1, 1, 3]);
    }

    #[test]
    fn route_validates_structure() {
        let net = BatcherNetwork::new(2);
        assert!(matches!(
            net.route(&[Record::new(0, 0)]),
            Err(RouteError::WidthMismatch {
                expected: 4,
                actual: 1
            })
        ));
        let wide = vec![
            Record::new(4, 0),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&wide),
            Err(RouteError::DestinationTooWide { .. })
        ));
    }

    /// eq. (11)/(12) spot checks.
    #[test]
    fn cost_and_delay_match_paper_model() {
        let net = BatcherNetwork::new(3);
        let ce = net.comparator_count() as u64; // 19 for N = 8
        assert_eq!(ce, 19);
        let c = net.cost(5);
        assert_eq!(c.switches, ce * 8);
        assert_eq!(c.function_nodes, ce * 3);
        let d = net.delay();
        assert_eq!(d.switch_units, 6);
        assert_eq!(d.fn_units, 18);
        // Table 2 polynomial at unit weights equals the component model.
        assert_eq!(BatcherNetwork::table2(3), (6 + 18) as f64);
    }

    #[test]
    fn with_inputs_validates() {
        assert!(BatcherNetwork::with_inputs(16).is_ok());
        assert!(BatcherNetwork::with_inputs(3).is_err());
        assert!(BatcherNetwork::with_inputs(1).is_err());
    }
}
