//! Cellular interconnection array (paper refs \[3, 4\]: Kautz et al. 1968,
//! Oruç & Prakash 1984) — the second `O(N²)` design §1 rules out.
//!
//! A cellular array realizes permutations with a regular grid of identical
//! cells and purely local control. We model it as the odd–even
//! transposition array: `N` columns of compare/exchange cells between
//! adjacent lines (alternating even/odd pairings), which sorts any input —
//! hence routes any permutation — with `N·(N−1)/2 ≈ N²/2` cells and `N`
//! columns of delay. Against the BNB network it trades `O(N²)` hardware
//! and `O(N)` delay for perfect layout regularity (nearest-neighbour wiring
//! only).

use bnb_core::cost::HardwareCost;
use bnb_core::delay::PropagationDelay;
use bnb_core::error::RouteError;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// An `n`-input cellular (odd–even transposition) array. Any `n ≥ 2`, not
/// restricted to powers of two.
///
/// # Example
///
/// ```
/// use bnb_baselines::cellular::CellularArray;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let arr = CellularArray::new(6);
/// let p = Permutation::try_from(vec![3, 5, 0, 2, 4, 1])?;
/// assert!(all_delivered(&arr.route(&records_for_permutation(&p))?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellularArray {
    n: usize,
}

impl CellularArray {
    /// An `n`-line array.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "cellular array needs at least 2 lines");
        CellularArray { n }
    }

    /// Line count.
    pub fn inputs(&self) -> usize {
        self.n
    }

    /// Number of columns (time steps): `n`.
    pub fn column_count(&self) -> usize {
        self.n
    }

    /// Total compare/exchange cells: alternating columns of `⌊n/2⌋` and
    /// `⌊(n−1)/2⌋` cells over `n` columns.
    pub fn cell_count(&self) -> usize {
        let even_cols = self.n.div_ceil(2);
        let odd_cols = self.n / 2;
        even_cols * (self.n / 2) + odd_cols * ((self.n - 1) / 2)
    }

    /// Routes records by odd–even transposition sort on destinations.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] or
    /// [`RouteError::DestinationTooWide`] on malformed input.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        if records.len() != self.n {
            return Err(RouteError::WidthMismatch {
                expected: self.n,
                actual: records.len(),
            });
        }
        for r in records {
            if r.dest() >= self.n {
                return Err(RouteError::DestinationTooWide {
                    dest: r.dest(),
                    n: self.n,
                });
            }
        }
        let mut lines = records.to_vec();
        for col in 0..self.n {
            let start = col % 2;
            let mut i = start;
            while i + 1 < self.n {
                if lines[i].dest() > lines[i + 1].dest() {
                    lines.swap(i, i + 1);
                }
                i += 2;
            }
        }
        Ok(lines)
    }

    /// Hardware cost: one switch plus one comparison function slice per
    /// cell (unit model, address-only).
    pub fn cost(&self) -> HardwareCost {
        let cells = self.cell_count() as u64;
        HardwareCost {
            switches: cells,
            function_nodes: cells,
            adder_slices: 0,
        }
    }

    /// Propagation delay: `n` columns, each one switch plus one compare.
    pub fn delay(&self) -> PropagationDelay {
        PropagationDelay {
            switch_units: self.n as u64,
            fn_units: self.n as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn routes_all_permutations_n6_and_n8() {
        for n in [6usize, 8] {
            let arr = CellularArray::new(n);
            let total: u64 = (1..=n as u64).product();
            for k in 0..total {
                let p = Permutation::nth_lexicographic(n, k);
                let out = arr.route(&records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "n={n} perm {p}");
            }
        }
    }

    #[test]
    fn routes_random_non_power_of_two_sizes() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [5usize, 13, 100] {
            let arr = CellularArray::new(n);
            for _ in 0..10 {
                let p = Permutation::random(n, &mut rng);
                let out = arr.route(&records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "n={n}");
            }
        }
    }

    #[test]
    fn cell_count_is_quadratic() {
        // n(n-1)/2 cells exactly.
        for n in 2..=50usize {
            assert_eq!(
                CellularArray::new(n).cell_count(),
                n * (n - 1) / 2,
                "n = {n}"
            );
        }
    }

    #[test]
    fn delay_is_linear() {
        let arr = CellularArray::new(32);
        assert_eq!(arr.delay().switch_units, 32);
        assert_eq!(arr.column_count(), 32);
    }

    #[test]
    fn bnb_beats_cellular_asymptotically_but_not_at_n4() {
        // The cellular array is actually *cheaper* at tiny sizes — the
        // quadratic only loses once N outgrows log³N.
        use bnb_core::cost::HardwareCost as HC;
        let small_cell = CellularArray::new(4).cost().total_units();
        let small_bnb = HC::bnb_counted(2, 0).total_units();
        assert!(small_cell < small_bnb, "{small_cell} vs {small_bnb}");
        let big_cell = CellularArray::new(1 << 10).cost().total_units();
        let big_bnb = HC::bnb_counted(10, 0).total_units();
        assert!(big_bnb < big_cell, "{big_bnb} vs {big_cell}");
    }

    #[test]
    fn validates_input() {
        let arr = CellularArray::new(4);
        assert!(arr.route(&[Record::new(0, 0)]).is_err());
        let wide = vec![
            Record::new(4, 0),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(arr.route(&wide).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 2 lines")]
    fn rejects_single_line() {
        let _ = CellularArray::new(1);
    }
}
