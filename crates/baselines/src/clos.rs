//! Symmetric three-stage Clos network with edge-coloring routing.
//!
//! The Koppelman–Oruç SRPN (paper ref \[11\]) is derived from a Clos-class
//! network (the "complementary Benes network"); this module provides the
//! plain rearrangeable Clos `C(n, n, r)` itself as a substrate and
//! comparison point:
//!
//! - `r` input crossbars of size `n × n`, `n` middle crossbars of size
//!   `r × r`, `r` output crossbars of size `n × n` (`N = n·r` terminals);
//! - rearrangeably nonblocking with exactly `m = n` middle switches
//!   (Slepian–Duguid): routing a permutation is an `n`-edge-coloring of
//!   the `r × r` bipartite demand multigraph, computed here by recursive
//!   Euler splitting (requires `n` to be a power of two);
//! - like Benes, this is **global** routing: the coloring needs the whole
//!   permutation before any record moves.

use bnb_core::cost::HardwareCost;
use bnb_core::error::RouteError;
use bnb_topology::perm::Permutation;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// A symmetric rearrangeable Clos network `C(n, n, r)` with `N = n·r`
/// terminals.
///
/// # Example
///
/// ```
/// use bnb_baselines::clos::ClosNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net = ClosNetwork::new(4, 3)?; // N = 12
/// let p = Permutation::try_from(vec![7, 0, 10, 2, 9, 4, 11, 1, 3, 8, 5, 6])?;
/// assert!(all_delivered(&net.route(&records_for_permutation(&p))?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClosNetwork {
    /// Ports per edge switch (= middle-switch count); a power of two.
    n: usize,
    /// Edge switches per side.
    r: usize,
}

/// A computed Clos routing: the middle switch assigned to every input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClosRouting {
    /// `middle[i]` is the middle-switch (color) carrying global input `i`.
    pub middle: Vec<usize>,
}

impl ClosNetwork {
    /// A Clos network with `r` edge switches of `n` ports each.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two (the Euler-split
    /// colorer requires it) or if `n` or `r` is zero.
    pub fn new(n: usize, r: usize) -> Result<Self, RouteError> {
        if n == 0 || r == 0 || !n.is_power_of_two() {
            return Err(RouteError::Topology(
                bnb_topology::TopologyError::NotPowerOfTwo { size: n.max(1) },
            ));
        }
        Ok(ClosNetwork { n, r })
    }

    /// Ports per edge switch.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edge switches per side.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Terminal count `N = n·r`.
    pub fn inputs(&self) -> usize {
        self.n * self.r
    }

    /// Crosspoints: `2·r·n² + n·r²`.
    pub fn crosspoint_count(&self) -> usize {
        2 * self.r * self.n * self.n + self.n * self.r * self.r
    }

    /// Hardware cost (crosspoints as switches).
    pub fn cost(&self) -> HardwareCost {
        HardwareCost {
            switches: self.crosspoint_count() as u64,
            function_nodes: 0,
            adder_slices: 0,
        }
    }

    /// Computes a middle-switch assignment realizing `perm` by recursive
    /// Euler splitting of the demand multigraph — the global routing
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] if `perm.len() != N`.
    pub fn route_permutation(&self, perm: &Permutation) -> Result<ClosRouting, RouteError> {
        let nn = self.inputs();
        if perm.len() != nn {
            return Err(RouteError::WidthMismatch {
                expected: nn,
                actual: perm.len(),
            });
        }
        // Edge list of the bipartite demand multigraph: one edge per global
        // input, from its input switch to its output switch.
        let edges: Vec<(usize, usize)> = (0..nn)
            .map(|i| (i / self.n, perm.apply(i) / self.n))
            .collect();
        let ids: Vec<usize> = (0..nn).collect();
        let mut middle = vec![usize::MAX; nn];
        self.color(&edges, &ids, 0, self.n, &mut middle);
        debug_assert!(middle.iter().all(|&c| c < self.n));
        Ok(ClosRouting { middle })
    }

    /// Recursively splits the multigraph with edge set `ids` (every vertex
    /// degree = `width`) into halves until single colors remain.
    fn color(
        &self,
        edges: &[(usize, usize)],
        ids: &[usize],
        base: usize,
        width: usize,
        middle: &mut [usize],
    ) {
        if width == 1 {
            for &id in ids {
                middle[id] = base;
            }
            return;
        }
        // Euler split: walk circuits of the (even-degree) multigraph,
        // alternating edges between the two halves.
        let r = self.r;
        // adjacency: per input-switch vertex (0..r) and output-switch
        // vertex (r..2r), the incident edge positions in `ids`.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * r];
        for (pos, &id) in ids.iter().enumerate() {
            let (a, b) = edges[id];
            adj[a].push(pos);
            adj[r + b].push(pos);
        }
        let mut used = vec![false; ids.len()];
        let mut cursor = vec![0usize; 2 * r];
        let mut half_a = Vec::with_capacity(ids.len() / 2);
        let mut half_b = Vec::with_capacity(ids.len() / 2);
        for start in 0..2 * r {
            loop {
                // Find an unused edge at `start` to begin a circuit.
                while cursor[start] < adj[start].len() && used[adj[start][cursor[start]]] {
                    cursor[start] += 1;
                }
                if cursor[start] >= adj[start].len() {
                    break;
                }
                // Walk the circuit, alternating halves.
                let mut v = start;
                let mut take_a = true;
                loop {
                    while cursor[v] < adj[v].len() && used[adj[v][cursor[v]]] {
                        cursor[v] += 1;
                    }
                    if cursor[v] >= adj[v].len() {
                        break; // circuit closed (returned to a saturated vertex)
                    }
                    let pos = adj[v][cursor[v]];
                    used[pos] = true;
                    if take_a {
                        half_a.push(ids[pos]);
                    } else {
                        half_b.push(ids[pos]);
                    }
                    take_a = !take_a;
                    let (a, b) = edges[ids[pos]];
                    // Move to the other endpoint of the edge.
                    v = if v < r { r + b } else { a };
                }
            }
        }
        debug_assert_eq!(half_a.len(), half_b.len(), "Euler split must halve evenly");
        self.color(edges, &half_a, base, width / 2, middle);
        self.color(edges, &half_b, base + width / 2, width / 2, middle);
    }

    /// Pushes records through the three crossbar stages under a routing.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] on size mismatches, or
    /// [`RouteError::DuplicateDestination`] if the routing sends two
    /// records through the same middle-switch port (an invalid coloring —
    /// cannot happen for colorings produced by
    /// [`ClosNetwork::route_permutation`]).
    pub fn apply(
        &self,
        routing: &ClosRouting,
        records: &[Record],
    ) -> Result<Vec<Record>, RouteError> {
        let nn = self.inputs();
        if records.len() != nn || routing.middle.len() != nn {
            return Err(RouteError::WidthMismatch {
                expected: nn,
                actual: records.len().min(routing.middle.len()),
            });
        }
        // Middle switch c, port a (from input switch a): at most one record.
        let mut mid: Vec<Vec<Option<Record>>> = vec![vec![None; self.r]; self.n];
        for (i, r) in records.iter().enumerate() {
            let a = i / self.n;
            let c = routing.middle[i];
            if let Some(prev) = mid[c][a] {
                return Err(RouteError::DuplicateDestination {
                    dest: prev.dest(),
                    first_input: a,
                    second_input: i,
                });
            }
            mid[c][a] = Some(*r);
        }
        // Middle crossbars route to output switches; output crossbars to
        // local ports.
        let mut out = vec![Record::new(0, 0); nn];
        let mut seen = vec![false; nn];
        for row in mid.iter() {
            for slot in row.iter().flatten() {
                let dest = slot.dest();
                if seen[dest] {
                    return Err(RouteError::DuplicateDestination {
                        dest,
                        first_input: 0,
                        second_input: 0,
                    });
                }
                seen[dest] = true;
                out[dest] = *slot;
            }
        }
        Ok(out)
    }

    /// Convenience: derive the permutation from the records' destinations,
    /// color it, and apply it.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`],
    /// [`RouteError::DestinationTooWide`] or
    /// [`RouteError::DuplicateDestination`] on malformed input.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        let nn = self.inputs();
        if records.len() != nn {
            return Err(RouteError::WidthMismatch {
                expected: nn,
                actual: records.len(),
            });
        }
        let mut images = Vec::with_capacity(nn);
        for r in records {
            if r.dest() >= nn {
                return Err(RouteError::DestinationTooWide {
                    dest: r.dest(),
                    n: nn,
                });
            }
            images.push(r.dest());
        }
        let perm = Permutation::try_from(images).map_err(|e| match e {
            bnb_topology::TopologyError::DuplicateImage {
                value,
                first_index,
                second_index,
            } => RouteError::DuplicateDestination {
                dest: value,
                first_input: first_index,
                second_input: second_index,
            },
            other => RouteError::Topology(other),
        })?;
        let routing = self.route_permutation(&perm)?;
        self.apply(&routing, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn routes_all_permutations_small() {
        // C(2, 2): N = 4 (a Benes-like shape); exhaustive.
        let net = ClosNetwork::new(2, 2).unwrap();
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p}");
        }
        // C(4, 2): N = 8; exhaustive over all 40 320.
        let net = ClosNetwork::new(4, 2).unwrap();
        for k in 0..40_320 {
            let p = Permutation::nth_lexicographic(8, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p}");
        }
    }

    #[test]
    fn routes_random_rectangular_configs() {
        let mut rng = StdRng::seed_from_u64(9);
        for (n, r) in [(2usize, 7usize), (4, 5), (8, 8), (16, 3), (32, 9)] {
            let net = ClosNetwork::new(n, r).unwrap();
            let nn = net.inputs();
            for _ in 0..10 {
                let p = Permutation::random(nn, &mut rng);
                let out = net.route(&records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "C({n},{r})");
            }
        }
    }

    #[test]
    fn coloring_is_a_proper_edge_coloring() {
        // No two inputs of one input switch — and no two records for one
        // output switch — may share a middle switch.
        let mut rng = StdRng::seed_from_u64(10);
        let net = ClosNetwork::new(8, 6).unwrap();
        let p = Permutation::random(48, &mut rng);
        let routing = net.route_permutation(&p).unwrap();
        for sw in 0..6 {
            let mut seen_in = [false; 8];
            for port in 0..8 {
                let c = routing.middle[sw * 8 + port];
                assert!(!seen_in[c], "input switch {sw} reuses middle {c}");
                seen_in[c] = true;
            }
        }
        for out_sw in 0..6 {
            let mut seen_out = [false; 8];
            for i in 0..48 {
                if p.apply(i) / 8 == out_sw {
                    let c = routing.middle[i];
                    assert!(!seen_out[c], "output switch {out_sw} reuses middle {c}");
                    seen_out[c] = true;
                }
            }
        }
    }

    #[test]
    fn coloring_is_perfectly_balanced() {
        // Euler splitting halves degrees exactly, so every middle switch
        // carries exactly r records (one per input switch, one per output
        // switch).
        let mut rng = StdRng::seed_from_u64(77);
        for (n, r) in [(4usize, 4usize), (8, 5), (16, 7)] {
            let net = ClosNetwork::new(n, r).unwrap();
            let p = Permutation::random(n * r, &mut rng);
            let routing = net.route_permutation(&p).unwrap();
            let mut load = vec![0usize; n];
            for &c in &routing.middle {
                load[c] += 1;
            }
            assert!(load.iter().all(|&l| l == r), "C({n},{r}): load {load:?}");
        }
    }

    #[test]
    fn crosspoints_match_closed_form() {
        let net = ClosNetwork::new(4, 4).unwrap(); // N = 16
        assert_eq!(net.crosspoint_count(), 2 * 4 * 16 + 4 * 16);
        // Square Clos at n = r = sqrt(N) beats the N^2 crossbar.
        let full = 16 * 16;
        assert!(net.crosspoint_count() < full);
        assert_eq!(net.cost().switches as usize, net.crosspoint_count());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ClosNetwork::new(3, 4).is_err(), "n must be a power of two");
        assert!(ClosNetwork::new(0, 4).is_err());
        assert!(ClosNetwork::new(4, 0).is_err());
    }

    #[test]
    fn validates_traffic() {
        let net = ClosNetwork::new(2, 2).unwrap();
        assert!(net.route(&[Record::new(0, 0)]).is_err());
        let dup = vec![
            Record::new(1, 0),
            Record::new(1, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        assert!(matches!(
            net.route(&dup),
            Err(RouteError::DuplicateDestination { .. })
        ));
    }

    #[test]
    fn n1_degenerates_to_single_crossbar() {
        let net = ClosNetwork::new(1, 5).unwrap();
        let p = Permutation::try_from(vec![4, 2, 0, 1, 3]).unwrap();
        let out = net.route(&records_for_permutation(&p)).unwrap();
        assert!(all_delivered(&out));
    }
}
