//! Gate-level Batcher network: the odd–even merge sorter built from real
//! comparator netlists, mirroring [`crate::batcher`] the way
//! `bnb_gates::components::bnb_network` mirrors the behavioural BNB.
//!
//! Each comparison element compares the `log N`-bit addresses MSB-first
//! with a ripple greater-than/equal chain — the "log N-bit comparison"
//! whose `log N · D_FN` per-stage delay produces Batcher's
//! `1/2·log³N · D_FN` term in Table 2 — and swaps the full `log N + w` bit
//! words with muxes. The gate-level critical paths of this netlist and the
//! BNB netlist reproduce the Table 2 comparison with *measured* hardware
//! rather than polynomials.

use std::fmt;

use bnb_gates::netlist::{Net, Netlist};
use bnb_topology::record::Record;

use crate::batcher::BatcherNetwork;

/// Emits a compare/exchange element for two words whose first `key_bits`
/// nets are the MSB-first sort key. Returns `(min_word, max_word)`.
///
/// # Panics
///
/// Panics if the words differ in width or are shorter than `key_bits`, or
/// if `key_bits == 0`.
pub fn comparator(nl: &mut Netlist, a: &[Net], b: &[Net], key_bits: usize) -> (Vec<Net>, Vec<Net>) {
    assert_eq!(a.len(), b.len(), "compared words must have equal width");
    assert!(
        key_bits >= 1 && key_bits <= a.len(),
        "key must be non-empty and fit the word"
    );
    // Ripple from the MSB: gt = "a > b so far", eq = "equal so far".
    let nb0 = nl.not(b[0]);
    let mut gt = nl.and(a[0], nb0);
    let x0 = nl.xor(a[0], b[0]);
    let mut eq = nl.not(x0);
    for k in 1..key_bits {
        let nbk = nl.not(b[k]);
        let a_gt_b_here = nl.and(a[k], nbk);
        let new_here = nl.and(eq, a_gt_b_here);
        gt = nl.or(gt, new_here);
        let xk = nl.xor(a[k], b[k]);
        let eq_here = nl.not(xk);
        eq = nl.and(eq, eq_here);
    }
    // gt = 1 -> exchange so the minimum exits on the first output.
    let min_word = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| nl.mux(gt, ai, bi))
        .collect();
    let max_word = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| nl.mux(gt, bi, ai))
        .collect();
    (min_word, max_word)
}

/// A complete gate-level Batcher odd–even merge network with its word
/// geometry.
#[derive(Debug, Clone)]
pub struct BatcherNetlist {
    netlist: Netlist,
    m: usize,
    w: usize,
}

/// Errors from routing records through a [`BatcherNetlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatcherNetlistError {
    /// Wrong number of input records.
    RecordCount {
        /// Expected record count (N).
        expected: usize,
        /// Provided record count.
        actual: usize,
    },
    /// A record's destination does not fit in `m` bits.
    DestinationTooWide {
        /// The offending destination.
        dest: usize,
        /// The network width.
        n: usize,
    },
    /// A record's data does not fit in `w` bits.
    DataTooWide {
        /// The offending data word.
        data: u64,
        /// Data width in bits.
        w: usize,
    },
}

impl fmt::Display for BatcherNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatcherNetlistError::RecordCount { expected, actual } => {
                write!(f, "expected {expected} records, got {actual}")
            }
            BatcherNetlistError::DestinationTooWide { dest, n } => {
                write!(f, "destination {dest} does not fit a {n}-output network")
            }
            BatcherNetlistError::DataTooWide { data, w } => {
                write!(f, "data {data:#x} does not fit in {w} bits")
            }
        }
    }
}

impl std::error::Error for BatcherNetlistError {}

impl BatcherNetlist {
    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Data width in bits.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Network width `N = 2^m`.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// The underlying netlist (for census / delay analysis).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Routes one record per input line through the gate-level sorter.
    ///
    /// # Errors
    ///
    /// Returns a [`BatcherNetlistError`] for malformed input; like the
    /// hardware, duplicate destinations sort without error.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, BatcherNetlistError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(BatcherNetlistError::RecordCount {
                expected: n,
                actual: records.len(),
            });
        }
        let mut bits = Vec::with_capacity(n * (self.m + self.w));
        for r in records {
            if r.dest() >= n {
                return Err(BatcherNetlistError::DestinationTooWide { dest: r.dest(), n });
            }
            if self.w < 64 && r.data() >> self.w != 0 {
                return Err(BatcherNetlistError::DataTooWide {
                    data: r.data(),
                    w: self.w,
                });
            }
            #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
            for k in 0..self.m {
                bits.push((r.dest() >> (self.m - 1 - k)) & 1 == 1);
            }
            for t in 0..self.w {
                bits.push((r.data() >> t) & 1 == 1);
            }
        }
        let out_bits = self.netlist.eval(&bits).expect("netlist is well-formed");
        let q = self.m + self.w;
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            let word = &out_bits[j * q..(j + 1) * q];
            let mut dest = 0usize;
            #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
            for k in 0..self.m {
                dest = (dest << 1) | usize::from(word[k]);
            }
            let mut data = 0u64;
            for t in 0..self.w {
                if word[self.m + t] {
                    data |= 1 << t;
                }
            }
            out.push(Record::new(dest, data));
        }
        Ok(out)
    }
}

/// Builds the gate-level Batcher odd–even merge network for `2^m` inputs
/// and `w` data bits, reusing the behavioural network's comparator
/// schedule (so the two implementations are structurally identical by
/// construction).
///
/// # Panics
///
/// Panics if `m == 0` or `w > 63`.
pub fn batcher_netlist(m: usize, w: usize) -> BatcherNetlist {
    assert!(m >= 1, "network needs at least 2 inputs");
    assert!(w <= 63, "data width is limited to 63 bits");
    let schedule = BatcherNetwork::new(m);
    let n = 1usize << m;
    let q = m + w;
    let mut nl = Netlist::new();
    let mut lines: Vec<Vec<Net>> = (0..n)
        .map(|j| {
            (0..q)
                .map(|b| {
                    if b < m {
                        nl.input(format!("in{j}.a{b}"))
                    } else {
                        nl.input(format!("in{j}.d{}", b - m))
                    }
                })
                .collect()
        })
        .collect();
    for stage in schedule.stages() {
        for c in stage {
            let a = lines[c.low].clone();
            let b = lines[c.high].clone();
            let (min_word, max_word) = comparator(&mut nl, &a, &b, m);
            lines[c.low] = min_word;
            lines[c.high] = max_word;
        }
    }
    for (j, word) in lines.iter().enumerate() {
        for (b, &net) in word.iter().enumerate() {
            if b < m {
                nl.output(format!("out{j}.a{b}"), net);
            } else {
                nl.output(format!("out{j}.d{}", b - m), net);
            }
        }
    }
    BatcherNetlist { netlist: nl, m, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_gates::components::bnb_network;
    use bnb_gates::delay::{critical_path, DelayModel};
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn comparator_orders_all_4bit_pairs() {
        let mut nl = Netlist::new();
        let a: Vec<Net> = (0..4).map(|k| nl.input(format!("a{k}"))).collect();
        let b: Vec<Net> = (0..4).map(|k| nl.input(format!("b{k}"))).collect();
        let (min_w, max_w) = comparator(&mut nl, &a, &b, 4);
        for (j, &o) in min_w.iter().chain(&max_w).enumerate() {
            nl.output(format!("o{j}"), o);
        }
        for av in 0..16u8 {
            for bv in 0..16u8 {
                let mut bits = Vec::new();
                for k in (0..4).rev() {
                    bits.push(av >> k & 1 == 1);
                }
                for k in (0..4).rev() {
                    bits.push(bv >> k & 1 == 1);
                }
                let out = nl.eval(&bits).unwrap();
                let read = |word: &[bool]| -> u8 {
                    word.iter()
                        .fold(0u8, |acc, &bit| (acc << 1) | u8::from(bit))
                };
                assert_eq!(read(&out[0..4]), av.min(bv), "min({av},{bv})");
                assert_eq!(read(&out[4..8]), av.max(bv), "max({av},{bv})");
            }
        }
    }

    #[test]
    fn gate_batcher_routes_all_n4_permutations() {
        let net = batcher_netlist(2, 3);
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p}");
        }
    }

    #[test]
    fn gate_batcher_matches_behavioural_on_random_n8() {
        let mut rng = StdRng::seed_from_u64(88);
        let gate = batcher_netlist(3, 5);
        let beh = BatcherNetwork::new(3);
        for _ in 0..40 {
            // Random multiset of destinations (duplicates allowed) — the
            // sorters must agree bit for bit.
            let recs: Vec<Record> = (0..8)
                .map(|_| Record::new(rng.random_range(0..8), rng.random_range(0..32)))
                .collect();
            let g = gate.route(&recs).unwrap();
            let b = beh.route(&recs).unwrap();
            // Destinations agree; payload order between equal keys may
            // differ only if the comparator tie-breaks differently — both
            // treat equal keys as "no exchange", so full equality holds.
            assert_eq!(g, b);
        }
    }

    #[test]
    fn gate_level_table2_shape_bnb_beats_batcher() {
        // The measured gate-level critical path must show the Table 2
        // ordering at the sizes we can afford to build: BNB's path is
        // shorter than Batcher's from m = 3 on.
        for m in [3usize, 4, 5] {
            let bnb = bnb_network(m, 0);
            let bat = batcher_netlist(m, 0);
            let d_bnb = critical_path(bnb.netlist(), &DelayModel::unit())
                .unwrap()
                .delay;
            let d_bat = critical_path(bat.netlist(), &DelayModel::unit())
                .unwrap()
                .delay;
            assert!(
                d_bnb < d_bat,
                "m = {m}: BNB {d_bnb} gate levels vs Batcher {d_bat}"
            );
        }
    }

    #[test]
    fn gate_counts_favor_bnb_at_scale() {
        // Gate-level Table 1 shape: at m = 5 the BNB netlist already uses
        // fewer logic gates than the Batcher netlist (w = 0).
        let bnb = bnb_network(5, 0).netlist().census().logic_gates();
        let bat = batcher_netlist(5, 0).netlist().census().logic_gates();
        assert!(bnb < bat, "BNB {bnb} gates vs Batcher {bat}");
    }

    #[test]
    fn validates_input() {
        let net = batcher_netlist(2, 2);
        assert!(matches!(
            net.route(&[Record::new(0, 0)]),
            Err(BatcherNetlistError::RecordCount { .. })
        ));
        let wide = vec![
            Record::new(7, 0),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&wide),
            Err(BatcherNetlistError::DestinationTooWide { .. })
        ));
        let fat = vec![
            Record::new(0, 9),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&fat),
            Err(BatcherNetlistError::DataTooWide { .. })
        ));
    }
}
