//! The Koppelman–Oruç self-routing permutation network (paper ref \[11\]).
//!
//! The original 1989 design derives from a complementary Benes (Clos)
//! network with modified input-stage switches; it self-routes all
//! permutations using **ranking circuits** (trees of adders computing, for
//! each record, its rank among records with the same current bit) feeding a
//! cube network. The BNB paper compares against it only through its
//! complexity rows in Tables 1 and 2:
//!
//! | quantity | leading terms |
//! |---|---|
//! | 2×2 switches | `N/4·log³N` |
//! | function slices | `N/2·log²N` |
//! | adder slices | `N·log²N` |
//! | delay | `2/3·log³N − log²N + 1/3·log N + 1` |
//!
//! **Substitution note** (see DESIGN.md): the full 1989 design is not
//! reproducible from the BNB paper alone, so this module provides (a) the
//! exact analytical model above — everything Tables 1–2 need — and (b) a
//! *behavioural stand-in* that routes permutations the way Koppelman's
//! network does architecturally: per address bit, a ranking tree computes
//! each record's destination-preserving rank, and a positional network
//! places records by rank (stable radix partition). It routes all
//! permutations and exposes the rank-tree depth, so the "local splitters vs
//! global ranking" ablation (A1) can be measured on working code.

use bnb_core::cost::HardwareCost;
use bnb_core::error::RouteError;
use bnb_topology::connection::require_power_of_two;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// Analytical model and behavioural stand-in for the Koppelman–Oruç SRPN.
///
/// # Example
///
/// ```
/// use bnb_baselines::koppelman::KoppelmanModel;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net = KoppelmanModel::with_inputs(8)?;
/// let p = Permutation::try_from(vec![5, 1, 7, 3, 0, 6, 2, 4])?;
/// assert!(all_delivered(&net.route(&records_for_permutation(&p))?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KoppelmanModel {
    m: usize,
}

impl KoppelmanModel {
    /// A model for `2^m` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "network needs at least 2 inputs");
        KoppelmanModel { m }
    }

    /// A model for `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let m = require_power_of_two(n)?;
        if m == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(Self::new(m))
    }

    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Network width.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// Table 1 leading-term hardware model: `N/4·log³N` switches,
    /// `N/2·log²N` function slices, `N·log²N` adder slices.
    pub fn cost(&self) -> HardwareCost {
        let n = 1u64 << self.m;
        let mu = self.m as u64;
        HardwareCost {
            switches: n / 4 * mu * mu * mu,
            function_nodes: n / 2 * mu * mu,
            adder_slices: n * mu * mu,
        }
    }

    /// Table 2 delay polynomial with unit weights:
    /// `2/3·log³N − log²N + 1/3·log N + 1`.
    pub fn table2(m: usize) -> f64 {
        let mf = m as f64;
        2.0 / 3.0 * mf.powi(3) - mf.powi(2) + mf / 3.0 + 1.0
    }

    /// Behavioural stand-in routing: per address bit (LSB first), a ranking
    /// tree assigns each record its stable-partition rank and the records
    /// are placed by rank — an LSD radix sort, which is what rank-based
    /// bit-sorting realizes. Routes every permutation.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`],
    /// [`RouteError::DestinationTooWide`] or
    /// [`RouteError::DuplicateDestination`] on malformed input.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        Ok(self.route_counted(records)?.0)
    }

    /// Like [`KoppelmanModel::route`], also returning the total ranking
    /// adder-node operations performed — the "global information" work the
    /// BNB's local arbiters avoid (ablation A1).
    ///
    /// # Errors
    ///
    /// Same as [`KoppelmanModel::route`].
    pub fn route_counted(&self, records: &[Record]) -> Result<(Vec<Record>, usize), RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        let mut seen = vec![usize::MAX; n];
        for (i, r) in records.iter().enumerate() {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
            if seen[r.dest()] != usize::MAX {
                return Err(RouteError::DuplicateDestination {
                    dest: r.dest(),
                    first_input: seen[r.dest()],
                    second_input: i,
                });
            }
            seen[r.dest()] = i;
        }
        let mut lines = records.to_vec();
        let mut rank_ops = 0usize;
        for bit in 0..self.m {
            // Ranking tree: prefix counts of zeros/ones. A hardware ranking
            // tree performs N−1 adder-node operations per sweep (up) and
            // N−1 on the way down; we count both.
            rank_ops += 2 * (n - 1);
            let zeros = lines.iter().filter(|r| r.dest() >> bit & 1 == 0).count();
            let mut next = vec![Record::new(0, 0); n];
            let mut zero_rank = 0usize;
            let mut one_rank = 0usize;
            for &r in &lines {
                if r.dest() >> bit & 1 == 0 {
                    next[zero_rank] = r;
                    zero_rank += 1;
                } else {
                    next[zeros + one_rank] = r;
                    one_rank += 1;
                }
            }
            lines = next;
        }
        Ok((lines, rank_ops))
    }

    /// Per-stage ranking-tree sweep depth in adder-node levels: `2·log N`
    /// up-and-down, each level adding `log N`-bit numbers (contrast with
    /// the BNB arbiter's one-gate nodes) — the source of the `2/3·log³N`
    /// leading delay term.
    pub fn rank_tree_depth(&self) -> usize {
        2 * self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn routes_all_permutations_n8() {
        let net = KoppelmanModel::new(3);
        for k in 0..40_320 {
            let p = Permutation::nth_lexicographic(8, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p}");
        }
    }

    #[test]
    fn routes_random_large() {
        let mut rng = StdRng::seed_from_u64(21);
        for m in [5usize, 8] {
            let net = KoppelmanModel::new(m);
            let p = Permutation::random(1 << m, &mut rng);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out));
        }
    }

    #[test]
    fn cost_matches_table1_rows() {
        let net = KoppelmanModel::new(4); // N = 16
        let c = net.cost();
        assert_eq!(c.switches, 16 / 4 * 64);
        assert_eq!(c.function_nodes, 16 / 2 * 16);
        assert_eq!(c.adder_slices, 16 * 16);
    }

    #[test]
    fn table2_polynomial_spot_check() {
        // m = 3: 2/3·27 − 9 + 1 + 1 = 11.
        assert!((KoppelmanModel::table2(3) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn rank_ops_scale_with_n_log_n() {
        let net = KoppelmanModel::new(4);
        let p = Permutation::identity(16);
        let (_, ops) = net.route_counted(&records_for_permutation(&p)).unwrap();
        assert_eq!(ops, 4 * 2 * 15); // m stages × 2(N−1)
        assert_eq!(net.rank_tree_depth(), 8);
    }

    #[test]
    fn validates_input() {
        let net = KoppelmanModel::new(2);
        assert!(net.route(&[Record::new(0, 0)]).is_err());
        let dup = vec![
            Record::new(2, 0),
            Record::new(2, 1),
            Record::new(1, 2),
            Record::new(0, 3),
        ];
        assert!(matches!(
            net.route(&dup),
            Err(RouteError::DuplicateDestination { dest: 2, .. })
        ));
    }
}
