//! Batcher's bitonic sorting network — an extra `O(N log²N)`-comparator
//! reference point with the same asymptotics as the odd–even merge network
//! but a higher constant (`N/4·log²N + N/4·log N` comparators), included to
//! show the Table 1 comparison is not an artifact of one particular sorting
//! network.

use bnb_core::cost::HardwareCost;
use bnb_core::delay::PropagationDelay;
use bnb_core::error::RouteError;
use bnb_topology::connection::require_power_of_two;
use bnb_topology::record::Record;

use crate::batcher::Comparator;

/// Batcher's `N = 2^m`-input bitonic sorting network.
///
/// # Example
///
/// ```
/// use bnb_baselines::bitonic::BitonicNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net = BitonicNetwork::with_inputs(8)?;
/// let p = Permutation::try_from(vec![7, 0, 3, 5, 1, 6, 2, 4])?;
/// assert!(all_delivered(&net.route(&records_for_permutation(&p))?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitonicNetwork {
    m: usize,
    stages: Vec<Vec<Comparator>>,
}

impl BitonicNetwork {
    /// Builds the network for `2^m` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "sorting network needs at least 2 inputs");
        let n = 1usize << m;
        // The iterative bitonic construction: phase k merges bitonic runs of
        // length 2^{k+1}; sub-phase j compares lines 2^j apart. Stages are
        // naturally parallel.
        let mut stages = Vec::new();
        for k in 0..m {
            for j in (0..=k).rev() {
                let dist = 1usize << j;
                let mut stage = Vec::with_capacity(n / 2);
                for i in 0..n {
                    let partner = i ^ dist;
                    if partner > i {
                        // Sort ascending when bit (k+1) of i is 0.
                        let ascending = i & (1 << (k + 1)) == 0 || k + 1 >= m;
                        if ascending {
                            stage.push(Comparator {
                                low: i,
                                high: partner,
                            });
                        } else {
                            stage.push(Comparator {
                                low: partner,
                                high: i,
                            });
                        }
                    }
                }
                stages.push(stage);
            }
        }
        BitonicNetwork { m, stages }
    }

    /// Builds the network for `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let m = require_power_of_two(n)?;
        if m == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(Self::new(m))
    }

    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Network width.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// The comparator schedule, stage by stage.
    pub fn stages(&self) -> &[Vec<Comparator>] {
        &self.stages
    }

    /// Total comparators: `N/4 · log N · (log N + 1)` (every one of the
    /// `log N(log N+1)/2` stages is a full column of `N/2`).
    pub fn comparator_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Number of parallel stages: `log N (log N + 1)/2`, the same depth as
    /// odd–even merge.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Routes records by sorting on destination address.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::batcher::BatcherNetwork::route`].
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        for r in records {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
        }
        let mut lines = records.to_vec();
        for stage in &self.stages {
            for c in stage {
                if lines[c.low].dest() > lines[c.high].dest() {
                    lines.swap(c.low, c.high);
                }
            }
        }
        Ok(lines)
    }

    /// Hardware cost under the paper's comparison-element model (same per-CE
    /// slices as eq. (11)).
    pub fn cost(&self, w: usize) -> HardwareCost {
        let ce = self.comparator_count() as u64;
        HardwareCost {
            switches: ce * (self.m + w) as u64,
            function_nodes: ce * self.m as u64,
            adder_slices: 0,
        }
    }

    /// Propagation delay under the paper's model (same per-stage terms as
    /// eq. (12); identical depth to odd–even merge).
    pub fn delay(&self) -> PropagationDelay {
        let stages = self.stage_count() as u64;
        PropagationDelay {
            switch_units: stages,
            fn_units: stages * self.m as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn comparator_count_is_full_columns() {
        for m in 1..=8u64 {
            let net = BitonicNetwork::new(m as usize);
            let n = 1u64 << m;
            assert_eq!(
                net.comparator_count() as u64,
                n / 2 * m * (m + 1) / 2,
                "m = {m}"
            );
            assert_eq!(net.stage_count() as u64, m * (m + 1) / 2);
        }
    }

    #[test]
    fn routes_all_permutations_n8() {
        let net = BitonicNetwork::new(3);
        for k in 0..40_320 {
            let p = Permutation::nth_lexicographic(8, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p}");
        }
    }

    #[test]
    fn routes_random_permutations_large() {
        let mut rng = StdRng::seed_from_u64(3);
        for m in [4usize, 6, 9] {
            let net = BitonicNetwork::new(m);
            let n = 1 << m;
            for _ in 0..10 {
                let p = Permutation::random(n, &mut rng);
                let out = net.route(&records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "m = {m}");
            }
        }
    }

    #[test]
    fn costs_more_than_odd_even_merge() {
        use crate::batcher::BatcherNetwork;
        for m in 2..=8 {
            let bitonic = BitonicNetwork::new(m);
            let oem = BatcherNetwork::new(m);
            assert!(
                bitonic.comparator_count() > oem.comparator_count(),
                "bitonic must be the more expensive sorter (m = {m})"
            );
            assert_eq!(bitonic.stage_count(), oem.stage_count());
        }
    }

    #[test]
    fn validates_input() {
        let net = BitonicNetwork::new(2);
        assert!(net.route(&[Record::new(0, 0)]).is_err());
        assert!(BitonicNetwork::with_inputs(5).is_err());
    }
}
