//! The length-prefixed binary wire protocol spoken by `bnb serve`.
//!
//! Every message is a 4-byte big-endian body length followed by the body;
//! the body opens with a fixed 12-byte header (version byte, opcode byte,
//! big-endian tenant id and request id) and closes with an opcode-specific
//! payload. See DESIGN.md §14 for the full specification and a worked hex
//! example.
//!
//! Decoding is total: any byte sequence produces either a [`Message`] or a
//! typed [`WireError`] — never a panic and never an unbounded allocation
//! (the length prefix is validated against [`MAX_BODY`] *before* the body
//! is read).

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Protocol version carried in every message.
pub const VERSION: u8 = 1;

/// Fixed body header: version, opcode, tenant (u16), request id (u64).
pub const HEADER_LEN: usize = 12;

/// Largest record count a SUBMIT/ROUTED payload may carry.
pub const MAX_RECORDS: usize = 1 << 20;

/// Largest accepted body length: header + auth tag + count word +
/// `MAX_RECORDS` 4-byte records. Anything longer is rejected before
/// allocation.
pub const MAX_BODY: usize = HEADER_LEN + 8 + 4 + 4 * MAX_RECORDS;

/// Client → server: route one permutation frame.
pub const OP_SUBMIT: u8 = 0x01;
/// Server → client: the routed frame for an accepted SUBMIT.
pub const OP_ROUTED: u8 = 0x02;
/// Server → client: the frame was refused, re-offer later.
pub const OP_RETRY: u8 = 0x03;
/// Server → client: the frame (or the connection) failed.
pub const OP_ERROR: u8 = 0x04;
/// Client → server: begin a graceful drain (trusted-client admin op).
pub const OP_SHUTDOWN: u8 = 0x05;
/// Client → server: request a status report (empty payload).
pub const OP_STATUS: u8 = 0x06;
/// Server → client: the status report; the payload is a UTF-8 JSON
/// document with the same shape as the `/status` HTTP endpoint.
pub const OP_STATUS_REPORT: u8 = 0x07;
/// Client → server: route one permutation frame, authenticated — the
/// payload opens with an 8-byte SipHash-2-4 tag over the canonical
/// `(tenant, request_id, dests)` encoding under the tenant's shared key.
pub const OP_SUBMIT_TAGGED: u8 = 0x08;

/// Why a frame was pushed back with [`Message::Retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryReason {
    /// The engine's bounded submission queue is full.
    QueueFull,
    /// The tenant is at its in-flight quota.
    TenantQuota,
    /// The server is draining for shutdown.
    Draining,
    /// The connection's in-flight pipelining window is exhausted.
    WindowFull,
}

impl RetryReason {
    /// The wire byte for this reason.
    pub fn as_u8(self) -> u8 {
        match self {
            RetryReason::QueueFull => 1,
            RetryReason::TenantQuota => 2,
            RetryReason::Draining => 3,
            RetryReason::WindowFull => 4,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(byte: u8) -> Result<Self, WireError> {
        match byte {
            1 => Ok(RetryReason::QueueFull),
            2 => Ok(RetryReason::TenantQuota),
            3 => Ok(RetryReason::Draining),
            4 => Ok(RetryReason::WindowFull),
            got => Err(WireError::BadRetryReason { got }),
        }
    }
}

/// What kind of failure an [`Message::Error`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The frame failed validation or routing inside the engine.
    Route,
    /// The connection violated the wire protocol.
    Protocol,
    /// The SUBMIT's authentication tag was missing or wrong for a server
    /// running with tenant keys.
    Auth,
}

impl ErrorCode {
    /// The wire byte for this code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Route => 1,
            ErrorCode::Protocol => 2,
            ErrorCode::Auth => 3,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(byte: u8) -> Result<Self, WireError> {
        match byte {
            1 => Ok(ErrorCode::Route),
            2 => Ok(ErrorCode::Protocol),
            3 => Ok(ErrorCode::Auth),
            got => Err(WireError::BadErrorCode { got }),
        }
    }
}

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Route a permutation frame: `dests[i]` is input `i`'s destination.
    Submit {
        /// Submitting tenant.
        tenant: u16,
        /// Client-chosen id echoed back on the response.
        request_id: u64,
        /// Destination output per input line.
        dests: Vec<u32>,
    },
    /// Route a permutation frame with a keyed authentication tag (see
    /// [`OP_SUBMIT_TAGGED`]). Servers running in open mode treat it
    /// exactly like [`Message::Submit`]; keyed servers verify the tag.
    SubmitTagged {
        /// Submitting tenant.
        tenant: u16,
        /// Client-chosen id echoed back on the response.
        request_id: u64,
        /// SipHash-2-4 tag over the canonical `(tenant, request_id,
        /// dests)` encoding under the tenant's shared key.
        tag: u64,
        /// Destination output per input line.
        dests: Vec<u32>,
    },
    /// The routed frame: `sources[j]` is the input that arrived at
    /// output `j`.
    Routed {
        /// Tenant the frame belongs to.
        tenant: u16,
        /// The SUBMIT's request id.
        request_id: u64,
        /// Source input per output line.
        sources: Vec<u32>,
    },
    /// The frame was refused; the client may re-offer it later.
    Retry {
        /// Tenant the frame belongs to.
        tenant: u16,
        /// The SUBMIT's request id.
        request_id: u64,
        /// Why the frame was pushed back.
        reason: RetryReason,
    },
    /// The frame (or the connection) failed.
    Error {
        /// Tenant the failure belongs to (0 for connection-level).
        tenant: u16,
        /// The SUBMIT's request id (0 for connection-level).
        request_id: u64,
        /// Failure class.
        code: ErrorCode,
        /// Human-readable cause chain.
        message: String,
    },
    /// Ask the server to drain gracefully and exit.
    Shutdown {
        /// Requesting tenant.
        tenant: u16,
        /// Client-chosen id (not answered).
        request_id: u64,
    },
    /// Ask the server for a status report.
    Status {
        /// Requesting tenant.
        tenant: u16,
        /// Client-chosen id echoed back on the report.
        request_id: u64,
    },
    /// The status report for a [`Message::Status`] request.
    StatusReport {
        /// Tenant that asked.
        tenant: u16,
        /// The STATUS's request id.
        request_id: u64,
        /// UTF-8 JSON document (same shape as the `/status` endpoint).
        json: String,
    },
}

impl Message {
    /// The message's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Message::Submit { .. } => OP_SUBMIT,
            Message::SubmitTagged { .. } => OP_SUBMIT_TAGGED,
            Message::Routed { .. } => OP_ROUTED,
            Message::Retry { .. } => OP_RETRY,
            Message::Error { .. } => OP_ERROR,
            Message::Shutdown { .. } => OP_SHUTDOWN,
            Message::Status { .. } => OP_STATUS,
            Message::StatusReport { .. } => OP_STATUS_REPORT,
        }
    }

    /// The tenant id in the header.
    pub fn tenant(&self) -> u16 {
        match self {
            Message::Submit { tenant, .. }
            | Message::SubmitTagged { tenant, .. }
            | Message::Routed { tenant, .. }
            | Message::Retry { tenant, .. }
            | Message::Error { tenant, .. }
            | Message::Shutdown { tenant, .. }
            | Message::Status { tenant, .. }
            | Message::StatusReport { tenant, .. } => *tenant,
        }
    }

    /// The request id in the header.
    pub fn request_id(&self) -> u64 {
        match self {
            Message::Submit { request_id, .. }
            | Message::SubmitTagged { request_id, .. }
            | Message::Routed { request_id, .. }
            | Message::Retry { request_id, .. }
            | Message::Error { request_id, .. }
            | Message::Shutdown { request_id, .. }
            | Message::Status { request_id, .. }
            | Message::StatusReport { request_id, .. } => *request_id,
        }
    }

    /// Appends the full wire encoding (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0u8; 4]); // length, patched below
        out.push(VERSION);
        out.push(self.opcode());
        out.extend_from_slice(&self.tenant().to_be_bytes());
        out.extend_from_slice(&self.request_id().to_be_bytes());
        match self {
            Message::Submit { dests: lines, .. } | Message::Routed { sources: lines, .. } => {
                out.extend_from_slice(&(lines.len() as u32).to_be_bytes());
                for &line in lines {
                    out.extend_from_slice(&line.to_be_bytes());
                }
            }
            Message::SubmitTagged { tag, dests, .. } => {
                out.extend_from_slice(&tag.to_be_bytes());
                out.extend_from_slice(&(dests.len() as u32).to_be_bytes());
                for &line in dests {
                    out.extend_from_slice(&line.to_be_bytes());
                }
            }
            Message::Retry { reason, .. } => out.push(reason.as_u8()),
            Message::Error { code, message, .. } => {
                out.push(code.as_u8());
                let msg = message.as_bytes();
                let take = msg.len().min(u16::MAX as usize);
                out.extend_from_slice(&(take as u16).to_be_bytes());
                out.extend_from_slice(&msg[..take]);
            }
            Message::Shutdown { .. } | Message::Status { .. } => {}
            Message::StatusReport { json, .. } => out.extend_from_slice(json.as_bytes()),
        }
        let body_len = (out.len() - start - 4) as u32;
        out[start..start + 4].copy_from_slice(&body_len.to_be_bytes());
    }

    /// The full wire encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// A typed wire-format violation. Produced instead of panicking for any
/// malformed, truncated, or oversized input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The version byte is not [`VERSION`].
    BadVersion {
        /// The byte received.
        got: u8,
    },
    /// The opcode byte names no known message.
    UnknownOpcode {
        /// The byte received.
        got: u8,
    },
    /// The body ended before the structure it declared.
    Truncated {
        /// Bytes the structure needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix (or a declared record count) exceeds the
    /// protocol bound.
    Oversized {
        /// Declared length.
        len: u64,
        /// The bound it broke.
        max: u64,
    },
    /// The payload length disagrees with its declared element count.
    LengthMismatch {
        /// Bytes the declared count implies.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A RETRY carried an unknown reason byte.
    BadRetryReason {
        /// The byte received.
        got: u8,
    },
    /// An ERROR carried an unknown code byte.
    BadErrorCode {
        /// The byte received.
        got: u8,
    },
    /// An ERROR message body is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (expected {VERSION})")
            }
            WireError::UnknownOpcode { got } => write!(f, "unknown opcode 0x{got:02x}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: declared {len} bytes, max {max}")
            }
            WireError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "payload length mismatch: count implies {expected} bytes, got {got}"
                )
            }
            WireError::BadRetryReason { got } => write!(f, "unknown retry reason {got}"),
            WireError::BadErrorCode { got } => write!(f, "unknown error code {got}"),
            WireError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decodes one message body (everything after the length prefix).
pub fn decode_body(body: &[u8]) -> Result<Message, WireError> {
    if body.len() > MAX_BODY {
        return Err(WireError::Oversized {
            len: body.len() as u64,
            max: MAX_BODY as u64,
        });
    }
    if body.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: body.len(),
        });
    }
    let version = body[0];
    if version != VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let opcode = body[1];
    let tenant = u16::from_be_bytes([body[2], body[3]]);
    let request_id = u64::from_be_bytes([
        body[4], body[5], body[6], body[7], body[8], body[9], body[10], body[11],
    ]);
    let payload = &body[HEADER_LEN..];
    match opcode {
        OP_SUBMIT | OP_ROUTED => {
            if payload.len() < 4 {
                return Err(WireError::Truncated {
                    needed: HEADER_LEN + 4,
                    got: body.len(),
                });
            }
            let count = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]) as u64;
            if count > MAX_RECORDS as u64 {
                return Err(WireError::Oversized {
                    len: count,
                    max: MAX_RECORDS as u64,
                });
            }
            let expected = 4 * count;
            let got = (payload.len() - 4) as u64;
            if expected != got {
                return Err(WireError::LengthMismatch { expected, got });
            }
            let lines: Vec<u32> = payload[4..]
                .chunks_exact(4)
                .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok(if opcode == OP_SUBMIT {
                Message::Submit {
                    tenant,
                    request_id,
                    dests: lines,
                }
            } else {
                Message::Routed {
                    tenant,
                    request_id,
                    sources: lines,
                }
            })
        }
        OP_SUBMIT_TAGGED => {
            if payload.len() < 12 {
                return Err(WireError::Truncated {
                    needed: HEADER_LEN + 12,
                    got: body.len(),
                });
            }
            let tag = u64::from_be_bytes([
                payload[0], payload[1], payload[2], payload[3], payload[4], payload[5],
                payload[6], payload[7],
            ]);
            let count =
                u32::from_be_bytes([payload[8], payload[9], payload[10], payload[11]]) as u64;
            if count > MAX_RECORDS as u64 {
                return Err(WireError::Oversized {
                    len: count,
                    max: MAX_RECORDS as u64,
                });
            }
            let expected = 4 * count;
            let got = (payload.len() - 12) as u64;
            if expected != got {
                return Err(WireError::LengthMismatch { expected, got });
            }
            let dests: Vec<u32> = payload[12..]
                .chunks_exact(4)
                .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok(Message::SubmitTagged {
                tenant,
                request_id,
                tag,
                dests,
            })
        }
        OP_RETRY => {
            if payload.len() != 1 {
                return Err(WireError::LengthMismatch {
                    expected: 1,
                    got: payload.len() as u64,
                });
            }
            Ok(Message::Retry {
                tenant,
                request_id,
                reason: RetryReason::from_u8(payload[0])?,
            })
        }
        OP_ERROR => {
            if payload.len() < 3 {
                return Err(WireError::Truncated {
                    needed: HEADER_LEN + 3,
                    got: body.len(),
                });
            }
            let code = ErrorCode::from_u8(payload[0])?;
            let msg_len = u16::from_be_bytes([payload[1], payload[2]]) as u64;
            let got = (payload.len() - 3) as u64;
            if msg_len != got {
                return Err(WireError::LengthMismatch {
                    expected: msg_len,
                    got,
                });
            }
            let message = std::str::from_utf8(&payload[3..])
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Ok(Message::Error {
                tenant,
                request_id,
                code,
                message,
            })
        }
        OP_SHUTDOWN | OP_STATUS => {
            if !payload.is_empty() {
                return Err(WireError::LengthMismatch {
                    expected: 0,
                    got: payload.len() as u64,
                });
            }
            Ok(if opcode == OP_SHUTDOWN {
                Message::Shutdown { tenant, request_id }
            } else {
                Message::Status { tenant, request_id }
            })
        }
        OP_STATUS_REPORT => {
            let json = std::str::from_utf8(payload)
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Ok(Message::StatusReport {
                tenant,
                request_id,
                json,
            })
        }
        got => Err(WireError::UnknownOpcode { got }),
    }
}

/// A framed-read failure: transport, wire format, or idle timeout.
#[derive(Debug)]
pub enum RecvError {
    /// The underlying stream failed (including mid-frame stalls past the
    /// deadline).
    Io(io::Error),
    /// The frame violated the wire format.
    Wire(WireError),
    /// The stream idled past its read timeout *between* frames — benign;
    /// poll a shutdown flag and call again.
    IdleTimeout,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Wire(e) => write!(f, "wire error: {e}"),
            RecvError::IdleTimeout => write!(f, "idle between frames"),
        }
    }
}

impl std::error::Error for RecvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecvError::Io(e) => Some(e),
            RecvError::Wire(e) => Some(e),
            RecvError::IdleTimeout => None,
        }
    }
}

impl From<WireError> for RecvError {
    fn from(e: WireError) -> Self {
        RecvError::Wire(e)
    }
}

/// How long a partially received frame may stall before the read fails.
/// Bounds graceful-drain time against clients that die mid-frame.
const MID_FRAME_DEADLINE: Duration = Duration::from_secs(5);

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fills `buf` from `r`. Returns `Ok(false)` on clean EOF *before the
/// first byte*; timeouts before the first byte surface as
/// [`RecvError::IdleTimeout`], timeouts after it retry until
/// [`MID_FRAME_DEADLINE`].
fn fill(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, RecvError> {
    let mut filled = 0;
    let mut stalled_since: Option<Instant> = None;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(RecvError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                )));
            }
            Ok(n) => {
                filled += n;
                stalled_since = None;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if filled == 0 {
                    return Err(RecvError::IdleTimeout);
                }
                let since = *stalled_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= MID_FRAME_DEADLINE {
                    return Err(RecvError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "stream stalled mid-frame",
                    )));
                }
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one framed message. `Ok(None)` on clean EOF at a frame boundary;
/// [`RecvError::IdleTimeout`] when the stream's read timeout fires between
/// frames (retry after checking shutdown flags). The length prefix is
/// validated against [`MAX_BODY`] before any body allocation.
pub fn read_message(r: &mut impl Read) -> Result<Option<Message>, RecvError> {
    Ok(read_message_timed(r)?.map(|(msg, _)| msg))
}

/// [`read_message`], also reporting how long receiving and decoding the
/// frame took in nanoseconds. The clock starts *after* the length prefix
/// arrives, so idle time between frames is not charged — what remains is
/// the body read plus [`decode_body`], the decode stage of the request
/// lifecycle.
pub fn read_message_timed(r: &mut impl Read) -> Result<Option<(Message, u64)>, RecvError> {
    let mut len_buf = [0u8; 4];
    if !fill(r, &mut len_buf)? {
        return Ok(None);
    }
    let started = Instant::now();
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_BODY {
        return Err(WireError::Oversized {
            len: len as u64,
            max: MAX_BODY as u64,
        }
        .into());
    }
    let mut body = vec![0u8; len];
    if !fill(r, &mut body)? {
        return Err(RecvError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream closed between length and body",
        )));
    }
    let msg = decode_body(&body)?;
    let decode_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    Ok(Some((msg, decode_ns)))
}

/// Writes one framed message.
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    w.write_all(&msg.to_bytes())
}

/// Incremental frame decoder for nonblocking sockets.
///
/// A reactor feeds whatever bytes `read(2)` produced and pulls complete
/// messages out; partial frames stay buffered across feeds. Decoding is
/// as total as [`decode_body`]: a [`WireError`] (oversized prefix,
/// malformed body) is a connection-fatal protocol violation, never a
/// panic. The length prefix is validated against [`MAX_BODY`] as soon as
/// it is visible, so buffered memory per connection stays bounded.
///
/// The per-frame decode clock matches [`read_message_timed`]: it starts
/// when the frame's 4-byte length prefix is fully buffered and stops
/// when the body parses, so idle time between frames is not charged.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
    frame_started: Option<Instant>,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Buffers freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed buffered bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The unconsumed bytes, without consuming them (protocol sniffing).
    pub fn peek(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// When the in-progress frame's length prefix arrived, if a frame is
    /// mid-assembly — reactors use it to time out clients that die
    /// mid-frame without pinning a drain forever.
    pub fn frame_wait_started(&self) -> Option<Instant> {
        self.frame_started
    }

    /// Pops the next complete message, with its decode nanoseconds.
    /// `Ok(None)` means "need more bytes"; an error is connection-fatal.
    pub fn next_frame(&mut self) -> Result<Option<(Message, u64)>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let p = &self.buf[self.start..];
        let len = u32::from_be_bytes([p[0], p[1], p[2], p[3]]) as usize;
        if len > MAX_BODY {
            return Err(WireError::Oversized {
                len: len as u64,
                max: MAX_BODY as u64,
            });
        }
        if avail < 4 + len {
            // Prefix visible, body incomplete: the decode clock is
            // running while we wait for the rest.
            if self.frame_started.is_none() {
                self.frame_started = Some(Instant::now());
            }
            self.compact();
            return Ok(None);
        }
        let started = self.frame_started.take().unwrap_or_else(Instant::now);
        let body = &self.buf[self.start + 4..self.start + 4 + len];
        let msg = decode_body(body)?;
        let decode_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.start += 4 + len;
        self.compact();
        Ok(Some((msg, decode_ns)))
    }

    /// Reclaims consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = msg.to_bytes();
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert_eq!(len, bytes.len() - 4, "length prefix covers the body");
        assert_eq!(decode_body(&bytes[4..]), Ok(msg.clone()));
        // And through the framed reader.
        let mut cursor = io::Cursor::new(&bytes);
        assert_eq!(read_message(&mut cursor).unwrap(), Some(msg));
    }

    #[test]
    fn every_opcode_round_trips() {
        roundtrip(Message::Submit {
            tenant: 7,
            request_id: 0xDEAD_BEEF,
            dests: vec![3, 1, 0, 2],
        });
        roundtrip(Message::Routed {
            tenant: 7,
            request_id: 0xDEAD_BEEF,
            sources: vec![2, 1, 3, 0],
        });
        roundtrip(Message::Retry {
            tenant: 1,
            request_id: 2,
            reason: RetryReason::TenantQuota,
        });
        roundtrip(Message::Error {
            tenant: 0,
            request_id: 0,
            code: ErrorCode::Protocol,
            message: "bad frame".into(),
        });
        roundtrip(Message::Shutdown {
            tenant: 9,
            request_id: 100,
        });
        roundtrip(Message::Status {
            tenant: 3,
            request_id: 44,
        });
        roundtrip(Message::StatusReport {
            tenant: 3,
            request_id: 44,
            json: "{\"uptime_ms\":12}".into(),
        });
    }

    #[test]
    fn tagged_submit_round_trips_and_validates() {
        roundtrip(Message::SubmitTagged {
            tenant: 7,
            request_id: 41,
            tag: 0x0123_4567_89AB_CDEF,
            dests: vec![1, 0, 3, 2],
        });
        roundtrip(Message::SubmitTagged {
            tenant: 0,
            request_id: 0,
            tag: 0,
            dests: vec![],
        });
        // Count/payload mismatch is typed, exactly like plain SUBMIT.
        let mut body = vec![VERSION, OP_SUBMIT_TAGGED, 0, 0];
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&7u64.to_be_bytes()); // tag
        body.extend_from_slice(&2u32.to_be_bytes()); // claims 2 records
        body.extend_from_slice(&0u32.to_be_bytes()); // carries 1
        assert_eq!(
            decode_body(&body),
            Err(WireError::LengthMismatch {
                expected: 8,
                got: 4
            })
        );
    }

    #[test]
    fn frame_assembler_handles_byte_at_a_time_and_coalesced_frames() {
        let msgs = vec![
            Message::Submit {
                tenant: 1,
                request_id: 10,
                dests: vec![2, 0, 1, 3],
            },
            Message::Retry {
                tenant: 1,
                request_id: 11,
                reason: RetryReason::WindowFull,
            },
            Message::SubmitTagged {
                tenant: 2,
                request_id: 12,
                tag: 99,
                dests: vec![0, 1],
            },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            m.encode(&mut wire);
        }
        // Byte-at-a-time: every frame pops exactly when its last byte
        // lands, never earlier, never twice.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &wire {
            asm.feed(&[b]);
            while let Some((m, _ns)) = asm.next_frame().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(asm.buffered(), 0);
        // Coalesced: all three frames in one feed pop in order.
        let mut asm = FrameAssembler::new();
        asm.feed(&wire);
        let mut got = Vec::new();
        while let Some((m, _ns)) = asm.next_frame().unwrap() {
            got.push(m);
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn frame_assembler_rejects_oversized_prefix_without_buffering_body() {
        let mut asm = FrameAssembler::new();
        asm.feed(b"GET / HTTP/1.1\r\n");
        match asm.next_frame() {
            Err(WireError::Oversized { len, max }) => {
                assert_eq!(len, u32::from_be_bytes(*b"GET ") as u64);
                assert_eq!(max, MAX_BODY as u64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn frame_assembler_tracks_mid_frame_waits() {
        let mut asm = FrameAssembler::new();
        let bytes = Message::Status {
            tenant: 0,
            request_id: 1,
        }
        .to_bytes();
        asm.feed(&bytes[..4]);
        assert!(asm.next_frame().unwrap().is_none());
        assert!(
            asm.frame_wait_started().is_some(),
            "decode clock runs once the prefix is visible"
        );
        asm.feed(&bytes[4..]);
        let (msg, decode_ns) = asm.next_frame().unwrap().unwrap();
        assert_eq!(msg.request_id(), 1);
        assert!(decode_ns > 0);
        assert!(asm.frame_wait_started().is_none(), "clock cleared");
    }

    #[test]
    fn status_payload_must_be_empty_and_report_utf8() {
        let mut bytes = Message::Status {
            tenant: 0,
            request_id: 0,
        }
        .to_bytes();
        // A STATUS with a stray payload byte is a typed violation.
        bytes.push(0xFF);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_be_bytes());
        assert_eq!(
            decode_body(&bytes[4..]),
            Err(WireError::LengthMismatch {
                expected: 0,
                got: 1
            })
        );
        // A STATUS_REPORT with invalid UTF-8 is rejected, not lossily read.
        let mut body = vec![VERSION, OP_STATUS_REPORT, 0, 0];
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_body(&body), Err(WireError::BadUtf8));
        // An empty report round-trips to an empty document.
        roundtrip(Message::StatusReport {
            tenant: 0,
            request_id: 0,
            json: String::new(),
        });
    }

    #[test]
    fn timed_reads_report_decode_time_and_match_untimed() {
        let msg = Message::Submit {
            tenant: 2,
            request_id: 9,
            dests: vec![1, 0],
        };
        let bytes = msg.to_bytes();
        let mut cursor = io::Cursor::new(&bytes);
        let (got, decode_ns) = read_message_timed(&mut cursor).unwrap().unwrap();
        assert_eq!(got, msg);
        assert!(decode_ns > 0, "decode time is stamped");
        let mut empty = io::Cursor::new(Vec::new());
        assert!(matches!(read_message_timed(&mut empty), Ok(None)));
    }

    #[test]
    fn empty_frames_round_trip() {
        roundtrip(Message::Submit {
            tenant: 0,
            request_id: 0,
            dests: vec![],
        });
        roundtrip(Message::Error {
            tenant: 0,
            request_id: 0,
            code: ErrorCode::Route,
            message: String::new(),
        });
    }

    #[test]
    fn worked_hex_example_matches_design_doc() {
        // The DESIGN.md §14 example: tenant 5, request 7, identity-swap
        // frame of 4 records routing i -> 3 - i.
        let msg = Message::Submit {
            tenant: 5,
            request_id: 7,
            dests: vec![3, 2, 1, 0],
        };
        let expect = [
            0x00, 0x00, 0x00, 0x20, // length: 32-byte body
            0x01, 0x01, // version 1, opcode SUBMIT
            0x00, 0x05, // tenant 5
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, // request id 7
            0x00, 0x00, 0x00, 0x04, // 4 records
            0x00, 0x00, 0x00, 0x03, // dest[0] = 3
            0x00, 0x00, 0x00, 0x02, // dest[1] = 2
            0x00, 0x00, 0x00, 0x01, // dest[2] = 1
            0x00, 0x00, 0x00, 0x00, // dest[3] = 0
        ];
        assert_eq!(msg.to_bytes(), expect);
    }

    #[test]
    fn bad_version_and_opcode_are_typed() {
        let mut bytes = Message::Shutdown {
            tenant: 0,
            request_id: 0,
        }
        .to_bytes();
        bytes[4] = 9;
        assert_eq!(
            decode_body(&bytes[4..]),
            Err(WireError::BadVersion { got: 9 })
        );
        bytes[4] = VERSION;
        bytes[5] = 0x7F;
        assert_eq!(
            decode_body(&bytes[4..]),
            Err(WireError::UnknownOpcode { got: 0x7F })
        );
    }

    #[test]
    fn truncation_is_typed_never_a_panic() {
        let bytes = Message::Submit {
            tenant: 1,
            request_id: 2,
            dests: vec![1, 0],
        }
        .to_bytes();
        for cut in 0..bytes.len() - 4 {
            let body = &bytes[4..4 + cut];
            let err = decode_body(body).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::LengthMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // An HTTP "GET " read as a length prefix is ~1.2 GB — the reader
        // must refuse it without allocating.
        let bytes = *b"GET / HTTP/1.1\r\n";
        let mut cursor = io::Cursor::new(&bytes[..]);
        match read_message(&mut cursor) {
            Err(RecvError::Wire(WireError::Oversized { len, max })) => {
                assert_eq!(len, u32::from_be_bytes(*b"GET ") as u64);
                assert_eq!(max, MAX_BODY as u64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn oversized_record_count_is_rejected() {
        let mut body = vec![VERSION, OP_SUBMIT, 0, 0];
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&(MAX_RECORDS as u32 + 1).to_be_bytes());
        assert_eq!(
            decode_body(&body),
            Err(WireError::Oversized {
                len: MAX_RECORDS as u64 + 1,
                max: MAX_RECORDS as u64,
            })
        );
    }

    #[test]
    fn count_payload_mismatch_is_typed() {
        let mut body = vec![VERSION, OP_SUBMIT, 0, 0];
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&4u32.to_be_bytes()); // claims 4 records
        body.extend_from_slice(&0u32.to_be_bytes()); // carries 1
        assert_eq!(
            decode_body(&body),
            Err(WireError::LengthMismatch {
                expected: 16,
                got: 4
            })
        );
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_error() {
        let mut empty = io::Cursor::new(Vec::new());
        assert!(matches!(read_message(&mut empty), Ok(None)));
        let bytes = Message::Shutdown {
            tenant: 0,
            request_id: 0,
        }
        .to_bytes();
        // Cut inside the length prefix and inside the body.
        for cut in [2usize, 4, 9] {
            let mut cursor = io::Cursor::new(bytes[..cut].to_vec());
            assert!(
                matches!(read_message(&mut cursor), Err(RecvError::Io(_))),
                "cut at {cut} must be an unexpected-EOF transport error"
            );
        }
    }

    #[test]
    fn long_error_messages_truncate_to_u16() {
        let msg = Message::Error {
            tenant: 0,
            request_id: 0,
            code: ErrorCode::Route,
            message: "x".repeat(70_000),
        };
        let bytes = msg.to_bytes();
        match decode_body(&bytes[4..]).unwrap() {
            Message::Error { message, .. } => assert_eq!(message.len(), u16::MAX as usize),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
