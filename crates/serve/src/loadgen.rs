//! The load-generator client for `bnb serve`.
//!
//! The generator drives [`LoadgenConfig::connections`] concurrent
//! connections (default: one per tenant; beyond that, connections share
//! tenants round-robin), each with a sender thread and a receiver
//! thread. Two pacing modes:
//!
//! - **closed loop**: at most `inflight` unanswered frames per tenant —
//!   every response (ROUTED, RETRY, or ERROR) releases a send credit.
//!   Setting `inflight` above the server's tenant quota deliberately
//!   drives the server into its explicit-RETRY backpressure path.
//! - **open loop**: frames are sent on a fixed wall-clock schedule at the
//!   target aggregate QPS regardless of responses, which measures queueing
//!   latency honestly (no coordinated omission).
//!
//! Every ROUTED response is verified against the submitted permutation:
//! output `j` must have received the input whose destination was `j`.
//! Misdeliveries, routing errors, retries, and unanswered frames are all
//! tallied separately in the [`LoadgenReport`]; latency percentiles come
//! from per-tenant [`AtomicHistogram`]s merged into run-wide totals.
//!
//! With [`LoadgenConfig::max_resubmits`] > 0 the generator behaves like a
//! well-mannered client under backpressure: a RETRY response re-enqueues
//! the frame (up to the cap) through the sender thread instead of
//! abandoning it, and frames eventually served after a RETRY feed a
//! separate first-send-to-served histogram ([`LoadgenReport::retry_latency`])
//! so backpressure cost is visible apart from first-attempt latency.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bnb_obs::{AtomicHistogram, LatencyHistogram};
use bnb_topology::perm::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::auth::TenantKeys;
use crate::protocol::{read_message, write_message, Message, RecvError};

/// How the load generator paces its submissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// At most this many unanswered frames per tenant; each response
    /// releases a send credit.
    Closed {
        /// Per-tenant in-flight window.
        inflight: usize,
    },
    /// Fixed-schedule sending at this aggregate frames-per-second target,
    /// split evenly across tenants.
    Open {
        /// Aggregate target QPS across all tenants.
        qps: f64,
    },
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:9500`.
    pub addr: String,
    /// Tenant ids in play (`0..tenants`).
    pub tenants: u16,
    /// Concurrent connections. `0` means one per tenant; otherwise
    /// connection `i` submits as tenant `i % tenants`.
    pub connections: usize,
    /// Frames each connection submits.
    pub frames: u64,
    /// Records per frame — must match the server's network size.
    pub inputs: usize,
    /// Pacing mode.
    pub mode: LoadMode,
    /// Seed for the per-frame random permutations.
    pub seed: u64,
    /// How long a receiver waits for a quiet wire before declaring the
    /// remaining outstanding frames unanswered.
    pub drain_window: Duration,
    /// Send a SHUTDOWN to the server after all tenants finish.
    pub shutdown_when_done: bool,
    /// How many times one frame may be resubmitted after a RETRY before
    /// the generator gives up on it. `0` treats every RETRY as final.
    pub max_resubmits: u32,
    /// Tenant signing keys. When set, every submit (and resubmit) goes
    /// out as `SUBMIT_TAGGED` with the tenant's SipHash tag — required
    /// against a server running with `--tenant-keys`.
    pub keys: Option<TenantKeys>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:9500".to_string(),
            tenants: 4,
            connections: 0,
            frames: 64,
            inputs: 64,
            mode: LoadMode::Closed { inflight: 4 },
            seed: 0xB1B0,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
            max_resubmits: 0,
            keys: None,
        }
    }
}

impl LoadgenConfig {
    /// The concrete connection count this config drives.
    pub fn effective_connections(&self) -> usize {
        if self.connections == 0 {
            usize::from(self.tenants.max(1))
        } else {
            self.connections
        }
    }
}

/// Latency percentiles in nanoseconds, from the shared histogram.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyPercentiles {
    /// Fastest served frame.
    pub min_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Slowest served frame.
    pub max_ns: u64,
    /// Arithmetic mean (bucket-midpoint approximation).
    pub mean_ns: u64,
}

/// What a load-generation run observed.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Tenant ids driven.
    pub tenants: u16,
    /// Concurrent connections driven.
    pub connections: usize,
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Distinct frames submitted across all tenants (resubmissions of
    /// the same frame are counted in `resubmitted`, not here).
    pub submitted: u64,
    /// Frames answered with ROUTED and verified correct.
    pub served: u64,
    /// Frames abandoned after a RETRY (resubmit budget exhausted, or
    /// resubmits disabled).
    pub retried: u64,
    /// RETRY responses answered by resubmitting the frame.
    pub resubmitted: u64,
    /// Frames answered with ERROR.
    pub errored: u64,
    /// ROUTED responses whose permutation did not match the submission.
    pub misdelivered: u64,
    /// Frames never answered within the drain window.
    pub unanswered: u64,
    /// Responses of unexpected shape (wrong opcode, unknown request id).
    pub protocol_surprises: u64,
    /// Wall-clock duration of the run.
    pub elapsed_ms: u64,
    /// Served frames per wall-clock second.
    pub achieved_qps: f64,
    /// Latency percentiles over served frames, measured from the send
    /// of the attempt that was answered.
    pub latency: LatencyPercentiles,
    /// Latency percentiles for frames served after at least one RETRY,
    /// measured from the frame's *first* send — the client-visible cost
    /// of backpressure. All-zero when no resubmitted frame was served.
    pub retry_latency: LatencyPercentiles,
    /// Per-tenant breakdown, sorted by tenant id.
    pub per_tenant: Vec<TenantLoad>,
}

/// One tenant's slice of a load-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct TenantLoad {
    /// Tenant id (also its connection index).
    pub tenant: u16,
    /// Distinct frames this tenant submitted.
    pub submitted: u64,
    /// Frames served and verified correct.
    pub served: u64,
    /// Frames abandoned after a RETRY.
    pub retried: u64,
    /// RETRY responses answered by resubmitting.
    pub resubmitted: u64,
    /// Frames answered with ERROR.
    pub errored: u64,
    /// Misdelivered ROUTED responses.
    pub misdelivered: u64,
    /// Frames never answered.
    pub unanswered: u64,
    /// Median served latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile served latency in nanoseconds.
    pub p99_ns: u64,
}

/// One unanswered frame: what was submitted and when.
struct OutFrame {
    dests: Vec<u32>,
    /// First send — retry latency is measured from here.
    first_sent: Instant,
    /// Most recent (re)send — attempt latency is measured from here.
    last_sent: Instant,
    /// Resubmissions performed so far.
    attempts: u32,
}

/// Per-tenant window of unanswered frames, keyed by request id.
type Outstanding = Mutex<HashMap<u64, OutFrame>>;

/// The closed-loop credit gate.
struct Credits {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Credits {
    fn new(n: usize) -> Self {
        Credits {
            free: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut free = self.free.lock().unwrap();
        while *free == 0 {
            free = self.cv.wait(free).unwrap();
        }
        *free -= 1;
    }

    fn release(&self) {
        *self.free.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

/// One tenant's tallies and histograms; each connection thread writes
/// only its own, so aggregation happens once at report time.
struct Tally {
    submitted: AtomicU64,
    served: AtomicU64,
    retried: AtomicU64,
    resubmitted: AtomicU64,
    errored: AtomicU64,
    misdelivered: AtomicU64,
    unanswered: AtomicU64,
    protocol_surprises: AtomicU64,
    /// Served latency from the answered attempt's send.
    hist: AtomicHistogram,
    /// Served-after-RETRY latency from the frame's first send.
    retry_hist: AtomicHistogram,
}

impl Tally {
    fn new() -> Self {
        Tally {
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            resubmitted: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            misdelivered: AtomicU64::new(0),
            unanswered: AtomicU64::new(0),
            protocol_surprises: AtomicU64::new(0),
            hist: AtomicHistogram::new(),
            retry_hist: AtomicHistogram::new(),
        }
    }
}

/// Renders a merged histogram as the report's percentile block.
fn percentiles(hist: &LatencyHistogram) -> LatencyPercentiles {
    LatencyPercentiles {
        min_ns: if hist.count() == 0 { 0 } else { hist.min_ns() },
        p50_ns: hist.quantile(0.50),
        p90_ns: hist.quantile(0.90),
        p99_ns: hist.quantile(0.99),
        p999_ns: hist.quantile(0.999),
        max_ns: hist.max_ns(),
        mean_ns: hist.mean_ns(),
    }
}

/// Drives the configured load against a running server and reports what
/// came back.
pub fn run_loadgen(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let tallies: Vec<Tally> = (0..cfg.tenants).map(|_| Tally::new()).collect();
    let started = Instant::now();

    let conn_count = cfg.effective_connections();
    thread::scope(|s| -> io::Result<()> {
        let mut handles = Vec::new();
        for conn_idx in 0..conn_count {
            let tenant = (conn_idx % usize::from(cfg.tenants.max(1))) as u16;
            // Tallies are per tenant; connections sharing a tenant share
            // its (all-atomic) tally.
            let tally = &tallies[usize::from(tenant)];
            handles.push(s.spawn(move || drive_conn(cfg, conn_idx, tenant, tally)));
        }
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.join().expect("tenant thread panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    if cfg.shutdown_when_done {
        request_shutdown(&cfg.addr)?;
    }

    let elapsed = started.elapsed();
    let sum = |f: fn(&Tally) -> &AtomicU64| -> u64 {
        tallies.iter().map(|t| f(t).load(Ordering::Relaxed)).sum()
    };
    let mut hist = LatencyHistogram::new();
    let mut retry_hist = LatencyHistogram::new();
    let mut per_tenant = Vec::with_capacity(tallies.len());
    for (tenant, t) in tallies.iter().enumerate() {
        let th = t.hist.snapshot();
        hist.merge(&th);
        retry_hist.merge(&t.retry_hist.snapshot());
        per_tenant.push(TenantLoad {
            tenant: tenant as u16,
            submitted: t.submitted.load(Ordering::Relaxed),
            served: t.served.load(Ordering::Relaxed),
            retried: t.retried.load(Ordering::Relaxed),
            resubmitted: t.resubmitted.load(Ordering::Relaxed),
            errored: t.errored.load(Ordering::Relaxed),
            misdelivered: t.misdelivered.load(Ordering::Relaxed),
            unanswered: t.unanswered.load(Ordering::Relaxed),
            p50_ns: th.quantile(0.50),
            p99_ns: th.quantile(0.99),
        });
    }
    let served = sum(|t| &t.served);
    Ok(LoadgenReport {
        tenants: cfg.tenants,
        connections: conn_count,
        mode: match cfg.mode {
            LoadMode::Closed { .. } => "closed".to_string(),
            LoadMode::Open { .. } => "open".to_string(),
        },
        submitted: sum(|t| &t.submitted),
        served,
        retried: sum(|t| &t.retried),
        resubmitted: sum(|t| &t.resubmitted),
        errored: sum(|t| &t.errored),
        misdelivered: sum(|t| &t.misdelivered),
        unanswered: sum(|t| &t.unanswered),
        protocol_surprises: sum(|t| &t.protocol_surprises),
        elapsed_ms: elapsed.as_millis().min(u128::from(u64::MAX)) as u64,
        achieved_qps: served as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: percentiles(&hist),
        retry_latency: percentiles(&retry_hist),
        per_tenant,
    })
}

/// One point on a connection-scaling sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Concurrent connections driven at this point.
    pub connections: usize,
    /// Distinct frames submitted.
    pub submitted: u64,
    /// Frames served and verified correct.
    pub served: u64,
    /// Frames abandoned after a RETRY.
    pub retried: u64,
    /// Frames answered with ERROR.
    pub errored: u64,
    /// Misdelivered ROUTED responses.
    pub misdelivered: u64,
    /// Frames never answered within the drain window.
    pub unanswered: u64,
    /// Served frames per wall-clock second.
    pub achieved_qps: f64,
    /// Median served latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile served latency in nanoseconds.
    pub p99_ns: u64,
    /// Wall-clock duration of this point.
    pub elapsed_ms: u64,
}

/// A connections-vs-throughput/latency curve from [`run_sweep`].
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Tenant ids in play at every point.
    pub tenants: u16,
    /// Frames each connection submitted at every point.
    pub frames_per_connection: u64,
    /// One entry per requested connection count, in order.
    pub points: Vec<SweepPoint>,
}

/// Runs one full load-generation pass per entry in `connections`,
/// against the same server, and collects the scaling curve. A
/// `shutdown_when_done` config fires once, after the last point.
pub fn run_sweep(cfg: &LoadgenConfig, connections: &[usize]) -> io::Result<SweepReport> {
    let mut points = Vec::with_capacity(connections.len());
    for &conns in connections {
        let mut point_cfg = cfg.clone();
        point_cfg.connections = conns;
        point_cfg.shutdown_when_done = false;
        let report = run_loadgen(&point_cfg)?;
        points.push(SweepPoint {
            connections: report.connections,
            submitted: report.submitted,
            served: report.served,
            retried: report.retried,
            errored: report.errored,
            misdelivered: report.misdelivered,
            unanswered: report.unanswered,
            achieved_qps: report.achieved_qps,
            p50_ns: report.latency.p50_ns,
            p99_ns: report.latency.p99_ns,
            elapsed_ms: report.elapsed_ms,
        });
    }
    if cfg.shutdown_when_done {
        request_shutdown(&cfg.addr)?;
    }
    Ok(SweepReport {
        tenants: cfg.tenants,
        frames_per_connection: cfg.frames,
        points,
    })
}

/// Connects once and asks the server to drain gracefully.
pub fn request_shutdown(addr: &str) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    write_message(
        &mut stream,
        &Message::Shutdown {
            tenant: 0,
            request_id: 0,
        },
    )
}

/// Builds the wire submit for one frame: tagged when keys are present
/// (an unknown tenant falls back to a plain SUBMIT, which a keyed
/// server refuses — that surfaces misprovisioning instead of hiding it).
fn submit_message(
    keys: Option<&TenantKeys>,
    tenant: u16,
    request_id: u64,
    dests: Vec<u32>,
) -> Message {
    match keys.and_then(|k| k.tag(tenant, request_id, &dests)) {
        Some(tag) => Message::SubmitTagged {
            tenant,
            request_id,
            tag,
            dests,
        },
        None => Message::Submit {
            tenant,
            request_id,
            dests,
        },
    }
}

/// One connection's full run: a paced sender and a verifying receiver
/// over a single socket. The receiver hands RETRYed frames back to the
/// sender over a channel, so the socket has exactly one writer.
fn drive_conn(cfg: &LoadgenConfig, conn_idx: usize, tenant: u16, tally: &Tally) -> io::Result<()> {
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream;

    let outstanding: Outstanding = Mutex::new(HashMap::new());
    let credits = match cfg.mode {
        LoadMode::Closed { inflight } => Some(Credits::new(inflight.max(1))),
        LoadMode::Open { .. } => None,
    };
    let (resub_tx, resub_rx) = mpsc::channel::<u64>();

    thread::scope(|s| -> io::Result<()> {
        let outstanding = &outstanding;
        let credits = &credits;
        let sender = s.spawn(move || -> io::Result<()> {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ ((conn_idx as u64).wrapping_mul(0x9E37_79B9)));
            let open_gap = match cfg.mode {
                LoadMode::Open { qps } => {
                    let per_tenant = (qps / f64::from(cfg.tenants.max(1))).max(1e-3);
                    Some(Duration::from_secs_f64(1.0 / per_tenant))
                }
                LoadMode::Closed { .. } => None,
            };
            let t0 = Instant::now();
            for request_id in 0..cfg.frames {
                // Resubmits jump the fresh-frame queue. Each takes its own
                // credit: the RETRY that caused it released one, so the
                // in-flight window stays bounded.
                while let Ok(id) = resub_rx.try_recv() {
                    if outstanding.lock().unwrap().contains_key(&id) {
                        if let Some(credits) = credits {
                            credits.acquire();
                        }
                        resend(&mut writer, outstanding, cfg.keys.as_ref(), tenant, id)?;
                    }
                }
                if let Some(credits) = credits {
                    credits.acquire();
                }
                if let Some(gap) = open_gap {
                    let due = t0 + gap.mul_f64(request_id as f64);
                    let now = Instant::now();
                    if due > now {
                        thread::sleep(due - now);
                    }
                }
                let perm = Permutation::random(cfg.inputs, &mut rng);
                let dests: Vec<u32> = perm.as_slice().iter().map(|&d| d as u32).collect();
                let now = Instant::now();
                outstanding.lock().unwrap().insert(
                    request_id,
                    OutFrame {
                        dests: dests.clone(),
                        first_sent: now,
                        last_sent: now,
                        attempts: 0,
                    },
                );
                tally.submitted.fetch_add(1, Ordering::Relaxed);
                write_message(
                    &mut writer,
                    &submit_message(cfg.keys.as_ref(), tenant, request_id, dests),
                )?;
            }
            // Fresh frames done: keep serving resubmits until the
            // receiver drops its end of the channel.
            while let Ok(id) = resub_rx.recv() {
                if outstanding.lock().unwrap().contains_key(&id) {
                    if let Some(credits) = credits {
                        credits.acquire();
                    }
                    resend(&mut writer, outstanding, cfg.keys.as_ref(), tenant, id)?;
                }
            }
            Ok(())
        });

        // Receiver: runs on this thread until every frame is answered or
        // the wire stays quiet past the drain window.
        let mut answered = 0u64;
        let mut last_activity = Instant::now();
        while answered < cfg.frames {
            match read_message(&mut reader) {
                Ok(Some(msg)) => {
                    last_activity = Instant::now();
                    match handle_response(msg, outstanding, tally, cfg.max_resubmits, &resub_tx) {
                        Answer::Settled => {
                            answered += 1;
                            if let Some(credits) = credits {
                                credits.release();
                            }
                        }
                        // The frame is back in flight via the sender, but
                        // its credit must recirculate so the resend's own
                        // acquire can succeed.
                        Answer::Resubmitted => {
                            if let Some(credits) = credits {
                                credits.release();
                            }
                        }
                        Answer::Ignored => {}
                    }
                }
                Ok(None) => break, // server hung up
                Err(RecvError::IdleTimeout) => {
                    let sender_done = sender.is_finished();
                    if sender_done && last_activity.elapsed() >= cfg.drain_window {
                        break;
                    }
                }
                Err(RecvError::Wire(_)) => {
                    tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(RecvError::Io(_)) => break,
            }
        }

        // Whatever is still outstanding was never answered. Release every
        // credit so a blocked sender can finish (its writes then fail or
        // land on a dead socket; either way the thread exits), and drop
        // the resubmit channel so its drain loop ends.
        drop(resub_tx);
        let leftovers = {
            let mut out = outstanding.lock().unwrap();
            let n = out.len() as u64;
            out.clear();
            n
        };
        tally.unanswered.fetch_add(leftovers, Ordering::Relaxed);
        if let Some(credits) = &credits {
            for _ in 0..cfg.frames {
                credits.release();
            }
        }
        reader.shutdown(std::net::Shutdown::Both).ok();
        match sender.join().expect("sender thread panicked") {
            // A sender that died because we tore the socket down is not a
            // run failure — its unsent frames were already accounted.
            Ok(()) | Err(_) => Ok(()),
        }
    })
}

/// Re-sends one RETRYed frame, restamping its attempt clock (and re-tagging
/// it under keyed auth — the tag covers only immutable fields, so it is
/// identical across attempts). A frame the receiver already settled
/// (raced answer) is silently skipped.
fn resend(
    writer: &mut TcpStream,
    outstanding: &Outstanding,
    keys: Option<&TenantKeys>,
    tenant: u16,
    request_id: u64,
) -> io::Result<()> {
    let dests = {
        let mut out = outstanding.lock().unwrap();
        let Some(frame) = out.get_mut(&request_id) else {
            return Ok(());
        };
        frame.last_sent = Instant::now();
        frame.dests.clone()
    };
    write_message(writer, &submit_message(keys, tenant, request_id, dests))
}

/// What one server response did to the outstanding window.
enum Answer {
    /// The frame is done: served, abandoned after RETRY, or errored.
    Settled,
    /// A RETRY was answered by handing the frame back to the sender.
    Resubmitted,
    /// The response matched no outstanding frame.
    Ignored,
}

/// Processes one server response against the outstanding window.
fn handle_response(
    msg: Message,
    outstanding: &Outstanding,
    tally: &Tally,
    max_resubmits: u32,
    resub_tx: &mpsc::Sender<u64>,
) -> Answer {
    match msg {
        Message::Routed {
            request_id,
            sources,
            ..
        } => {
            let Some(frame) = outstanding.lock().unwrap().remove(&request_id) else {
                tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                return Answer::Ignored;
            };
            if verify_routed(&frame.dests, &sources) {
                tally.served.fetch_add(1, Ordering::Relaxed);
                tally.hist.record(
                    frame
                        .last_sent
                        .elapsed()
                        .as_nanos()
                        .min(u128::from(u64::MAX)) as u64,
                );
                if frame.attempts > 0 {
                    tally.retry_hist.record(
                        frame
                            .first_sent
                            .elapsed()
                            .as_nanos()
                            .min(u128::from(u64::MAX)) as u64,
                    );
                }
            } else {
                tally.misdelivered.fetch_add(1, Ordering::Relaxed);
            }
            Answer::Settled
        }
        Message::Retry { request_id, .. } => {
            let mut out = outstanding.lock().unwrap();
            let Some(frame) = out.get_mut(&request_id) else {
                drop(out);
                tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                return Answer::Ignored;
            };
            if frame.attempts < max_resubmits {
                frame.attempts += 1;
                drop(out);
                if resub_tx.send(request_id).is_ok() {
                    tally.resubmitted.fetch_add(1, Ordering::Relaxed);
                    return Answer::Resubmitted;
                }
                // Sender gone: nobody can resubmit, so the frame settles.
                outstanding.lock().unwrap().remove(&request_id);
            } else {
                out.remove(&request_id);
            }
            tally.retried.fetch_add(1, Ordering::Relaxed);
            Answer::Settled
        }
        Message::Error { request_id, .. } => {
            if outstanding.lock().unwrap().remove(&request_id).is_some() {
                tally.errored.fetch_add(1, Ordering::Relaxed);
                Answer::Settled
            } else {
                tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                Answer::Ignored
            }
        }
        Message::Submit { .. }
        | Message::SubmitTagged { .. }
        | Message::Shutdown { .. }
        | Message::Status { .. }
        | Message::StatusReport { .. } => {
            tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
            Answer::Ignored
        }
    }
}

/// True when the routed frame matches the submitted permutation: output
/// `j` received the input whose requested destination was `j`, and every
/// output is covered exactly once.
fn verify_routed(dests: &[u32], sources: &[u32]) -> bool {
    if sources.len() != dests.len() {
        return false;
    }
    let n = dests.len();
    let mut seen = vec![false; n];
    for (j, &src) in sources.iter().enumerate() {
        let src = src as usize;
        if src >= n || seen[src] || dests[src] as usize != j {
            return false;
        }
        seen[src] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_accepts_a_correct_route_and_rejects_corruption() {
        // dests: input i -> output 3 - i; sources: output j got input 3 - j.
        let dests = [3, 2, 1, 0];
        let sources = [3, 2, 1, 0];
        assert!(verify_routed(&dests, &sources));
        assert!(!verify_routed(&dests, &[3, 2, 1, 1]), "duplicate source");
        assert!(!verify_routed(&dests, &[0, 2, 1, 3]), "wrong output");
        assert!(!verify_routed(&dests, &[3, 2, 1]), "short frame");
        assert!(!verify_routed(&dests, &[3, 2, 1, 9]), "out of range");
    }

    #[test]
    fn credits_gate_admissions() {
        let credits = Credits::new(2);
        credits.acquire();
        credits.acquire();
        // A third acquire would block; release must unblock it.
        let unblocked = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        thread::scope(|s| {
            let flag = std::sync::Arc::clone(&unblocked);
            let credits = &credits;
            s.spawn(move || {
                credits.acquire();
                flag.store(true, Ordering::SeqCst);
            });
            thread::sleep(Duration::from_millis(20));
            assert!(!unblocked.load(Ordering::SeqCst), "gate must hold at 0");
            credits.release();
        });
        assert!(unblocked.load(Ordering::SeqCst));
    }
}
