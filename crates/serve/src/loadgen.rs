//! The load-generator client for `bnb serve`.
//!
//! Each tenant gets its own connection with a sender thread and a
//! receiver thread. Two pacing modes:
//!
//! - **closed loop**: at most `inflight` unanswered frames per tenant —
//!   every response (ROUTED, RETRY, or ERROR) releases a send credit.
//!   Setting `inflight` above the server's tenant quota deliberately
//!   drives the server into its explicit-RETRY backpressure path.
//! - **open loop**: frames are sent on a fixed wall-clock schedule at the
//!   target aggregate QPS regardless of responses, which measures queueing
//!   latency honestly (no coordinated omission).
//!
//! Every ROUTED response is verified against the submitted permutation:
//! output `j` must have received the input whose destination was `j`.
//! Misdeliveries, routing errors, retries, and unanswered frames are all
//! tallied separately in the [`LoadgenReport`]; latency percentiles come
//! from a shared [`AtomicHistogram`].

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bnb_obs::AtomicHistogram;
use bnb_topology::perm::Permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::protocol::{read_message, write_message, Message, RecvError};

/// How the load generator paces its submissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// At most this many unanswered frames per tenant; each response
    /// releases a send credit.
    Closed {
        /// Per-tenant in-flight window.
        inflight: usize,
    },
    /// Fixed-schedule sending at this aggregate frames-per-second target,
    /// split evenly across tenants.
    Open {
        /// Aggregate target QPS across all tenants.
        qps: f64,
    },
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:9500`.
    pub addr: String,
    /// Concurrent tenant connections (tenant ids `0..tenants`).
    pub tenants: u16,
    /// Frames each tenant submits.
    pub frames: u64,
    /// Records per frame — must match the server's network size.
    pub inputs: usize,
    /// Pacing mode.
    pub mode: LoadMode,
    /// Seed for the per-frame random permutations.
    pub seed: u64,
    /// How long a receiver waits for a quiet wire before declaring the
    /// remaining outstanding frames unanswered.
    pub drain_window: Duration,
    /// Send a SHUTDOWN to the server after all tenants finish.
    pub shutdown_when_done: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:9500".to_string(),
            tenants: 4,
            frames: 64,
            inputs: 64,
            mode: LoadMode::Closed { inflight: 4 },
            seed: 0xB1B0,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
        }
    }
}

/// Latency percentiles in nanoseconds, from the shared histogram.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyPercentiles {
    /// Fastest served frame.
    pub min_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Slowest served frame.
    pub max_ns: u64,
    /// Arithmetic mean (bucket-midpoint approximation).
    pub mean_ns: u64,
}

/// What a load-generation run observed.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Tenant connections driven.
    pub tenants: u16,
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Frames submitted across all tenants.
    pub submitted: u64,
    /// Frames answered with ROUTED and verified correct.
    pub served: u64,
    /// Frames answered with RETRY.
    pub retried: u64,
    /// Frames answered with ERROR.
    pub errored: u64,
    /// ROUTED responses whose permutation did not match the submission.
    pub misdelivered: u64,
    /// Frames never answered within the drain window.
    pub unanswered: u64,
    /// Responses of unexpected shape (wrong opcode, unknown request id).
    pub protocol_surprises: u64,
    /// Wall-clock duration of the run.
    pub elapsed_ms: u64,
    /// Served frames per wall-clock second.
    pub achieved_qps: f64,
    /// Round-trip latency percentiles over served frames.
    pub latency: LatencyPercentiles,
}

/// Per-tenant window of unanswered frames: request id → submitted
/// destinations and send time.
type Outstanding = Mutex<HashMap<u64, (Vec<u32>, Instant)>>;

/// The closed-loop credit gate.
struct Credits {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Credits {
    fn new(n: usize) -> Self {
        Credits {
            free: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut free = self.free.lock().unwrap();
        while *free == 0 {
            free = self.cv.wait(free).unwrap();
        }
        *free -= 1;
    }

    fn release(&self) {
        *self.free.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

#[derive(Default)]
struct Tally {
    submitted: AtomicU64,
    served: AtomicU64,
    retried: AtomicU64,
    errored: AtomicU64,
    misdelivered: AtomicU64,
    unanswered: AtomicU64,
    protocol_surprises: AtomicU64,
}

/// Drives the configured load against a running server and reports what
/// came back.
pub fn run_loadgen(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let tally = Tally::default();
    let histogram = AtomicHistogram::new();
    let started = Instant::now();

    thread::scope(|s| -> io::Result<()> {
        let mut handles = Vec::new();
        for tenant in 0..cfg.tenants {
            let tally = &tally;
            let histogram = &histogram;
            handles.push(s.spawn(move || drive_tenant(cfg, tenant, tally, histogram)));
        }
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.join().expect("tenant thread panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    if cfg.shutdown_when_done {
        request_shutdown(&cfg.addr)?;
    }

    let elapsed = started.elapsed();
    let hist = histogram.snapshot();
    let served = tally.served.load(Ordering::Relaxed);
    Ok(LoadgenReport {
        tenants: cfg.tenants,
        mode: match cfg.mode {
            LoadMode::Closed { .. } => "closed".to_string(),
            LoadMode::Open { .. } => "open".to_string(),
        },
        submitted: tally.submitted.load(Ordering::Relaxed),
        served,
        retried: tally.retried.load(Ordering::Relaxed),
        errored: tally.errored.load(Ordering::Relaxed),
        misdelivered: tally.misdelivered.load(Ordering::Relaxed),
        unanswered: tally.unanswered.load(Ordering::Relaxed),
        protocol_surprises: tally.protocol_surprises.load(Ordering::Relaxed),
        elapsed_ms: elapsed.as_millis().min(u128::from(u64::MAX)) as u64,
        achieved_qps: served as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: LatencyPercentiles {
            min_ns: hist.min_ns(),
            p50_ns: hist.quantile(0.50),
            p90_ns: hist.quantile(0.90),
            p99_ns: hist.quantile(0.99),
            p999_ns: hist.quantile(0.999),
            max_ns: hist.max_ns(),
            mean_ns: hist.mean_ns(),
        },
    })
}

/// Connects once and asks the server to drain gracefully.
pub fn request_shutdown(addr: &str) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    write_message(
        &mut stream,
        &Message::Shutdown {
            tenant: 0,
            request_id: 0,
        },
    )
}

/// One tenant's full run: a paced sender and a verifying receiver over a
/// single connection.
fn drive_tenant(
    cfg: &LoadgenConfig,
    tenant: u16,
    tally: &Tally,
    histogram: &AtomicHistogram,
) -> io::Result<()> {
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream;

    let outstanding: Outstanding = Mutex::new(HashMap::new());
    let credits = match cfg.mode {
        LoadMode::Closed { inflight } => Some(Credits::new(inflight.max(1))),
        LoadMode::Open { .. } => None,
    };

    thread::scope(|s| -> io::Result<()> {
        let sender = s.spawn(|| -> io::Result<()> {
            let mut rng =
                StdRng::seed_from_u64(cfg.seed ^ (u64::from(tenant).wrapping_mul(0x9E37_79B9)));
            let open_gap = match cfg.mode {
                LoadMode::Open { qps } => {
                    let per_tenant = (qps / f64::from(cfg.tenants.max(1))).max(1e-3);
                    Some(Duration::from_secs_f64(1.0 / per_tenant))
                }
                LoadMode::Closed { .. } => None,
            };
            let t0 = Instant::now();
            for request_id in 0..cfg.frames {
                if let Some(credits) = &credits {
                    credits.acquire();
                }
                if let Some(gap) = open_gap {
                    let due = t0 + gap.mul_f64(request_id as f64);
                    let now = Instant::now();
                    if due > now {
                        thread::sleep(due - now);
                    }
                }
                let perm = Permutation::random(cfg.inputs, &mut rng);
                let dests: Vec<u32> = perm.as_slice().iter().map(|&d| d as u32).collect();
                outstanding
                    .lock()
                    .unwrap()
                    .insert(request_id, (dests.clone(), Instant::now()));
                tally.submitted.fetch_add(1, Ordering::Relaxed);
                write_message(
                    &mut writer,
                    &Message::Submit {
                        tenant,
                        request_id,
                        dests,
                    },
                )?;
            }
            Ok(())
        });

        // Receiver: runs on this thread until every frame is answered or
        // the wire stays quiet past the drain window.
        let mut answered = 0u64;
        let mut last_activity = Instant::now();
        while answered < cfg.frames {
            match read_message(&mut reader) {
                Ok(Some(msg)) => {
                    last_activity = Instant::now();
                    if handle_response(msg, &outstanding, tally, histogram) {
                        answered += 1;
                        if let Some(credits) = &credits {
                            credits.release();
                        }
                    }
                }
                Ok(None) => break, // server hung up
                Err(RecvError::IdleTimeout) => {
                    let sender_done = sender.is_finished();
                    if sender_done && last_activity.elapsed() >= cfg.drain_window {
                        break;
                    }
                }
                Err(RecvError::Wire(_)) => {
                    tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(RecvError::Io(_)) => break,
            }
        }

        // Whatever is still outstanding was never answered. Release every
        // credit so a blocked sender can finish (its writes then fail or
        // land on a dead socket; either way the thread exits).
        let leftovers = {
            let mut out = outstanding.lock().unwrap();
            let n = out.len() as u64;
            out.clear();
            n
        };
        tally.unanswered.fetch_add(leftovers, Ordering::Relaxed);
        if let Some(credits) = &credits {
            for _ in 0..cfg.frames {
                credits.release();
            }
        }
        reader.shutdown(std::net::Shutdown::Both).ok();
        match sender.join().expect("sender thread panicked") {
            // A sender that died because we tore the socket down is not a
            // run failure — its unsent frames were already accounted.
            Ok(()) | Err(_) => Ok(()),
        }
    })
}

/// Processes one server response; true when it answers an outstanding
/// frame (served, retried, or errored).
fn handle_response(
    msg: Message,
    outstanding: &Outstanding,
    tally: &Tally,
    histogram: &AtomicHistogram,
) -> bool {
    match msg {
        Message::Routed {
            request_id,
            sources,
            ..
        } => {
            let Some((dests, sent_at)) = outstanding.lock().unwrap().remove(&request_id) else {
                tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                return false;
            };
            if verify_routed(&dests, &sources) {
                tally.served.fetch_add(1, Ordering::Relaxed);
                histogram.record(sent_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            } else {
                tally.misdelivered.fetch_add(1, Ordering::Relaxed);
            }
            true
        }
        Message::Retry { request_id, .. } => {
            if outstanding.lock().unwrap().remove(&request_id).is_some() {
                tally.retried.fetch_add(1, Ordering::Relaxed);
                true
            } else {
                tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
        Message::Error { request_id, .. } => {
            if outstanding.lock().unwrap().remove(&request_id).is_some() {
                tally.errored.fetch_add(1, Ordering::Relaxed);
                true
            } else {
                tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
        Message::Submit { .. } | Message::Shutdown { .. } => {
            tally.protocol_surprises.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// True when the routed frame matches the submitted permutation: output
/// `j` received the input whose requested destination was `j`, and every
/// output is covered exactly once.
fn verify_routed(dests: &[u32], sources: &[u32]) -> bool {
    if sources.len() != dests.len() {
        return false;
    }
    let n = dests.len();
    let mut seen = vec![false; n];
    for (j, &src) in sources.iter().enumerate() {
        let src = src as usize;
        if src >= n || seen[src] || dests[src] as usize != j {
            return false;
        }
        seen[src] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_accepts_a_correct_route_and_rejects_corruption() {
        // dests: input i -> output 3 - i; sources: output j got input 3 - j.
        let dests = [3, 2, 1, 0];
        let sources = [3, 2, 1, 0];
        assert!(verify_routed(&dests, &sources));
        assert!(!verify_routed(&dests, &[3, 2, 1, 1]), "duplicate source");
        assert!(!verify_routed(&dests, &[0, 2, 1, 3]), "wrong output");
        assert!(!verify_routed(&dests, &[3, 2, 1]), "short frame");
        assert!(!verify_routed(&dests, &[3, 2, 1, 9]), "out of range");
    }

    #[test]
    fn credits_gate_admissions() {
        let credits = Credits::new(2);
        credits.acquire();
        credits.acquire();
        // A third acquire would block; release must unblock it.
        let unblocked = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        thread::scope(|s| {
            let flag = std::sync::Arc::clone(&unblocked);
            let credits = &credits;
            s.spawn(move || {
                credits.acquire();
                flag.store(true, Ordering::SeqCst);
            });
            thread::sleep(Duration::from_millis(20));
            assert!(!unblocked.load(Ordering::SeqCst), "gate must hold at 0");
            credits.release();
        });
        assert!(unblocked.load(Ordering::SeqCst));
    }
}
