//! Raw readiness syscalls for the reactor: `epoll(7)` on Linux, a
//! `poll(2)` fallback on other unixes, and a self-wake pipe.
//!
//! The workspace rule is std-only — no async runtime, no libc crate —
//! so the handful of syscalls the reactor needs are declared here as
//! `extern "C"` items with the kernel ABI constants spelled out, the
//! same way `server.rs` installs its `signal(2)` handlers. Everything
//! is wrapped in safe types immediately: [`Poller`] owns the epoll fd,
//! [`WakePipe`] owns both pipe ends, and both close on drop.
//!
//! Linux registration is edge-triggered (`EPOLLET`): the connection
//! state machines drain reads to `WouldBlock` and only subscribe write
//! readiness while bytes are buffered, which keeps them correct under
//! the level-triggered `poll(2)` fallback too.

#![allow(dead_code)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
pub(crate) use unix::{Poller, WakePipe};
#[cfg(not(unix))]
pub(crate) use stub::{Poller, WakePipe};

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer half-closed: reads will observe it).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the connection is done regardless of interest.
    pub hangup: bool,
}

#[cfg(unix)]
mod unix {
    use super::{io, Duration, PollEvent};
    use std::os::unix::io::RawFd;

    extern "C" {
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(any(target_os = "macos", target_os = "ios"))]
    const O_NONBLOCK: i32 = 0x0004;
    #[cfg(not(any(target_os = "macos", target_os = "ios")))]
    const O_NONBLOCK: i32 = 0o4000;

    fn set_nonblocking(fd: RawFd) -> io::Result<()> {
        // SAFETY: fcntl on an owned, open fd; no memory is passed.
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 {
                return Err(io::Error::last_os_error());
            }
            if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(())
    }

    /// A one-way self-wake channel: any thread [`wake`](Self::wake)s,
    /// the owning reactor has the read end registered and
    /// [`drain`](Self::drain)s it. Both ends nonblocking: a full pipe
    /// means a wake is already pending, which is all a wake conveys.
    #[derive(Debug)]
    pub(crate) struct WakePipe {
        r: RawFd,
        w: RawFd,
    }

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [0i32; 2];
            // SAFETY: pipe writes exactly two fds into the array.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            let pipe = WakePipe {
                r: fds[0],
                w: fds[1],
            };
            set_nonblocking(pipe.r)?;
            set_nonblocking(pipe.w)?;
            Ok(pipe)
        }

        /// The fd to register for read readiness.
        pub fn reader_fd(&self) -> RawFd {
            self.r
        }

        /// Nudges the owning reactor. Best-effort: `EAGAIN` means the
        /// pipe already holds an undrained wake.
        pub fn wake(&self) {
            let byte = 1u8;
            // SAFETY: writing one byte from a live stack buffer to an
            // owned fd; short or failed writes are fine by design.
            unsafe {
                let _ = write(self.w, &byte as *const u8, 1);
            }
        }

        /// Consumes every pending wake byte.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            // SAFETY: reading into a live stack buffer from an owned fd.
            while unsafe { read(self.r, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            // SAFETY: both fds are owned and open exactly once.
            unsafe {
                let _ = close(self.r);
                let _ = close(self.w);
            }
        }
    }

    #[cfg(target_os = "linux")]
    pub(crate) use linux::Poller;
    #[cfg(not(target_os = "linux"))]
    pub(crate) use fallback::Poller;

    #[cfg(target_os = "linux")]
    mod linux {
        use super::{close, io, Duration, PollEvent};
        use std::os::unix::io::RawFd;

        // The kernel ABI struct: packed on x86-64, aligned elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32)
                -> i32;
        }

        const EPOLL_CLOEXEC: i32 = 0o2000000;
        const EPOLL_CTL_ADD: i32 = 1;
        const EPOLL_CTL_DEL: i32 = 2;
        const EPOLL_CTL_MOD: i32 = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;
        const EPOLLET: u32 = 1 << 31;

        /// An owned `epoll(7)` instance.
        #[derive(Debug)]
        pub(crate) struct Poller {
            epfd: RawFd,
            buf: Vec<u64>, // raw event storage, reinterpreted per wait
        }

        fn interest_bits(read: bool, write: bool) -> u32 {
            let mut events = EPOLLET | EPOLLRDHUP;
            if read {
                events |= EPOLLIN;
            }
            if write {
                events |= EPOLLOUT;
            }
            events
        }

        impl Poller {
            pub fn new() -> io::Result<Poller> {
                // SAFETY: plain syscall, no memory passed.
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(Poller {
                    epfd,
                    buf: vec![0u64; 512],
                })
            }

            fn ctl(&self, op: i32, fd: RawFd, token: u64, read: bool, write: bool)
                -> io::Result<()> {
                let mut ev = EpollEvent {
                    events: interest_bits(read, write),
                    data: token,
                };
                let evp = if op == EPOLL_CTL_DEL {
                    std::ptr::null_mut()
                } else {
                    &mut ev as *mut EpollEvent
                };
                // SAFETY: `ev` outlives the call; the kernel copies it.
                if unsafe { epoll_ctl(self.epfd, op, fd, evp) } < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }

            /// Registers `fd` edge-triggered under `token`.
            pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
            }

            /// Re-arms `fd`'s interest set.
            pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool)
                -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
            }

            /// Removes `fd`. Harmless if the fd is already gone.
            pub fn remove(&self, fd: RawFd) -> io::Result<()> {
                self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
            }

            /// Blocks for readiness up to `timeout` (`None` = forever),
            /// appending to `out`. Returns the number of events.
            pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>)
                -> io::Result<usize> {
                let timeout_ms: i32 = match timeout {
                    None => -1,
                    Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
                };
                // 12 packed bytes (x86-64) or 16 aligned bytes fit in
                // two u64 slots either way.
                let max_events = (self.buf.len() / 2) as i32;
                // SAFETY: the buffer holds `max_events` EpollEvent-sized
                // slots and outlives the call.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr() as *mut EpollEvent,
                        max_events,
                        timeout_ms,
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                for i in 0..n as usize {
                    // SAFETY: slot `i` was just written by the kernel;
                    // read_unaligned tolerates the packed x86-64 layout.
                    let ev = unsafe {
                        std::ptr::read_unaligned(
                            (self.buf.as_ptr() as *const EpollEvent).add(i),
                        )
                    };
                    out.push(PollEvent {
                        token: ev.data,
                        readable: ev.events & (EPOLLIN | EPOLLRDHUP) != 0,
                        writable: ev.events & EPOLLOUT != 0,
                        hangup: ev.events & (EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                Ok(n as usize)
            }
        }

        impl Drop for Poller {
            fn drop(&mut self) {
                // SAFETY: the epfd is owned and open exactly once.
                unsafe {
                    let _ = close(self.epfd);
                }
            }
        }
    }

    #[cfg(not(target_os = "linux"))]
    mod fallback {
        use super::{io, Duration, PollEvent};
        use std::collections::HashMap;
        use std::os::unix::io::RawFd;

        #[repr(C)]
        #[derive(Clone, Copy)]
        struct PollFd {
            fd: i32,
            events: i16,
            revents: i16,
        }

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
        }

        const POLLIN: i16 = 0x001;
        const POLLOUT: i16 = 0x004;
        const POLLERR: i16 = 0x008;
        const POLLHUP: i16 = 0x010;

        /// Level-triggered `poll(2)` emulation of the epoll interface.
        /// Correct because the state machines re-check interest every
        /// turn; O(fds) per wait is acceptable on non-Linux dev hosts.
        #[derive(Debug)]
        pub(crate) struct Poller {
            registered: HashMap<RawFd, (u64, bool, bool)>,
        }

        impl Poller {
            pub fn new() -> io::Result<Poller> {
                Ok(Poller {
                    registered: HashMap::new(),
                })
            }

            pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool)
                -> io::Result<()> {
                self.registered.insert(fd, (token, read, write));
                Ok(())
            }

            pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool)
                -> io::Result<()> {
                self.registered.insert(fd, (token, read, write));
                Ok(())
            }

            pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
                self.registered.remove(&fd);
                Ok(())
            }

            pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>)
                -> io::Result<usize> {
                let mut fds: Vec<PollFd> = self
                    .registered
                    .iter()
                    .map(|(&fd, &(_, read, write))| PollFd {
                        fd,
                        events: if read { POLLIN } else { 0 }
                            | if write { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let timeout_ms: i32 = match timeout {
                    None => -1,
                    Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
                };
                // SAFETY: `fds` outlives the call; the kernel writes
                // revents in place.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                let mut pushed = 0;
                for pfd in &fds {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let (token, _, _) = self.registered[&pfd.fd];
                    out.push(PollEvent {
                        token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                    pushed += 1;
                }
                Ok(pushed)
            }
        }
    }

}

#[cfg(not(unix))]
mod stub {
    use super::{io, Duration, PollEvent};

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "the bnb-serve reactor requires a unix host (epoll or poll)",
        )
    }

    /// Non-unix placeholder: construction fails, so `Server::serve`
    /// surfaces a configuration error instead of a compile break.
    #[derive(Debug)]
    pub(crate) struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }
        pub fn add(&mut self, _fd: i32, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn modify(&mut self, _fd: i32, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn remove(&mut self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(
            &mut self,
            _out: &mut Vec<PollEvent>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    #[derive(Debug)]
    pub(crate) struct WakePipe;

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            Err(unsupported())
        }
        pub fn reader_fd(&self) -> i32 {
            -1
        }
        pub fn wake(&self) {}
        pub fn drain(&self) {}
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(pipe.reader_fd(), 99, true, false).unwrap();
        let mut events = Vec::new();
        // No wake: times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // Woken (twice — coalesces into at least one readable event).
        pipe.wake();
        pipe.wake();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        pipe.drain();
    }

    #[test]
    fn socket_readiness_reports_the_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, true, false).unwrap();
        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Drain, then re-arm for write interest: an idle socket is
        // immediately writable.
        let mut buf = [0u8; 16];
        let mut s = &server;
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        poller
            .modify(server.as_raw_fd(), 7, true, true)
            .unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        poller.remove(server.as_raw_fd()).unwrap();
        drop(client);
    }
}
