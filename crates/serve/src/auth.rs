//! Tenant authentication for `bnb serve`: keyed SipHash-2-4 tags over
//! SUBMIT frames.
//!
//! Since PR 6 the wire protocol let any client *assert* a tenant id and
//! burn that tenant's quota. A server started with `--tenant-keys FILE`
//! closes the hole: each tenant has a shared secret, clients send
//! [`crate::protocol::Message::SubmitTagged`] whose 8-byte tag is
//! SipHash-2-4 over the canonical `(tenant, request_id, dests)` encoding
//! under the tenant's key, and the server refuses anything else with a
//! typed `ERROR(Auth)`. No keys file ⇒ open mode, the pre-0.4 behavior.
//!
//! SipHash-2-4 is implemented here by hand (~60 lines): the workspace is
//! std-only and `std::hash::SipHasher` has been deprecated since 1.13,
//! with no stable keyed replacement. The reference vectors from the
//! SipHash paper pin the implementation.

use std::collections::HashMap;

/// SipHash-2-4 of `data` under a 128-bit key.
///
/// The classic Aumasson–Bernstein construction: 2 compression rounds per
/// 8-byte word, 4 finalization rounds.
pub fn siphash24(key: &[u8; 16], data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[..8].try_into().unwrap());
    let k1 = u64::from_le_bytes(key[8..].try_into().unwrap());
    let mut v0 = k0 ^ 0x736f_6d65_7073_6575;
    let mut v1 = k1 ^ 0x646f_7261_6e64_6f6d;
    let mut v2 = k0 ^ 0x6c79_6765_6e65_7261;
    let mut v3 = k1 ^ 0x7465_6462_7974_6573;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    // Final block: remaining bytes little-endian, length in the top byte.
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v3 ^= m;
    sipround!();
    sipround!();
    v0 ^= m;

    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Derives a tenant's 128-bit SipHash key from its shared secret string:
/// two SipHash-2-4 passes over the secret under distinct fixed domain
/// keys. Not a password KDF — the secrets are machine-provisioned tokens,
/// and the derivation only has to be deterministic and well-mixed.
pub fn derive_key(secret: &str) -> [u8; 16] {
    const D0: [u8; 16] = *b"bnb-serve-key-lo";
    const D1: [u8; 16] = *b"bnb-serve-key-hi";
    let lo = siphash24(&D0, secret.as_bytes());
    let hi = siphash24(&D1, secret.as_bytes());
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&lo.to_le_bytes());
    key[8..].copy_from_slice(&hi.to_le_bytes());
    key
}

/// The canonical bytes a SUBMIT tag covers: big-endian tenant, request
/// id, then each destination — exactly the header/payload fields the
/// server acts on, so nothing taggable is outside the tag.
fn tag_input(tenant: u16, request_id: u64, dests: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(10 + 4 * dests.len());
    buf.extend_from_slice(&tenant.to_be_bytes());
    buf.extend_from_slice(&request_id.to_be_bytes());
    for &d in dests {
        buf.extend_from_slice(&d.to_be_bytes());
    }
    buf
}

/// The tenant-id → key table loaded from `--tenant-keys FILE`.
#[derive(Debug, Clone, Default)]
pub struct TenantKeys {
    keys: HashMap<u16, [u8; 16]>,
}

impl TenantKeys {
    /// Parses the keys-file format: one `tenant:secret` per line, blank
    /// lines and `#` comments ignored. Secrets may contain further `:`s.
    pub fn parse(text: &str) -> Result<TenantKeys, String> {
        let mut keys = HashMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (tenant, secret) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected tenant:secret", idx + 1))?;
            let tenant: u16 = tenant
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad tenant id: {e}", idx + 1))?;
            if secret.is_empty() {
                return Err(format!("line {}: empty secret", idx + 1));
            }
            if keys.insert(tenant, derive_key(secret)).is_some() {
                return Err(format!("line {}: duplicate tenant {tenant}", idx + 1));
            }
        }
        if keys.is_empty() {
            return Err("keys file defines no tenants".to_string());
        }
        Ok(TenantKeys { keys })
    }

    /// How many tenants have keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no tenant has a key.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The tag a client must attach to this frame, or `None` for a
    /// tenant with no key.
    pub fn tag(&self, tenant: u16, request_id: u64, dests: &[u32]) -> Option<u64> {
        let key = self.keys.get(&tenant)?;
        Some(siphash24(key, &tag_input(tenant, request_id, dests)))
    }

    /// Verifies a received tag. Unknown tenants verify as `false`: a
    /// keyed server serves only provisioned tenants. The comparison is
    /// branch-free on the tag bytes.
    pub fn verify(&self, tenant: u16, request_id: u64, dests: &[u32], tag: u64) -> bool {
        match self.tag(tenant, request_id, dests) {
            // Constant-time-ish compare: no early exit on a byte match.
            Some(want) => (want ^ tag) == 0,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The SipHash-2-4 reference vectors from Appendix A of the
    /// Aumasson–Bernstein paper: key 000102…0f, messages 00, 0001,
    /// 000102, … The first 8 expected outputs pin every code path
    /// (short tail, exact block, block + tail).
    #[test]
    fn siphash24_matches_reference_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let expected: [u64; 9] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
            0x93f5_f579_9a93_2462,
        ];
        let data: Vec<u8> = (0..expected.len() as u8).collect();
        for (n, &want) in expected.iter().enumerate() {
            assert_eq!(siphash24(&key, &data[..n]), want, "message length {n}");
        }
    }

    #[test]
    fn tags_bind_every_field() {
        let keys = TenantKeys::parse("3:open-sesame\n7:other\n").unwrap();
        let tag = keys.tag(3, 41, &[1, 0, 2]).unwrap();
        assert!(keys.verify(3, 41, &[1, 0, 2], tag));
        // Any field flip breaks the tag.
        assert!(!keys.verify(3, 42, &[1, 0, 2], tag), "request id");
        assert!(!keys.verify(3, 41, &[1, 0, 3], tag), "dests");
        assert!(!keys.verify(7, 41, &[1, 0, 2], tag), "tenant");
        assert!(!keys.verify(3, 41, &[1, 0, 2], tag ^ 1), "tag bit");
        // Unprovisioned tenants never verify.
        assert!(!keys.verify(5, 41, &[1, 0, 2], tag));
        assert_eq!(keys.tag(5, 41, &[1, 0, 2]), None);
    }

    #[test]
    fn keys_file_format_is_strict() {
        assert!(TenantKeys::parse("# comment\n\n1:s3cret\n2:with:colons\n").is_ok());
        assert!(TenantKeys::parse("").is_err(), "no tenants");
        assert!(TenantKeys::parse("nope\n").is_err(), "missing separator");
        assert!(TenantKeys::parse("1:a\n1:b\n").is_err(), "duplicate");
        assert!(TenantKeys::parse("70000:a\n").is_err(), "tenant overflow");
        assert!(TenantKeys::parse("1:\n").is_err(), "empty secret");
    }

    #[test]
    fn derived_keys_differ_per_secret() {
        assert_ne!(derive_key("a"), derive_key("b"));
        assert_ne!(derive_key(""), derive_key("a"));
        assert_eq!(derive_key("stable"), derive_key("stable"));
    }
}
