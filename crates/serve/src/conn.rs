//! Per-connection state machine for the reactor.
//!
//! A [`Conn`] owns one nonblocking socket and carries everything a
//! readiness event needs to make progress without blocking: an
//! incremental [`FrameAssembler`] on the read side (reusing the total,
//! panic-free body decoder), a buffered write side that flushes until
//! `WouldBlock` and re-arms write interest only while bytes remain, and
//! the per-connection pipelining window counter.
//!
//! The first bytes decide the personality: `"GET "` switches the
//! connection into one-shot HTTP mode (the operator surface), anything
//! else is the binary protocol. Because the sniff runs on whatever bytes
//! have arrived so far — not a blocking 4-byte peek — a byte-at-a-time
//! HTTP client works on a nonblocking socket.
//!
//! Admission control runs here, in the owning reactor thread, *before*
//! the dispatcher sees a frame: draining check, tenant auth (keyed
//! servers), the per-connection window, the per-tenant quota, then the
//! global in-flight cap. Every refusal is an explicit wire answer.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bnb_obs::{AuthEvent, Observer, ServeEvent, Span, SpanKind, Stage, ThrottleEvent, WindowEvent};
use bnb_topology::record::Record;

use crate::protocol::{ErrorCode, FrameAssembler, Message, RetryReason};
use crate::server::{build_status, SessionCtx, SessionStats};

/// Pause reads once this many unflushed response bytes accumulate; the
/// bounded-buffer promise for clients that stop reading.
const WRITE_HIGH_WATER: usize = 256 * 1024;
/// Resume reads once the backlog flushes below this.
const WRITE_LOW_WATER: usize = 64 * 1024;
/// Largest buffered HTTP request head, as in the threaded server.
const HTTP_HEAD_MAX: usize = 8192;
/// How long a partially received frame may stall before the connection
/// is dropped (mirrors the blocking reader's mid-frame deadline).
pub(crate) const MID_FRAME_DEADLINE: Duration = Duration::from_secs(5);

/// Identifies the connection a completion must return to: which reactor
/// lane, and which connection token within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReplyRoute {
    pub lane: usize,
    pub token: u64,
}

/// Connection tokens are 48-bit; the engine completion token packs the
/// lane index (plus one, so `0` stays "untagged") in the top 16 bits.
const TOKEN_BITS: u32 = 48;
const TOKEN_MASK: u64 = (1 << TOKEN_BITS) - 1;

impl ReplyRoute {
    /// Packs the route into the engine's opaque completion token.
    pub fn encode(self) -> u64 {
        debug_assert!(self.token <= TOKEN_MASK);
        ((self.lane as u64 + 1) << TOKEN_BITS) | self.token
    }

    /// Unpacks an engine completion token; `None` for untagged (`0`).
    pub fn decode(raw: u64) -> Option<ReplyRoute> {
        let lane = (raw >> TOKEN_BITS) as usize;
        if lane == 0 {
            return None;
        }
        Some(ReplyRoute {
            lane: lane - 1,
            token: raw & TOKEN_MASK,
        })
    }
}

/// A served request's accumulated stage stamps, attached to its ROUTED
/// reply. The owning reactor records all six stages plus the
/// wire-to-wire latency when the reply's last byte flushes to the
/// socket, so stage sums partition the wire latency for exactly the set
/// of served frames.
pub(crate) struct ReplyMeta {
    pub tenant: u16,
    pub request_id: u64,
    pub records: usize,
    /// Approximate arrival instant (first body byte), reconstructed as
    /// read-completion minus decode time.
    pub arrival: Instant,
    pub decode_ns: u64,
    pub admission_ns: u64,
    /// Dispatcher hand-off plus the engine's bounded-queue wait.
    pub queue_ns: u64,
    /// Worker pickup to batch publish inside the engine.
    pub route_ns: u64,
    /// Batch publish to dispatcher delivery.
    pub drain_ns: u64,
    /// When the dispatcher queued the reply (write stage starts here).
    pub queued_at: Instant,
}

/// One admitted frame travelling from a reactor to the dispatcher.
pub(crate) struct RouteJob {
    pub tenant: u16,
    pub request_id: u64,
    pub arrival: Instant,
    pub decode_ns: u64,
    pub admission_ns: u64,
    pub admitted_at: Instant,
    pub lines: Vec<Record>,
    pub route: ReplyRoute,
    pub tenant_slot: Arc<AtomicUsize>,
}

/// Dispatcher-side record of a submitted frame awaiting its drain.
pub(crate) struct Pending {
    pub tenant: u16,
    pub request_id: u64,
    pub records: usize,
    pub arrival: Instant,
    pub decode_ns: u64,
    pub admission_ns: u64,
    /// Reactor admission to engine-queue entry (dispatcher hand-off).
    pub handoff_ns: u64,
    /// When the engine accepted the frame.
    pub submitted_at: Instant,
    pub route: ReplyRoute,
    pub tenant_slot: Arc<AtomicUsize>,
}

impl Pending {
    /// The dispatcher's bookkeeping for one just-submitted job.
    /// `records` is passed explicitly because the single-submit path
    /// hands `job.lines` to the engine before this runs.
    pub fn from_job(job: RouteJob, records: usize, submitted_at: Instant) -> Pending {
        let handoff_ns = job
            .admitted_at
            .elapsed()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        Pending {
            tenant: job.tenant,
            request_id: job.request_id,
            records,
            arrival: job.arrival,
            decode_ns: job.decode_ns,
            admission_ns: job.admission_ns,
            handoff_ns,
            submitted_at,
            route: job.route,
            tenant_slot: job.tenant_slot,
        }
    }
}

/// How a completion affects the frame ledger when it reaches (or fails
/// to reach) its connection.
pub(crate) enum Account {
    /// A successfully routed frame: `frames_served` if the connection
    /// still exists, `responses_dropped` otherwise.
    Served {
        tenant: u16,
        request_id: u64,
        records: usize,
        arrival: Instant,
    },
    /// An engine ERROR: `frames_errored` if deliverable, dropped if not.
    Errored,
    /// Already fully accounted at the dispatcher (defensive RETRY).
    None,
}

/// One response travelling from the dispatcher back to its owning
/// reactor lane.
pub(crate) struct Completion {
    pub token: u64,
    pub msg: Message,
    pub meta: Option<ReplyMeta>,
    pub account: Account,
}

/// What the connection is speaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Not enough bytes yet to tell HTTP from the binary protocol.
    Sniffing,
    /// The length-prefixed binary protocol.
    Binary,
    /// One-shot HTTP operator request.
    Http,
}

/// One reactor-owned connection.
pub(crate) struct Conn {
    stream: TcpStream,
    pub token: u64,
    /// The owning reactor lane (completions route back here).
    lane: usize,
    mode: Mode,
    asm: FrameAssembler,
    /// Buffered, not-yet-flushed response bytes (`out[out_start..]`).
    out: Vec<u8>,
    out_start: usize,
    /// Cumulative response bytes ever queued / ever flushed; a reply's
    /// telemetry closes when `flushed_total` crosses its end offset.
    appended_total: u64,
    flushed_total: u64,
    meta_queue: VecDeque<(u64, ReplyMeta)>,
    /// Frames admitted on this connection and not yet answered.
    pub window_used: usize,
    /// Reads paused by the write high-water mark.
    pub read_paused: bool,
    /// Peer half-closed its send side; serve in-flight, then close.
    pub read_eof: bool,
    /// Answer queued, close once flushed (HTTP, protocol errors).
    pub closing: bool,
    /// Transport failure; reap immediately.
    pub dead: bool,
    /// Interest bits currently registered with the poller.
    pub armed_read: bool,
    pub armed_write: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, token: u64, lane: usize) -> Conn {
        stream.set_nodelay(true).ok();
        Conn {
            stream,
            token,
            lane,
            mode: Mode::Sniffing,
            asm: FrameAssembler::new(),
            out: Vec::new(),
            out_start: 0,
            appended_total: 0,
            flushed_total: 0,
            meta_queue: VecDeque::new(),
            window_used: 0,
            read_paused: false,
            read_eof: false,
            closing: false,
            dead: false,
            armed_read: true,
            armed_write: false,
        }
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether unflushed response bytes remain.
    pub fn wants_write(&self) -> bool {
        self.out_start < self.out.len()
    }

    /// Read interest this connection wants right now.
    pub fn wants_read(&self) -> bool {
        !self.closing && !self.read_eof && !self.read_paused
    }

    /// True when nothing more can happen: no reads expected and the
    /// write buffer drained.
    pub fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        if self.wants_write() {
            return false;
        }
        if self.closing {
            return true;
        }
        self.read_eof && self.window_used == 0
    }

    /// The mid-frame stall deadline, when one is running: a client that
    /// sent half a frame and went silent is dropped after
    /// [`MID_FRAME_DEADLINE`] so drains stay bounded.
    pub fn stalled_past_deadline(&self, now: Instant) -> bool {
        match self.asm.frame_wait_started() {
            Some(started) => now.duration_since(started) >= MID_FRAME_DEADLINE,
            None => false,
        }
    }

    /// Appends one encoded reply to the write buffer, remembering its
    /// telemetry stamps keyed by the buffer offset where it ends.
    pub fn queue_reply(&mut self, msg: &Message, meta: Option<ReplyMeta>) {
        let before = self.out.len();
        msg.encode(&mut self.out);
        self.appended_total += (self.out.len() - before) as u64;
        if let Some(meta) = meta {
            self.meta_queue.push_back((self.appended_total, meta));
        }
    }

    /// Appends raw bytes (HTTP responses).
    fn queue_raw(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
        self.appended_total += bytes.len() as u64;
    }

    /// Flushes buffered response bytes until `WouldBlock` or empty,
    /// closing the telemetry record of every reply whose last byte went
    /// out. Marks the connection dead on transport failure.
    pub fn flush(&mut self, ctx: &SessionCtx<'_>) {
        while self.out_start < self.out.len() {
            match self.stream.write(&self.out[self.out_start..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_start += n;
                    self.flushed_total += n as u64;
                    self.settle_flushed_metas(ctx);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.out_start == self.out.len() {
            self.out.clear();
            self.out_start = 0;
        } else if self.out_start >= 16 * 1024 && self.out_start * 2 >= self.out.len() {
            self.out.drain(..self.out_start);
            self.out_start = 0;
        }
        if self.read_paused && self.out.len() - self.out_start < WRITE_LOW_WATER {
            self.read_paused = false;
        }
    }

    /// Records the six-stage telemetry for every reply now fully on the
    /// wire. This is the reactor-world equivalent of the old writer
    /// thread's post-write bookkeeping: same stages, same stamps.
    fn settle_flushed_metas(&mut self, ctx: &SessionCtx<'_>) {
        while let Some((end, _)) = self.meta_queue.front() {
            if *end > self.flushed_total {
                break;
            }
            let (_, meta) = self.meta_queue.pop_front().unwrap();
            let wire_ns = meta.arrival.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let write_ns = meta
                .queued_at
                .elapsed()
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            let t = ctx.telemetry;
            t.record_stage(Stage::Decode, meta.decode_ns);
            t.record_stage(Stage::Admission, meta.admission_ns);
            t.record_stage(Stage::QueueWait, meta.queue_ns);
            t.record_stage(Stage::Route, meta.route_ns);
            t.record_stage(Stage::Drain, meta.drain_ns);
            t.record_stage(Stage::Write, write_ns);
            t.record_request(meta.tenant, (meta.records as u64) * 4, wire_ns);
            if t.note_if_slow(wire_ns) {
                if let Some(rec) = ctx.recorder {
                    rec.record(Span {
                        kind: SpanKind::Request,
                        ts_ns: rec.now_ns(),
                        dur_ns: wire_ns,
                        lane: 0,
                        seq: meta.request_id,
                        a: u64::from(meta.tenant),
                        b: meta.records as u64,
                        c: 0,
                        ok: true,
                    });
                }
            }
        }
    }

    /// Delivers one dispatcher completion: frees a window slot, settles
    /// the ledger, and queues the wire reply.
    pub fn deliver(&mut self, ctx: &SessionCtx<'_>, completion: Completion) {
        self.window_used = self.window_used.saturating_sub(1);
        match &completion.account {
            Account::Served {
                tenant,
                request_id,
                records,
                arrival,
            } => {
                SessionStats::bump(&ctx.stats.frames_served);
                ctx.counters.frame_served(ServeEvent {
                    tenant: *tenant,
                    request_id: *request_id,
                    records: *records,
                    latency_ns: arrival.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                });
            }
            Account::Errored => {
                SessionStats::bump(&ctx.stats.frames_errored);
            }
            Account::None => {}
        }
        self.queue_reply(&completion.msg, completion.meta);
    }

    /// Drains the socket until `WouldBlock`, feeding the assembler and
    /// acting on every complete message. Returns `Err` only on
    /// transport failure (the connection is also marked dead).
    pub fn handle_readable(
        &mut self,
        ctx: &SessionCtx<'_>,
        job_tx: Option<&mpsc::Sender<RouteJob>>,
    ) {
        // Frames may already be sitting decoded-but-unprocessed in the
        // assembler from before a write-pressure pause; drain those
        // first so a resume makes progress even when the socket itself
        // has nothing new.
        self.process_buffered(ctx, job_tx);
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if self.closing || self.dead || self.read_paused {
                return;
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.read_eof = true;
                    break;
                }
                Ok(n) => {
                    self.asm.feed(&scratch[..n]);
                    self.process_buffered(ctx, job_tx);
                    if self.read_paused {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        // EOF with a partial binary frame buffered is a mid-frame close;
        // nothing to answer (the peer is gone for reads anyway).
        if self.read_eof && self.mode == Mode::Sniffing {
            // Never learned a protocol: nothing to drain for.
            self.closing = true;
        }
    }

    /// Acts on whatever complete structures the buffer now holds.
    fn process_buffered(&mut self, ctx: &SessionCtx<'_>, job_tx: Option<&mpsc::Sender<RouteJob>>) {
        if self.mode == Mode::Sniffing {
            let peeked = self.asm.peek();
            if peeked.len() >= 4 {
                self.mode = if &peeked[..4] == b"GET " {
                    Mode::Http
                } else {
                    Mode::Binary
                };
            } else {
                return; // sniff continues when more bytes arrive
            }
        }
        match self.mode {
            Mode::Http => self.process_http(ctx),
            Mode::Binary => self.process_frames(ctx, job_tx),
            Mode::Sniffing => unreachable!(),
        }
    }

    /// One-shot HTTP: accumulate the head, answer, flush-and-close.
    fn process_http(&mut self, ctx: &SessionCtx<'_>) {
        let head = self.asm.peek();
        let complete = head.windows(4).any(|w| w == b"\r\n\r\n");
        if !complete && head.len() < HTTP_HEAD_MAX && !self.read_eof {
            return;
        }
        let response = crate::server::render_http(head, ctx);
        self.queue_raw(response.as_bytes());
        self.closing = true;
    }

    /// Pops and handles every complete binary frame.
    fn process_frames(&mut self, ctx: &SessionCtx<'_>, job_tx: Option<&mpsc::Sender<RouteJob>>) {
        loop {
            match self.asm.next_frame() {
                Ok(Some((msg, decode_ns))) => {
                    self.handle_message(ctx, job_tx, msg, decode_ns);
                    if self.closing || self.dead {
                        return;
                    }
                    if self.out.len() - self.out_start >= WRITE_HIGH_WATER {
                        self.read_paused = true;
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    SessionStats::bump(&ctx.stats.protocol_errors);
                    let reply = Message::Error {
                        tenant: 0,
                        request_id: 0,
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    };
                    self.queue_reply(&reply, None);
                    self.closing = true;
                    return;
                }
            }
        }
    }

    fn handle_message(
        &mut self,
        ctx: &SessionCtx<'_>,
        job_tx: Option<&mpsc::Sender<RouteJob>>,
        msg: Message,
        decode_ns: u64,
    ) {
        match msg {
            Message::Submit {
                tenant,
                request_id,
                dests,
            } => {
                SessionStats::bump(&ctx.stats.frames_submitted);
                if ctx.keys.is_some() {
                    // Keyed servers accept only tagged SUBMITs.
                    self.refuse_auth(ctx, tenant, request_id, "SUBMIT without auth tag");
                    return;
                }
                self.admit(ctx, job_tx, tenant, request_id, dests, decode_ns);
            }
            Message::SubmitTagged {
                tenant,
                request_id,
                tag,
                dests,
            } => {
                SessionStats::bump(&ctx.stats.frames_submitted);
                if let Some(keys) = ctx.keys {
                    if !keys.verify(tenant, request_id, &dests, tag) {
                        self.refuse_auth(ctx, tenant, request_id, "bad auth tag");
                        return;
                    }
                }
                // Open mode ignores the tag entirely.
                self.admit(ctx, job_tx, tenant, request_id, dests, decode_ns);
            }
            Message::Status { tenant, request_id } => {
                // Answered in the reactor; never enters the frame ledger.
                let json = serde_json::to_string(&build_status(ctx))
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                let reply = Message::StatusReport {
                    tenant,
                    request_id,
                    json,
                };
                self.queue_reply(&reply, None);
            }
            Message::Shutdown { .. } => ctx.control.trigger_shutdown(),
            // Server-to-client opcodes arriving at the server are a
            // protocol violation.
            Message::Routed { .. }
            | Message::Retry { .. }
            | Message::Error { .. }
            | Message::StatusReport { .. } => {
                SessionStats::bump(&ctx.stats.protocol_errors);
                let reply = Message::Error {
                    tenant: msg.tenant(),
                    request_id: msg.request_id(),
                    code: ErrorCode::Protocol,
                    message: format!("client sent server-only opcode 0x{:02x}", msg.opcode()),
                };
                self.queue_reply(&reply, None);
                self.closing = true;
            }
        }
    }

    /// Refuses a SUBMIT that failed tenant authentication: typed ERROR,
    /// `auth_failures` counter, ledger entry under `frames_errored`.
    fn refuse_auth(&mut self, ctx: &SessionCtx<'_>, tenant: u16, request_id: u64, why: &str) {
        SessionStats::bump(&ctx.stats.auth_failures);
        SessionStats::bump(&ctx.stats.frames_errored);
        ctx.counters.auth_failed(AuthEvent { tenant, request_id });
        ctx.telemetry.record_error(tenant);
        let reply = Message::Error {
            tenant,
            request_id,
            code: ErrorCode::Auth,
            message: why.to_string(),
        };
        self.queue_reply(&reply, None);
    }

    /// Admission control for one SUBMIT: draining check, per-connection
    /// window, per-tenant quota, then the global in-flight cap.
    fn admit(
        &mut self,
        ctx: &SessionCtx<'_>,
        job_tx: Option<&mpsc::Sender<RouteJob>>,
        tenant: u16,
        request_id: u64,
        dests: Vec<u32>,
        decode_ns: u64,
    ) {
        // Arrival ≈ read completion minus the timed body wait, so idle
        // time between frames never counts against a request.
        let received_at = Instant::now();
        let arrival = received_at
            .checked_sub(Duration::from_nanos(decode_ns))
            .unwrap_or(received_at);

        let Some(job_tx) = job_tx else {
            self.refuse(ctx, tenant, request_id, RetryReason::Draining);
            return;
        };
        if ctx.control.shutdown_requested() {
            self.refuse(ctx, tenant, request_id, RetryReason::Draining);
            return;
        }
        if self.window_used >= ctx.cfg.window {
            self.refuse(ctx, tenant, request_id, RetryReason::WindowFull);
            return;
        }
        let tenant_slot = ctx.admission.tenant_slot(tenant);
        if tenant_slot.fetch_add(1, Ordering::AcqRel) >= ctx.cfg.tenant_quota {
            tenant_slot.fetch_sub(1, Ordering::AcqRel);
            self.refuse(ctx, tenant, request_id, RetryReason::TenantQuota);
            return;
        }
        if ctx.admission.inflight.fetch_add(1, Ordering::AcqRel) >= ctx.cfg.queue_capacity {
            ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
            tenant_slot.fetch_sub(1, Ordering::AcqRel);
            self.refuse(ctx, tenant, request_id, RetryReason::QueueFull);
            return;
        }

        self.window_used += 1;
        ctx.window_depth.fetch_max(self.window_used, Ordering::AcqRel);
        ctx.counters.window_observed(WindowEvent {
            conn: self.token,
            depth: self.window_used,
        });
        let lines: Vec<Record> = dests
            .iter()
            .enumerate()
            .map(|(i, &d)| Record::new(d as usize, i as u64))
            .collect();
        let admission_ns = received_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let job = RouteJob {
            tenant,
            request_id,
            arrival,
            decode_ns,
            admission_ns,
            admitted_at: Instant::now(),
            lines,
            route: ReplyRoute {
                lane: self.lane,
                token: self.token,
            },
            tenant_slot,
        };
        if let Err(mpsc::SendError(job)) = job_tx.send(job) {
            // Dispatcher already gone: the session is past its drain
            // point. Release everything and push the frame back.
            ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
            job.tenant_slot.fetch_sub(1, Ordering::AcqRel);
            self.window_used -= 1;
            self.refuse(ctx, tenant, request_id, RetryReason::Draining);
        }
    }

    /// Answers a refused SUBMIT with an explicit RETRY.
    fn refuse(&mut self, ctx: &SessionCtx<'_>, tenant: u16, request_id: u64, reason: RetryReason) {
        SessionStats::bump(&ctx.stats.retries_issued);
        ctx.counters.retry_issued(ThrottleEvent {
            tenant,
            reason: reason.as_u8(),
        });
        ctx.telemetry.record_retry(tenant);
        let reply = Message::Retry {
            tenant,
            request_id,
            reason,
        };
        self.queue_reply(&reply, None);
    }
}
