//! The epoll reactor: N threads, each owning a set of nonblocking
//! connections, replacing two-threads-per-connection.
//!
//! Each reactor lane runs one thread around a [`Poller`] (epoll on
//! Linux, `poll(2)` elsewhere — see `sys.rs`). The lane owns three
//! inputs, all drained from the same wait loop:
//!
//! 1. **Socket readiness** — edge-triggered; the [`Conn`] state
//!    machines drain reads to `WouldBlock` and buffer writes, so no
//!    readiness edge is ever wasted.
//! 2. **Registrations** — the acceptor hands fresh sockets to lanes
//!    round-robin through a mutexed mailbox plus a wake-pipe nudge.
//! 3. **Completions** — the dispatcher routes finished frames back to
//!    the owning lane (the engine's completion token encodes
//!    `lane:conn`, see [`ReplyRoute`]), again mailbox + wake.
//!
//! The wake pipe is the only cross-thread signalling primitive: its
//! read end is registered with the poller under a reserved token, so a
//! sleeping reactor notices mail within one syscall instead of one
//! timeout tick.
//!
//! Shutdown is a three-step handshake. The acceptor stops and every
//! reactor drops its dispatcher sender (new SUBMITs answer
//! `RETRY(Draining)` locally); the dispatcher drains in-flight frames,
//! pushes their completions, sets `dispatcher_done`, and wakes all
//! lanes; each reactor then delivers the final completions, flushes
//! write buffers under a bounded grace deadline, and exits. Joins are
//! deterministic — no thread waits on a peer that might be blocked on a
//! socket.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use bnb_obs::{Observer, WakeEvent};

use crate::conn::{Account, Completion, Conn, RouteJob};
use crate::server::{SessionCtx, SessionStats};
use crate::sys::{PollEvent, Poller, WakePipe};

/// Poller token reserved for the lane's wake pipe.
const WAKE_TOKEN: u64 = 0;
/// How long the wait loop sleeps with nothing to do; bounds how stale a
/// missed edge-case wakeup can get and paces the stall sweep.
const IDLE_WAIT: Duration = Duration::from_millis(50);
/// How long a reactor keeps flushing buffered responses after the
/// dispatcher finishes, before abandoning slow readers.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// One reactor lane's cross-thread mailboxes.
pub(crate) struct ReactorLane {
    completions: Mutex<Vec<Completion>>,
    registrations: Mutex<Vec<TcpStream>>,
    wake: WakePipe,
}

impl ReactorLane {
    fn new() -> io::Result<ReactorLane> {
        Ok(ReactorLane {
            completions: Mutex::new(Vec::new()),
            registrations: Mutex::new(Vec::new()),
            wake: WakePipe::new()?,
        })
    }

    /// Queues a completion; the caller wakes the lane (possibly once
    /// for a whole batch) via [`ReactorLane::wake`].
    pub fn push_completion(&self, c: Completion) {
        self.completions.lock().unwrap().push(c);
    }

    /// Hands a fresh connection to this lane and nudges it.
    pub fn register(&self, stream: TcpStream) {
        self.registrations.lock().unwrap().push(stream);
        self.wake.wake();
    }

    /// Nudges the lane's poller out of its wait.
    pub fn wake(&self) {
        self.wake.wake();
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap())
    }

    fn take_registrations(&self) -> Vec<TcpStream> {
        std::mem::take(&mut *self.registrations.lock().unwrap())
    }
}

/// State shared by the acceptor, the dispatcher, and all reactor lanes.
pub(crate) struct ReactorShared {
    pub lanes: Vec<ReactorLane>,
    /// Set by the dispatcher after its last completion is pushed; the
    /// gate for reactor exit.
    pub dispatcher_done: AtomicBool,
    /// Connection token allocator. Starts at 1: token 0 is the wake
    /// pipe, and an all-zero engine token means "untagged".
    next_token: AtomicU64,
}

impl ReactorShared {
    pub fn new(lanes: usize) -> io::Result<ReactorShared> {
        let lanes = (0..lanes.max(1))
            .map(|_| ReactorLane::new())
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ReactorShared {
            lanes,
            dispatcher_done: AtomicBool::new(false),
            next_token: AtomicU64::new(1),
        })
    }

    /// Wakes every lane (dispatcher-done broadcast).
    pub fn wake_all(&self) {
        for lane in &self.lanes {
            lane.wake();
        }
    }

    fn alloc_token(&self) -> u64 {
        // 48-bit space; wrap-around would need 2^48 connections in one
        // session.
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(unix)]
fn fd_of(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of(_stream: &TcpStream) -> i32 {
    -1
}

/// Runs one reactor lane to completion. `poller` is created by the
/// caller so syscall failures surface as a `ServeError` before any
/// thread spawns.
pub(crate) fn run_reactor(
    lane_idx: usize,
    shared: &ReactorShared,
    ctx: &SessionCtx<'_>,
    mut poller: Poller,
    job_tx: mpsc::Sender<RouteJob>,
) {
    let lane = &shared.lanes[lane_idx];
    if poller
        .add(lane.wake.reader_fd(), WAKE_TOKEN, true, false)
        .is_err()
    {
        // Without a wake pipe the lane cannot participate; the stub
        // (non-unix) path fails before this in Server::serve.
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events: Vec<PollEvent> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut job_tx = Some(job_tx);

    loop {
        events.clear();
        let _ = poller.wait(&mut events, Some(IDLE_WAIT));

        // Drop our dispatcher sender the moment shutdown is requested:
        // the jobs channel disconnecting is what lets the dispatcher
        // finish, and admission answers RETRY(Draining) from here on.
        if job_tx.is_some() && ctx.control.shutdown_requested() {
            job_tx = None;
        }

        touched.clear();
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                lane.wake.drain();
                ctx.counters.reactor_woken(WakeEvent {
                    lane: lane_idx as u32,
                });
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.hangup {
                conn.dead = true;
            }
            if ev.readable && !conn.dead {
                conn.handle_readable(ctx, job_tx.as_ref());
            }
            if ev.writable && !conn.dead {
                conn.flush(ctx);
            }
            touched.push(ev.token);
        }

        // Adopt freshly accepted connections. Edge-triggered pollers
        // only report *new* readiness, so sweep the socket once now.
        for stream in lane.take_registrations() {
            let token = shared.alloc_token();
            let mut conn = Conn::new(stream, token, lane_idx);
            if poller.add(fd_of(conn.stream()), token, true, false).is_err() {
                ctx.active_conns.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            conn.handle_readable(ctx, job_tx.as_ref());
            touched.push(token);
            conns.insert(token, conn);
        }

        // Snapshot the dispatcher-done flag *before* draining
        // completions: everything pushed before the flag flipped is
        // then guaranteed to be in this take.
        let dispatcher_done = shared.dispatcher_done.load(Ordering::Acquire);
        for completion in lane.take_completions() {
            deliver_completion(ctx, &mut conns, completion, &mut touched);
        }

        // Flush and re-arm everything that made progress this turn.
        touched.sort_unstable();
        touched.dedup();
        for idx in 0..touched.len() {
            let token = touched[idx];
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            service_conn(ctx, &mut poller, conn, job_tx.as_ref());
            if conn.finished() {
                teardown(ctx, &mut poller, conns.remove(&token).unwrap());
            }
        }

        // Bounded-drain guarantee: a client that sent half a frame and
        // stalled is dropped after the mid-frame deadline.
        let now = Instant::now();
        let stalled: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.stalled_past_deadline(now))
            .map(|(&t, _)| t)
            .collect();
        for token in stalled {
            teardown(ctx, &mut poller, conns.remove(&token).unwrap());
        }

        if job_tx.is_none() && dispatcher_done {
            break;
        }
    }

    // Final drain: the dispatcher has pushed its last completion and
    // will never push again. Deliver stragglers, then keep flushing
    // buffered responses under a grace deadline.
    for completion in lane.take_completions() {
        deliver_completion(ctx, &mut conns, completion, &mut touched);
    }
    let deadline = Instant::now() + DRAIN_GRACE;
    loop {
        let mut pending = false;
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            let conn = conns.get_mut(&token).unwrap();
            if !conn.dead {
                conn.flush(ctx);
            }
            if conn.dead || !conn.wants_write() {
                teardown(ctx, &mut poller, conns.remove(&token).unwrap());
            } else {
                pending = true;
            }
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        events.clear();
        let _ = poller.wait(&mut events, Some(Duration::from_millis(20)));
    }
    for (_, conn) in conns.drain() {
        teardown_no_poller(ctx, conn);
    }
}

/// Routes one dispatcher completion to its connection, or accounts it
/// as dropped when the connection is gone.
fn deliver_completion(
    ctx: &SessionCtx<'_>,
    conns: &mut HashMap<u64, Conn>,
    completion: Completion,
    touched: &mut Vec<u64>,
) {
    match conns.get_mut(&completion.token) {
        Some(conn) if !conn.dead => {
            touched.push(conn.token);
            conn.deliver(ctx, completion);
        }
        _ => match completion.account {
            Account::Served { .. } | Account::Errored => {
                SessionStats::bump(&ctx.stats.responses_dropped);
            }
            Account::None => {}
        },
    }
}

/// Post-progress housekeeping for one connection: flush, resume paused
/// reads (draining any frames already buffered while paused), and
/// re-arm poller interest if it changed.
fn service_conn(
    ctx: &SessionCtx<'_>,
    poller: &mut Poller,
    conn: &mut Conn,
    job_tx: Option<&mpsc::Sender<RouteJob>>,
) {
    let was_paused = conn.read_paused;
    if !conn.dead {
        conn.flush(ctx);
    }
    if was_paused && !conn.read_paused && !conn.dead && !conn.closing {
        // The flush crossed the low-water mark: pick the read side back
        // up (buffered frames first, then the socket).
        conn.handle_readable(ctx, job_tx);
        if !conn.dead {
            conn.flush(ctx);
        }
    }
    if conn.dead || conn.finished() {
        return;
    }
    let want_read = conn.wants_read();
    let want_write = conn.wants_write();
    if want_read != conn.armed_read || want_write != conn.armed_write {
        if poller
            .modify(fd_of(conn.stream()), conn.token, want_read, want_write)
            .is_ok()
        {
            conn.armed_read = want_read;
            conn.armed_write = want_write;
        }
    }
}

fn teardown(ctx: &SessionCtx<'_>, poller: &mut Poller, conn: Conn) {
    let _ = poller.remove(fd_of(conn.stream()));
    teardown_no_poller(ctx, conn);
}

fn teardown_no_poller(ctx: &SessionCtx<'_>, conn: Conn) {
    ctx.active_conns.fetch_sub(1, Ordering::AcqRel);
    drop(conn); // closes the socket
}
