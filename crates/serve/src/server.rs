//! The long-lived routing server.
//!
//! One [`Server::serve`] call owns a TCP listener for the lifetime of a
//! serving session. Connections are multiplexed onto a small set of
//! **reactor threads** (default: one per core) built on `epoll(7)` —
//! see `sys.rs` and `reactor.rs` — instead of two threads per
//! connection: each reactor owns its connections' nonblocking sockets
//! with edge-triggered readiness, runs the per-connection state
//! machines (`conn.rs`), and performs admission control *before* the
//! dispatcher ever sees a frame:
//!
//! - a per-connection pipelining window ([`ServeConfig::window`]) — how
//!   many SUBMITs one client may have in flight,
//! - a per-tenant in-flight quota, and
//! - a global in-flight cap equal to the engine's bounded queue
//!   capacity (so the engine queue can never be full at submit time).
//!
//! A frame that fails admission is answered with an explicit `RETRY`
//! response — the server never buffers beyond its declared bounds. A
//! single dispatcher thread aggregates admitted frames into
//! [`FrameBatch`] jobs for the engine's word-parallel batched kernel
//! (pipelined clients keep multiple frames in flight, so the batch is
//! usually non-trivial) and fans completions back to the owning reactor
//! lane, keyed by the engine's opaque completion token
//! ([`crate::conn::ReplyRoute`]).
//!
//! On shutdown (SIGTERM/SIGINT via [`install_signal_handlers`], a wire
//! `SHUTDOWN` message, or [`ServerControl::trigger_shutdown`]) the
//! acceptor closes, new submissions get `RETRY Draining`, every
//! in-flight frame is routed and delivered, and all threads join
//! deterministically before [`Server::serve`] returns its
//! [`ServeReport`].
//!
//! The listener doubles as an HTTP operator surface: a connection whose
//! first bytes are `"GET "` is answered once and closed — `/status`
//! returns a JSON [`StatusSnapshot`], any other path the
//! `text/plain; version=0.0.4` Prometheus exposition rendered from the
//! shared [`Counters`] plus the request-lifecycle [`Telemetry`]
//! families. The sniff is nonblocking: a client that dribbles its GET
//! line byte-at-a-time stalls only its own connection.
//!
//! With `--tenant-keys` ([`Server::with_tenant_keys`]) the server runs
//! keyed: SUBMITs must arrive as `SUBMIT_TAGGED` with a valid
//! per-tenant SipHash tag (see `auth.rs`), and anything else is refused
//! with a typed `ERROR(Auth)`.
//!
//! # Request-lifecycle telemetry
//!
//! Every served frame's timeline is cut into six stages — decode (body
//! buffering + parse), admission (auth + quota checks), queue wait
//! (dispatcher hand-off + the engine's bounded queue; for pipelined
//! clients this includes time spent behind the same connection's
//! earlier frames), route (worker pickup to batch publish), drain
//! (completion buffer to dispatcher delivery), and response write
//! (completion fan-out + socket write). All six are recorded by the
//! owning reactor when the reply's last byte flushes to the socket,
//! from stamps taken at adjacent points of the one request's timeline,
//! so the per-stage sums partition the independently measured
//! wire-to-wire latency. Requests slower than [`ServeConfig::slow_ms`]
//! are additionally sampled into an optional [`FlightRecorder`] as
//! [`SpanKind::Request`] spans.

use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bnb_core::batch::FrameBatch;
use bnb_core::network::BnbNetwork;
use bnb_engine::{
    Engine, EngineConfig, EngineHandle, EngineStats, LiveFaultPlan, PlanStatus, ShardDepth,
};
use bnb_obs::{
    render_prometheus, render_prometheus_telemetry, AcceptEvent, Counters, FlightRecorder,
    LatencySummary, Observer, Telemetry, TelemetrySnapshot, ThrottleEvent,
};
use serde::{Deserialize, Serialize};

use crate::auth::TenantKeys;
use crate::conn::{Account, Completion, Pending, ReplyMeta, ReplyRoute, RouteJob};
use crate::protocol::{ErrorCode, Message, RetryReason};
use crate::reactor::{run_reactor, ReactorShared};
use crate::sys::Poller;

// `SpanKind` appears in doc links only; the spans themselves are
// recorded by `conn.rs`.
#[allow(unused_imports)]
use bnb_obs::SpanKind;

/// Serving-session parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Network size `N = 2^m`; every SUBMIT frame must carry exactly this
    /// many records.
    pub inputs: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Bounded engine queue capacity — also the global in-flight cap.
    pub queue_capacity: usize,
    /// Per-tenant in-flight frame quota.
    pub tenant_quota: usize,
    /// Most simultaneously open client connections.
    pub max_connections: usize,
    /// Legacy knob kept for config compatibility; the reactor never
    /// blocks in `read`, so this no longer bounds anything.
    pub read_timeout: Duration,
    /// Slow-request capture threshold in milliseconds; requests whose
    /// wire-to-wire latency crosses it are counted and — when a
    /// [`FlightRecorder`] is attached via [`Server::with_recorder`] —
    /// sampled as [`SpanKind::Request`] spans. `0` disables capture.
    pub slow_ms: u64,
    /// Reactor threads. `0` = one per available core.
    pub reactor_threads: usize,
    /// Per-connection pipelining window: how many SUBMITs one
    /// connection may have in flight before the server answers
    /// `RETRY WindowFull`.
    pub window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            inputs: 64,
            workers: 2,
            queue_capacity: 8,
            tenant_quota: 4,
            max_connections: 64,
            read_timeout: Duration::from_millis(100),
            slow_ms: 0,
            reactor_threads: 0,
            window: 32,
        }
    }
}

/// Set by the process signal handlers; shared by every [`ServerControl`].
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Routes SIGTERM and SIGINT to a graceful drain of every server in the
/// process. Uses the libc `signal(2)` entry point directly so the crate
/// stays dependency-free; on non-Unix targets this is a no-op.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_sig: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// Shared shutdown switch for one serving session.
#[derive(Debug, Default)]
pub struct ServerControl {
    shutdown: AtomicBool,
}

impl ServerControl {
    /// A control with the shutdown switch off.
    pub fn new() -> Arc<Self> {
        Arc::new(ServerControl::default())
    }

    /// Flips the session into graceful drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once a drain was requested — by this control, or by a process
    /// signal installed with [`install_signal_handlers`].
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// What one serving session did, returned by [`Server::serve`].
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Connections accepted (metrics scrapes included).
    pub connections_accepted: u64,
    /// SUBMIT frames received.
    pub frames_submitted: u64,
    /// Frames routed and delivered back to their client.
    pub frames_served: u64,
    /// Frames answered with an explicit RETRY.
    pub retries_issued: u64,
    /// Frames that failed validation, routing, or tenant authentication
    /// (answered with ERROR).
    pub frames_errored: u64,
    /// Responses dropped because the client connection was gone by
    /// delivery time.
    pub responses_dropped: u64,
    /// Connections that violated the wire protocol.
    pub protocol_errors: u64,
    /// SUBMITs refused for a missing or invalid auth tag (a subset of
    /// `frames_errored`).
    pub auth_failures: u64,
    /// True when the session ended by graceful drain (vs. listener error).
    pub graceful: bool,
    /// Session wall-clock duration.
    pub elapsed_ms: u64,
    /// Batches the engine completed (served + errored).
    pub engine_batches: u64,
    /// Records in successfully routed batches.
    pub engine_records: u64,
    /// Served requests that crossed the [`ServeConfig::slow_ms`]
    /// threshold.
    pub slow_requests: u64,
}

impl ServeReport {
    /// The bounded-buffering ledger: every submitted frame must be
    /// accounted for as served, retried, errored, or dropped.
    pub fn accounted(&self) -> bool {
        self.frames_submitted
            == self.frames_served
                + self.retries_issued
                + self.frames_errored
                + self.responses_dropped
    }
}

/// Session-scoped tallies feeding the [`ServeReport`].
#[derive(Default)]
pub(crate) struct SessionStats {
    pub connections_accepted: AtomicU64,
    pub frames_submitted: AtomicU64,
    pub frames_served: AtomicU64,
    pub retries_issued: AtomicU64,
    pub frames_errored: AtomicU64,
    pub responses_dropped: AtomicU64,
    pub protocol_errors: AtomicU64,
    pub auth_failures: AtomicU64,
}

impl SessionStats {
    pub(crate) fn bump(counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Admission state shared by every reactor: the global in-flight count
/// and the per-tenant quota slots.
pub(crate) struct Admission {
    pub inflight: AtomicUsize,
    tenants: Mutex<HashMap<u16, Arc<AtomicUsize>>>,
}

impl Admission {
    fn new() -> Self {
        Admission {
            inflight: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn tenant_slot(&self, tenant: u16) -> Arc<AtomicUsize> {
        Arc::clone(
            self.tenants
                .lock()
                .unwrap()
                .entry(tenant)
                .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
        )
    }
}

/// Everything a reactor or the dispatcher needs from the session,
/// bundled once instead of threaded as a dozen parameters.
pub(crate) struct SessionCtx<'s> {
    pub cfg: ServeConfig,
    pub control: &'s ServerControl,
    pub admission: &'s Admission,
    pub stats: &'s SessionStats,
    pub counters: &'s Counters,
    pub telemetry: &'s Telemetry,
    pub recorder: Option<&'s FlightRecorder>,
    pub plan: Option<&'s LiveFaultPlan>,
    pub active_conns: &'s AtomicUsize,
    pub engine_stats: &'s (dyn Fn() -> EngineStats + Sync),
    /// Tenant auth keys; `None` = open mode.
    pub keys: Option<&'s TenantKeys>,
    /// Deepest any connection's pipelining window ever got.
    pub window_depth: &'s AtomicUsize,
    /// How many reactor lanes the session runs.
    pub reactors: usize,
}

/// Engine-side queue and latency state in a [`StatusSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStatus {
    /// Batches sitting in the bounded submission queue right now.
    pub queue_depth: usize,
    /// Deepest the bounded submission queue ever got.
    pub queue_high_water: usize,
    /// Deepest the shared slice-task queue got this submission wave.
    pub task_queue_high_water: usize,
    /// Batches fully routed (including failed ones).
    pub batches: u64,
    /// Records in successfully routed batches.
    pub records: u64,
    /// Batches that failed validation or routing.
    pub errors: u64,
    /// Queue-wait latency quantiles (submit to worker pickup).
    pub wait_latency: LatencySummary,
    /// Submit-to-completion latency quantiles.
    pub latency: LatencySummary,
}

/// Per-connection pipelining-window state in a [`StatusSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStatus {
    /// The configured per-connection in-flight limit
    /// ([`ServeConfig::window`]), as advertised to clients via RETRY
    /// `WindowFull`.
    pub limit: usize,
    /// Deepest any single connection's window got this session.
    pub max_depth: usize,
}

/// What the `/status` endpoint and the wire `STATUS` opcode report: one
/// JSON document with the session's uptime, request telemetry, engine
/// queue state, and — when a [`LiveFaultPlan`] is live — per-shard
/// health and fault maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusSnapshot {
    /// Milliseconds since the serving session started.
    pub uptime_ms: u64,
    /// Frames currently between admission and delivery.
    pub inflight: usize,
    /// Client connections currently open.
    pub connections: usize,
    /// Reactor threads serving those connections.
    pub reactors: usize,
    /// Whether the session is draining for shutdown.
    pub draining: bool,
    /// Per-connection pipelining window limit and high water.
    pub window: WindowStatus,
    /// Per-stage and per-tenant request telemetry.
    pub telemetry: TelemetrySnapshot,
    /// Engine queue depths and latency quantiles.
    pub engine: EngineStatus,
    /// Live fabric health, when the session runs under a fault plan.
    pub fabric: Option<PlanStatus>,
}

/// Builds the [`StatusSnapshot`] both operator surfaces serve.
pub(crate) fn build_status(ctx: &SessionCtx<'_>) -> StatusSnapshot {
    let est = (ctx.engine_stats)();
    StatusSnapshot {
        uptime_ms: ctx.telemetry.uptime_ms(),
        inflight: ctx.admission.inflight.load(Ordering::Acquire),
        connections: ctx.active_conns.load(Ordering::Acquire),
        reactors: ctx.reactors,
        draining: ctx.control.shutdown_requested(),
        window: WindowStatus {
            limit: ctx.cfg.window,
            max_depth: ctx.window_depth.load(Ordering::Acquire),
        },
        telemetry: ctx.telemetry.snapshot(),
        engine: EngineStatus {
            queue_depth: est.queue_depth,
            queue_high_water: est.queue_high_water,
            task_queue_high_water: est.task_queue_high_water,
            batches: est.batches,
            records: est.records,
            errors: est.errors,
            wait_latency: est.wait_latency,
            latency: est.latency,
        },
        fabric: ctx.plan.map(|p| p.status()),
    }
}

/// A long-lived routing server bound to a shared [`Counters`] sink.
pub struct Server<'a> {
    config: ServeConfig,
    counters: &'a Counters,
    fault_plan: Option<&'a LiveFaultPlan>,
    recorder: Option<&'a FlightRecorder>,
    tenant_keys: Option<TenantKeys>,
}

impl<'a> Server<'a> {
    /// A server that reports serving metrics into `counters`.
    pub fn new(config: ServeConfig, counters: &'a Counters) -> Self {
        Server {
            config,
            counters,
            fault_plan: None,
            recorder: None,
            tenant_keys: None,
        }
    }

    /// Attaches a [`FlightRecorder`] for slow-request capture: served
    /// requests crossing [`ServeConfig::slow_ms`] are recorded as
    /// [`SpanKind::Request`] spans (request id as `seq`, tenant as `a`,
    /// record count as `b`, wire latency as the duration).
    pub fn with_recorder(mut self, recorder: &'a FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Runs the session keyed: SUBMITs must arrive tagged with a valid
    /// per-tenant SipHash tag or are refused with `ERROR(Auth)`.
    pub fn with_tenant_keys(mut self, keys: TenantKeys) -> Self {
        self.tenant_keys = Some(keys);
        self
    }

    /// A server whose engine routes through live fault state: traffic
    /// runs under [`bnb_engine::Engine::run_scrubbed`] against `plan`, so
    /// faults can be injected and cleared *while the session serves* — a
    /// chaos driver holds the same `&plan` and mutates it concurrently.
    /// Detected faults are retried onto healthy fabric shards, the
    /// background scrubber quarantines and restores shards, and clients
    /// only ever see correct frames, explicit `RETRY`s, or explicit
    /// `ERROR`s — never a silently misdelivered frame.
    pub fn with_fault_plan(
        config: ServeConfig,
        counters: &'a Counters,
        plan: &'a LiveFaultPlan,
    ) -> Self {
        Server {
            config,
            counters,
            fault_plan: Some(plan),
            recorder: None,
            tenant_keys: None,
        }
    }

    /// Runs one serving session on `listener` until `control` requests a
    /// drain (or the listener dies). Resets `counters` at session start so
    /// the `/metrics` endpoint and final report describe this session
    /// only. Joins every thread before returning.
    pub fn serve(
        &self,
        listener: TcpListener,
        control: &Arc<ServerControl>,
    ) -> Result<ServeReport, ServeError> {
        let cfg = self.config;
        let network = BnbNetwork::builder_for(cfg.inputs)
            .map_err(|e| ServeError::Config(format!("bad network size {}: {e}", cfg.inputs)))?
            .build();
        let engine = Engine::with_observer(
            network,
            EngineConfig {
                workers: cfg.workers.max(1),
                queue_capacity: cfg.queue_capacity.max(1),
                shard_depth: ShardDepth::Auto,
            },
            self.counters,
        );
        listener
            .set_nonblocking(true)
            .map_err(ServeError::Listener)?;
        self.counters.reset();

        let reactors = if cfg.reactor_threads == 0 {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.reactor_threads
        };
        // Everything that can fail with a syscall error fails here, before
        // any thread spawns: the reactor mailbox wake pipes and one poller
        // per lane. On targets without epoll/poll this is where the
        // `Unsupported` error surfaces.
        let shared = ReactorShared::new(reactors).map_err(ServeError::Reactor)?;
        let reactors = shared.lanes.len();
        let mut pollers = Vec::with_capacity(reactors);
        for _ in 0..reactors {
            pollers.push(Poller::new().map_err(ServeError::Reactor)?);
        }

        let stats = SessionStats::default();
        let admission = Admission::new();
        let telemetry = Telemetry::new();
        if cfg.slow_ms > 0 {
            telemetry.set_slow_threshold(Some(Duration::from_millis(cfg.slow_ms)));
        }
        let started = Instant::now();
        let graceful = AtomicBool::new(true);
        let active_conns = AtomicUsize::new(0);
        let window_depth = AtomicUsize::new(0);

        let session = |handle: &EngineHandle<'_, &Counters>| {
            let engine_stats = || handle.stats();
            let ctx = SessionCtx {
                cfg,
                control,
                admission: &admission,
                stats: &stats,
                counters: self.counters,
                telemetry: &telemetry,
                recorder: self.recorder,
                plan: self.fault_plan,
                active_conns: &active_conns,
                engine_stats: &engine_stats,
                keys: self.tenant_keys.as_ref(),
                window_depth: &window_depth,
                reactors,
            };
            let (job_tx, job_rx) = mpsc::channel::<RouteJob>();
            let shared_ref = &shared;
            thread::scope(|s| {
                let ctx_ref = &ctx;
                s.spawn(move || dispatch(handle, job_rx, ctx_ref, shared_ref));
                for (lane_idx, poller) in pollers.drain(..).enumerate() {
                    let job_tx = job_tx.clone();
                    s.spawn(move || run_reactor(lane_idx, shared_ref, ctx_ref, poller, job_tx));
                }

                // Accept loop, run inline on this thread. Fresh sockets
                // are dealt to reactor lanes round-robin.
                let mut next_lane = 0usize;
                loop {
                    if control.shutdown_requested() {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            if active_conns.load(Ordering::Acquire) >= cfg.max_connections {
                                drop(stream); // over the connection cap
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                drop(stream);
                                continue;
                            }
                            let conn = SessionStats::bump(&stats.connections_accepted);
                            self.counters.connection_accepted(AcceptEvent { conn });
                            active_conns.fetch_add(1, Ordering::AcqRel);
                            shared.lanes[next_lane].register(stream);
                            next_lane = (next_lane + 1) % reactors;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            graceful.store(false, Ordering::SeqCst);
                            // The reactors and dispatcher only exit
                            // through the drain protocol.
                            control.trigger_shutdown();
                            break;
                        }
                    }
                }
                // Dropping the acceptor's sender (the reactors drop
                // theirs on seeing the shutdown flag) lets the
                // dispatcher finish its drain.
                drop(job_tx);
            });
            // Every reactor and the dispatcher have joined; nothing can
            // be in flight, but close the engine queue deterministically.
            let tail = handle.drain_and_close();
            debug_assert!(tail.is_empty(), "dispatcher left {} batches", tail.len());
            let est = handle.stats();
            (est.batches, est.records)
        };
        let (engine_batches, engine_records) = match self.fault_plan {
            Some(plan) => engine.run_scrubbed(plan, session),
            None => engine.run(session),
        };

        let report = ServeReport {
            connections_accepted: stats.connections_accepted.load(Ordering::Relaxed),
            frames_submitted: stats.frames_submitted.load(Ordering::Relaxed),
            frames_served: stats.frames_served.load(Ordering::Relaxed),
            retries_issued: stats.retries_issued.load(Ordering::Relaxed),
            frames_errored: stats.frames_errored.load(Ordering::Relaxed),
            responses_dropped: stats.responses_dropped.load(Ordering::Relaxed),
            protocol_errors: stats.protocol_errors.load(Ordering::Relaxed),
            auth_failures: stats.auth_failures.load(Ordering::Relaxed),
            graceful: graceful.load(Ordering::SeqCst),
            elapsed_ms: started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            engine_batches,
            engine_records,
            slow_requests: telemetry.snapshot().slow_captured,
        };
        debug_assert!(
            report.accounted(),
            "frame ledger out of balance: {report:?}"
        );
        Ok(report)
    }
}

/// A serving-session failure (distinct from per-connection errors, which
/// are answered on the wire and never abort the session).
#[derive(Debug)]
pub enum ServeError {
    /// The configuration cannot build a network.
    Config(String),
    /// The listener socket failed before the session started.
    Listener(io::Error),
    /// Reactor setup (epoll instance or wake pipe) failed before the
    /// session started.
    Reactor(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Listener(e) => write!(f, "listener setup failed: {e}"),
            ServeError::Reactor(e) => write!(f, "reactor setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(_) => None,
            ServeError::Listener(e) | ServeError::Reactor(e) => Some(e),
        }
    }
}

/// The dispatcher: aggregates every admitted frame onto the engine's
/// bounded queue — full-width frames as one [`FrameBatch`] job for the
/// batched kernel — and fans drained completions back to the owning
/// reactor lanes via the engine's completion tokens.
fn dispatch<O: Observer>(
    handle: &EngineHandle<'_, O>,
    jobs: mpsc::Receiver<RouteJob>,
    ctx: &SessionCtx<'_>,
    shared: &ReactorShared,
) {
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut ready: Vec<RouteJob> = Vec::new();
    let mut to_wake = vec![false; shared.lanes.len()];
    let mut disconnected = false;
    loop {
        // Fan out everything the engine has finished.
        while let Some(batch) = handle.try_drain() {
            let Some(p) = pending.remove(&batch.seq) else {
                continue; // unreachable: every submit records a Pending
            };
            let route = ReplyRoute::decode(batch.token).unwrap_or(p.route);
            debug_assert_eq!(route, p.route, "engine token must round-trip the route");
            // Submit-to-delivery, cut at the engine's own stamps: whatever
            // the engine did not spend queued or routing was spent in the
            // completion buffer waiting for this delivery sweep.
            let drain_total = p
                .submitted_at
                .elapsed()
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            let drain_ns = drain_total.saturating_sub(batch.queue_ns + batch.route_ns);
            let completion = match batch.result {
                Ok(lines) => Completion {
                    token: route.token,
                    msg: Message::Routed {
                        tenant: p.tenant,
                        request_id: p.request_id,
                        sources: lines.iter().map(|r| r.data() as u32).collect(),
                    },
                    meta: Some(ReplyMeta {
                        tenant: p.tenant,
                        request_id: p.request_id,
                        records: p.records,
                        arrival: p.arrival,
                        decode_ns: p.decode_ns,
                        admission_ns: p.admission_ns,
                        queue_ns: p.handoff_ns + batch.queue_ns,
                        route_ns: batch.route_ns,
                        drain_ns,
                        queued_at: Instant::now(),
                    }),
                    account: Account::Served {
                        tenant: p.tenant,
                        request_id: p.request_id,
                        records: p.records,
                        arrival: p.arrival,
                    },
                },
                Err(e) => {
                    ctx.telemetry.record_error(p.tenant);
                    Completion {
                        token: route.token,
                        msg: Message::Error {
                            tenant: p.tenant,
                            request_id: p.request_id,
                            code: ErrorCode::Route,
                            message: error_chain(&e),
                        },
                        meta: None,
                        account: Account::Errored,
                    }
                }
            };
            shared.lanes[route.lane].push_completion(completion);
            to_wake[route.lane] = true;
            p.tenant_slot.fetch_sub(1, Ordering::AcqRel);
            ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        }

        // Gather everything the reactors have admitted, then submit the
        // gathering as one batched kernel job where possible.
        loop {
            match jobs.try_recv() {
                Ok(job) => ready.push(job),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        flush_ready(handle, ctx, shared, &mut pending, &mut ready, &mut to_wake);

        // One wake per lane per sweep, not per completion.
        for (lane, marked) in to_wake.iter_mut().enumerate() {
            if *marked {
                shared.lanes[lane].wake();
                *marked = false;
            }
        }

        if disconnected && pending.is_empty() {
            break;
        }

        // Park briefly: long when fully idle, short while batches are in
        // flight so drains are delivered promptly.
        let wait = if pending.is_empty() {
            Duration::from_millis(50)
        } else {
            Duration::from_micros(200)
        };
        match jobs.recv_timeout(wait) {
            Ok(job) => ready.push(job),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => disconnected = true,
        }
    }
    // Nothing in flight and no sender left: the reactors may exit once
    // they have delivered what was already pushed.
    shared.dispatcher_done.store(true, Ordering::Release);
    shared.wake_all();
}

/// Submits the gathered jobs: every full-width frame goes into one
/// [`FrameBatch`] job (the engine's word-parallel batched kernel; each
/// frame still drains as its own completion), wrong-width frames submit
/// singly so the engine's validation rejects them per-frame.
fn flush_ready<O: Observer>(
    handle: &EngineHandle<'_, O>,
    ctx: &SessionCtx<'_>,
    shared: &ReactorShared,
    pending: &mut HashMap<u64, Pending>,
    ready: &mut Vec<RouteJob>,
    to_wake: &mut [bool],
) {
    if ready.is_empty() {
        return;
    }
    let width = ctx.cfg.inputs;
    let batchable = ready.iter().filter(|j| j.lines.len() == width).count();
    if batchable >= 2 {
        let mut batch = FrameBatch::with_capacity(width, batchable);
        let mut tokens = Vec::with_capacity(batchable);
        let mut members = Vec::with_capacity(batchable);
        let mut singles = Vec::new();
        for job in ready.drain(..) {
            if job.lines.len() == width {
                batch.push_frame(&job.lines);
                tokens.push(job.route.encode());
                members.push(job);
            } else {
                singles.push(job);
            }
        }
        match handle.try_submit_batch(batch, &tokens) {
            Ok(seq) => {
                // The admission cap keeps in-flight frames (≥ queued
                // jobs) within `queue_capacity`, so the queue had room.
                let submitted_at = Instant::now();
                for (f, job) in members.into_iter().enumerate() {
                    pending.insert(seq + f as u64, Pending::from_job(job, width, submitted_at));
                }
            }
            Err(err) => {
                // Defensive: admission should make this unreachable.
                let reason = if err.is_closed() {
                    RetryReason::Draining
                } else {
                    RetryReason::QueueFull
                };
                for job in members {
                    refuse_job(ctx, shared, to_wake, job, reason);
                }
            }
        }
        for job in singles {
            submit_single(handle, ctx, shared, pending, to_wake, job);
        }
    } else {
        for job in ready.drain(..) {
            submit_single(handle, ctx, shared, pending, to_wake, job);
        }
    }
}

fn submit_single<O: Observer>(
    handle: &EngineHandle<'_, O>,
    ctx: &SessionCtx<'_>,
    shared: &ReactorShared,
    pending: &mut HashMap<u64, Pending>,
    to_wake: &mut [bool],
    mut job: RouteJob,
) {
    let token = job.route.encode();
    let records = job.lines.len();
    match handle.try_submit_tagged(std::mem::take(&mut job.lines), token) {
        Ok(seq) => {
            pending.insert(seq, Pending::from_job(job, records, Instant::now()));
        }
        Err(err) => {
            let reason = if err.is_closed() {
                RetryReason::Draining
            } else {
                RetryReason::QueueFull
            };
            refuse_job(ctx, shared, to_wake, job, reason);
        }
    }
}

/// Answers a frame the engine would not take with a defensive RETRY,
/// fully accounted here (the completion carries [`Account::None`]).
fn refuse_job(
    ctx: &SessionCtx<'_>,
    shared: &ReactorShared,
    to_wake: &mut [bool],
    job: RouteJob,
    reason: RetryReason,
) {
    SessionStats::bump(&ctx.stats.retries_issued);
    ctx.counters.retry_issued(ThrottleEvent {
        tenant: job.tenant,
        reason: reason.as_u8(),
    });
    ctx.telemetry.record_retry(job.tenant);
    shared.lanes[job.route.lane].push_completion(Completion {
        token: job.route.token,
        msg: Message::Retry {
            tenant: job.tenant,
            request_id: job.request_id,
            reason,
        },
        meta: None,
        account: Account::None,
    });
    to_wake[job.route.lane] = true;
    job.tenant_slot.fetch_sub(1, Ordering::AcqRel);
    ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
}

/// Renders an error with its full `source()` chain.
fn error_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cur = err.source();
    while let Some(e) = cur {
        out.push_str(": ");
        out.push_str(&e.to_string());
        cur = e.source();
    }
    out
}

/// Renders one HTTP operator response from a buffered request head:
/// `/status` with the JSON [`StatusSnapshot`], any other path with the
/// Prometheus 0.0.4 exposition of the shared counters plus the
/// telemetry families.
pub(crate) fn render_http(head: &[u8], ctx: &SessionCtx<'_>) -> String {
    let path = http_path(head);
    let (content_type, body) = if path.starts_with("/status") {
        let json = serde_json::to_string(&build_status(ctx))
            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
        ("application/json", json)
    } else {
        let mut body = render_prometheus(&ctx.counters.snapshot());
        body.push_str(&render_prometheus_telemetry(&ctx.telemetry.snapshot()));
        ("text/plain; version=0.0.4", body)
    };
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        content_type,
        body.len(),
        body
    )
}

/// The request path from an HTTP request head (`GET <path> HTTP/1.1`);
/// empty when the head is malformed, which falls through to `/metrics`.
fn http_path(head: &[u8]) -> &str {
    let line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    std::str::from_utf8(line)
        .ok()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("")
}
