//! The long-lived routing server.
//!
//! One [`Server::serve`] call owns a TCP listener for the lifetime of a
//! serving session. Every accepted connection gets a reader thread and a
//! writer thread; a single dispatcher thread multiplexes all admitted
//! frames onto one [`bnb_engine::Engine`] submit/drain queue. Admission
//! control runs in the reader, *before* the dispatcher ever sees a frame:
//!
//! - a global in-flight cap equal to the engine's bounded queue capacity
//!   (so `try_submit` can never find the queue full), and
//! - a per-tenant in-flight quota.
//!
//! A frame that fails admission is answered with an explicit `RETRY`
//! response — the server never buffers beyond its declared bounds. On
//! shutdown (SIGTERM/SIGINT via [`install_signal_handlers`], a wire
//! `SHUTDOWN` message, or [`ServerControl::trigger_shutdown`]) the
//! acceptor closes, new submissions get `RETRY Draining`, every in-flight
//! frame is routed and delivered, and all threads join deterministically
//! before [`Server::serve`] returns its [`ServeReport`].
//!
//! The listener doubles as an HTTP operator surface: a connection whose
//! first bytes are `"GET "` is answered once and closed — `/status`
//! returns a JSON [`StatusSnapshot`], any other path the
//! `text/plain; version=0.0.4` Prometheus exposition rendered from the
//! shared [`Counters`] plus the request-lifecycle [`Telemetry`] families.
//!
//! # Request-lifecycle telemetry
//!
//! Every served frame's timeline is cut into six stages — decode (body
//! read + parse), admission (quota checks), queue wait (dispatcher
//! hand-off + the engine's bounded queue), route (worker pickup to batch
//! publish), drain (completion buffer to dispatcher delivery), and
//! response write (reply channel + socket write). All six are recorded in
//! the writer thread at write completion, from stamps taken at adjacent
//! points of the one request's timeline, so the per-stage sums partition
//! the independently measured wire-to-wire latency. Requests slower than
//! [`ServeConfig::slow_ms`] are additionally sampled into an optional
//! [`FlightRecorder`] as [`SpanKind::Request`] spans.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bnb_core::network::BnbNetwork;
use bnb_engine::{
    Engine, EngineConfig, EngineHandle, EngineStats, LiveFaultPlan, PlanStatus, ShardDepth,
};
use bnb_obs::{
    render_prometheus, render_prometheus_telemetry, AcceptEvent, Counters, FlightRecorder,
    LatencySummary, Observer, ServeEvent, Span, SpanKind, Stage, Telemetry, TelemetrySnapshot,
    ThrottleEvent,
};
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

use crate::protocol::{
    read_message_timed, write_message, ErrorCode, Message, RecvError, RetryReason,
};

/// Serving-session parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Network size `N = 2^m`; every SUBMIT frame must carry exactly this
    /// many records.
    pub inputs: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Bounded engine queue capacity — also the global in-flight cap.
    pub queue_capacity: usize,
    /// Per-tenant in-flight frame quota.
    pub tenant_quota: usize,
    /// Most simultaneously open client connections.
    pub max_connections: usize,
    /// Socket read timeout; bounds how fast idle readers notice shutdown.
    pub read_timeout: Duration,
    /// Slow-request capture threshold in milliseconds; requests whose
    /// wire-to-wire latency crosses it are counted and — when a
    /// [`FlightRecorder`] is attached via [`Server::with_recorder`] —
    /// sampled as [`SpanKind::Request`] spans. `0` disables capture.
    pub slow_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            inputs: 64,
            workers: 2,
            queue_capacity: 8,
            tenant_quota: 4,
            max_connections: 64,
            read_timeout: Duration::from_millis(100),
            slow_ms: 0,
        }
    }
}

/// Set by the process signal handlers; shared by every [`ServerControl`].
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Routes SIGTERM and SIGINT to a graceful drain of every server in the
/// process. Uses the libc `signal(2)` entry point directly so the crate
/// stays dependency-free; on non-Unix targets this is a no-op.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_sig: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// Shared shutdown switch for one serving session.
#[derive(Debug, Default)]
pub struct ServerControl {
    shutdown: AtomicBool,
}

impl ServerControl {
    /// A control with the shutdown switch off.
    pub fn new() -> Arc<Self> {
        Arc::new(ServerControl::default())
    }

    /// Flips the session into graceful drain.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once a drain was requested — by this control, or by a process
    /// signal installed with [`install_signal_handlers`].
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// What one serving session did, returned by [`Server::serve`].
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Connections accepted (metrics scrapes included).
    pub connections_accepted: u64,
    /// SUBMIT frames received.
    pub frames_submitted: u64,
    /// Frames routed and delivered back to their client.
    pub frames_served: u64,
    /// Frames answered with an explicit RETRY.
    pub retries_issued: u64,
    /// Frames that failed validation or routing (answered with ERROR).
    pub frames_errored: u64,
    /// Responses dropped because the client's reply buffer was full —
    /// always zero unless a client stops reading entirely.
    pub responses_dropped: u64,
    /// Connections that violated the wire protocol.
    pub protocol_errors: u64,
    /// True when the session ended by graceful drain (vs. listener error).
    pub graceful: bool,
    /// Session wall-clock duration.
    pub elapsed_ms: u64,
    /// Batches the engine completed (served + errored).
    pub engine_batches: u64,
    /// Records in successfully routed batches.
    pub engine_records: u64,
    /// Served requests that crossed the [`ServeConfig::slow_ms`]
    /// threshold.
    pub slow_requests: u64,
}

impl ServeReport {
    /// The bounded-buffering ledger: every submitted frame must be
    /// accounted for as served, retried, errored, or dropped.
    pub fn accounted(&self) -> bool {
        self.frames_submitted
            == self.frames_served
                + self.retries_issued
                + self.frames_errored
                + self.responses_dropped
    }
}

/// Session-scoped tallies feeding the [`ServeReport`].
#[derive(Default)]
struct SessionStats {
    connections_accepted: AtomicU64,
    frames_submitted: AtomicU64,
    frames_served: AtomicU64,
    retries_issued: AtomicU64,
    frames_errored: AtomicU64,
    responses_dropped: AtomicU64,
    protocol_errors: AtomicU64,
}

impl SessionStats {
    fn bump(counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Admission state shared by every reader: the global in-flight count and
/// the per-tenant quota slots.
struct Admission {
    inflight: AtomicUsize,
    tenants: Mutex<HashMap<u16, Arc<AtomicUsize>>>,
}

impl Admission {
    fn new() -> Self {
        Admission {
            inflight: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    fn tenant_slot(&self, tenant: u16) -> Arc<AtomicUsize> {
        Arc::clone(
            self.tenants
                .lock()
                .unwrap()
                .entry(tenant)
                .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
        )
    }
}

/// One message travelling to a connection's writer thread, optionally
/// carrying the request's stage stamps so the writer can close the
/// telemetry record at write completion.
struct Reply {
    msg: Message,
    meta: Option<ReplyMeta>,
}

impl Reply {
    fn bare(msg: Message) -> Self {
        Reply { msg, meta: None }
    }
}

/// A served request's accumulated stage stamps, attached to its ROUTED
/// reply. The writer thread records all six stages plus the wire-to-wire
/// latency *after* the socket write completes, so stage sums partition
/// the wire latency for exactly the set of served frames.
struct ReplyMeta {
    tenant: u16,
    request_id: u64,
    records: usize,
    /// Approximate arrival instant (first body byte), reconstructed as
    /// read-completion minus decode time.
    arrival: Instant,
    decode_ns: u64,
    admission_ns: u64,
    /// Dispatcher hand-off plus the engine's bounded-queue wait.
    queue_ns: u64,
    /// Worker pickup to batch publish inside the engine.
    route_ns: u64,
    /// Batch publish to dispatcher delivery.
    drain_ns: u64,
    /// When the dispatcher queued the reply (write stage starts here).
    queued_at: Instant,
}

/// One admitted frame travelling from a reader to the dispatcher.
struct RouteJob {
    tenant: u16,
    request_id: u64,
    arrival: Instant,
    decode_ns: u64,
    admission_ns: u64,
    admitted_at: Instant,
    lines: Vec<Record>,
    reply: mpsc::SyncSender<Reply>,
    tenant_slot: Arc<AtomicUsize>,
}

/// Dispatcher-side record of a submitted batch awaiting its drain.
struct Pending {
    tenant: u16,
    request_id: u64,
    records: usize,
    arrival: Instant,
    decode_ns: u64,
    admission_ns: u64,
    /// Reader admission to engine-queue entry (dispatcher hand-off).
    handoff_ns: u64,
    /// When `try_submit` accepted the frame.
    submitted_at: Instant,
    reply: mpsc::SyncSender<Reply>,
    tenant_slot: Arc<AtomicUsize>,
}

/// Everything a connection or the dispatcher needs from the session,
/// bundled once instead of threaded as a dozen parameters.
struct SessionCtx<'s> {
    cfg: ServeConfig,
    control: &'s ServerControl,
    admission: &'s Admission,
    stats: &'s SessionStats,
    counters: &'s Counters,
    telemetry: &'s Telemetry,
    recorder: Option<&'s FlightRecorder>,
    plan: Option<&'s LiveFaultPlan>,
    active_conns: &'s AtomicUsize,
    engine_stats: &'s (dyn Fn() -> EngineStats + Sync),
}

/// Engine-side queue and latency state in a [`StatusSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStatus {
    /// Batches sitting in the bounded submission queue right now.
    pub queue_depth: usize,
    /// Deepest the bounded submission queue ever got.
    pub queue_high_water: usize,
    /// Deepest the shared slice-task queue got this submission wave.
    pub task_queue_high_water: usize,
    /// Batches fully routed (including failed ones).
    pub batches: u64,
    /// Records in successfully routed batches.
    pub records: u64,
    /// Batches that failed validation or routing.
    pub errors: u64,
    /// Queue-wait latency quantiles (submit to worker pickup).
    pub wait_latency: LatencySummary,
    /// Submit-to-completion latency quantiles.
    pub latency: LatencySummary,
}

/// What the `/status` endpoint and the wire `STATUS` opcode report: one
/// JSON document with the session's uptime, request telemetry, engine
/// queue state, and — when a [`LiveFaultPlan`] is live — per-shard
/// health and fault maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusSnapshot {
    /// Milliseconds since the serving session started.
    pub uptime_ms: u64,
    /// Frames currently between admission and delivery.
    pub inflight: usize,
    /// Client connections currently open.
    pub connections: usize,
    /// Whether the session is draining for shutdown.
    pub draining: bool,
    /// Per-stage and per-tenant request telemetry.
    pub telemetry: TelemetrySnapshot,
    /// Engine queue depths and latency quantiles.
    pub engine: EngineStatus,
    /// Live fabric health, when the session runs under a fault plan.
    pub fabric: Option<PlanStatus>,
}

/// Builds the [`StatusSnapshot`] both operator surfaces serve.
fn build_status(ctx: &SessionCtx<'_>) -> StatusSnapshot {
    let est = (ctx.engine_stats)();
    StatusSnapshot {
        uptime_ms: ctx.telemetry.uptime_ms(),
        inflight: ctx.admission.inflight.load(Ordering::Acquire),
        connections: ctx.active_conns.load(Ordering::Acquire),
        draining: ctx.control.shutdown_requested(),
        telemetry: ctx.telemetry.snapshot(),
        engine: EngineStatus {
            queue_depth: est.queue_depth,
            queue_high_water: est.queue_high_water,
            task_queue_high_water: est.task_queue_high_water,
            batches: est.batches,
            records: est.records,
            errors: est.errors,
            wait_latency: est.wait_latency,
            latency: est.latency,
        },
        fabric: ctx.plan.map(|p| p.status()),
    }
}

/// A long-lived routing server bound to a shared [`Counters`] sink.
pub struct Server<'a> {
    config: ServeConfig,
    counters: &'a Counters,
    fault_plan: Option<&'a LiveFaultPlan>,
    recorder: Option<&'a FlightRecorder>,
}

impl<'a> Server<'a> {
    /// A server that reports serving metrics into `counters`.
    pub fn new(config: ServeConfig, counters: &'a Counters) -> Self {
        Server {
            config,
            counters,
            fault_plan: None,
            recorder: None,
        }
    }

    /// Attaches a [`FlightRecorder`] for slow-request capture: served
    /// requests crossing [`ServeConfig::slow_ms`] are recorded as
    /// [`SpanKind::Request`] spans (request id as `seq`, tenant as `a`,
    /// record count as `b`, wire latency as the duration).
    pub fn with_recorder(mut self, recorder: &'a FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// A server whose engine routes through live fault state: traffic
    /// runs under [`bnb_engine::Engine::run_scrubbed`] against `plan`, so
    /// faults can be injected and cleared *while the session serves* — a
    /// chaos driver holds the same `&plan` and mutates it concurrently.
    /// Detected faults are retried onto healthy fabric shards, the
    /// background scrubber quarantines and restores shards, and clients
    /// only ever see correct frames, explicit `RETRY`s, or explicit
    /// `ERROR`s — never a silently misdelivered frame.
    pub fn with_fault_plan(
        config: ServeConfig,
        counters: &'a Counters,
        plan: &'a LiveFaultPlan,
    ) -> Self {
        Server {
            config,
            counters,
            fault_plan: Some(plan),
            recorder: None,
        }
    }

    /// Runs one serving session on `listener` until `control` requests a
    /// drain (or the listener dies). Resets `counters` at session start so
    /// the `/metrics` endpoint and final report describe this session
    /// only. Joins every thread before returning.
    pub fn serve(
        &self,
        listener: TcpListener,
        control: &Arc<ServerControl>,
    ) -> Result<ServeReport, ServeError> {
        let cfg = self.config;
        let network = BnbNetwork::builder_for(cfg.inputs)
            .map_err(|e| ServeError::Config(format!("bad network size {}: {e}", cfg.inputs)))?
            .build();
        let engine = Engine::with_observer(
            network,
            EngineConfig {
                workers: cfg.workers.max(1),
                queue_capacity: cfg.queue_capacity.max(1),
                shard_depth: ShardDepth::Auto,
            },
            self.counters,
        );
        listener
            .set_nonblocking(true)
            .map_err(ServeError::Listener)?;
        self.counters.reset();

        let stats = SessionStats::default();
        let admission = Admission::new();
        let telemetry = Telemetry::new();
        if cfg.slow_ms > 0 {
            telemetry.set_slow_threshold(Some(Duration::from_millis(cfg.slow_ms)));
        }
        let started = Instant::now();
        let graceful = AtomicBool::new(true);
        let active_conns = AtomicUsize::new(0);

        let session = |handle: &EngineHandle<'_, &Counters>| {
            let engine_stats = || handle.stats();
            let ctx = SessionCtx {
                cfg,
                control,
                admission: &admission,
                stats: &stats,
                counters: self.counters,
                telemetry: &telemetry,
                recorder: self.recorder,
                plan: self.fault_plan,
                active_conns: &active_conns,
                engine_stats: &engine_stats,
            };
            let (job_tx, job_rx) = mpsc::channel::<RouteJob>();
            thread::scope(|s| {
                s.spawn(|| dispatch(handle, job_rx, &ctx));

                // Accept loop, run inline on this thread.
                loop {
                    if control.shutdown_requested() {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            if active_conns.load(Ordering::Acquire) >= cfg.max_connections {
                                drop(stream); // over the connection cap
                                continue;
                            }
                            let conn = SessionStats::bump(&stats.connections_accepted);
                            self.counters.connection_accepted(AcceptEvent { conn });
                            active_conns.fetch_add(1, Ordering::AcqRel);
                            let job_tx = job_tx.clone();
                            let ctx = &ctx;
                            s.spawn(move || {
                                let _ = serve_connection(stream, ctx, job_tx);
                                ctx.active_conns.fetch_sub(1, Ordering::AcqRel);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            graceful.store(false, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                // Dropping the acceptor's sender lets the dispatcher exit
                // once the last reader hangs up and its queue drains.
                drop(job_tx);
            });
            // Every reader and the dispatcher have joined; nothing can be
            // in flight, but close the engine queue deterministically.
            let tail = handle.drain_and_close();
            debug_assert!(tail.is_empty(), "dispatcher left {} batches", tail.len());
            let est = handle.stats();
            (est.batches, est.records)
        };
        let (engine_batches, engine_records) = match self.fault_plan {
            Some(plan) => engine.run_scrubbed(plan, session),
            None => engine.run(session),
        };

        let report = ServeReport {
            connections_accepted: stats.connections_accepted.load(Ordering::Relaxed),
            frames_submitted: stats.frames_submitted.load(Ordering::Relaxed),
            frames_served: stats.frames_served.load(Ordering::Relaxed),
            retries_issued: stats.retries_issued.load(Ordering::Relaxed),
            frames_errored: stats.frames_errored.load(Ordering::Relaxed),
            responses_dropped: stats.responses_dropped.load(Ordering::Relaxed),
            protocol_errors: stats.protocol_errors.load(Ordering::Relaxed),
            graceful: graceful.load(Ordering::SeqCst),
            elapsed_ms: started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            engine_batches,
            engine_records,
            slow_requests: telemetry.snapshot().slow_captured,
        };
        debug_assert!(
            report.accounted(),
            "frame ledger out of balance: {report:?}"
        );
        Ok(report)
    }
}

/// A serving-session failure (distinct from per-connection errors, which
/// are answered on the wire and never abort the session).
#[derive(Debug)]
pub enum ServeError {
    /// The configuration cannot build a network.
    Config(String),
    /// The listener socket failed before the session started.
    Listener(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Listener(e) => write!(f, "listener setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(_) => None,
            ServeError::Listener(e) => Some(e),
        }
    }
}

/// The dispatcher: multiplexes every admitted frame onto the engine's
/// bounded queue and delivers drained batches to their reply channels.
fn dispatch<O: Observer>(
    handle: &EngineHandle<'_, O>,
    jobs: mpsc::Receiver<RouteJob>,
    ctx: &SessionCtx<'_>,
) {
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut disconnected = false;
    loop {
        // Deliver everything the engine has finished.
        while let Some(batch) = handle.try_drain() {
            let Some(p) = pending.remove(&batch.seq) else {
                continue; // unreachable: every submit records a Pending
            };
            // Submit-to-delivery, cut at the engine's own stamps: whatever
            // the engine did not spend queued or routing was spent in the
            // completion buffer waiting for this delivery sweep.
            let drain_total = p
                .submitted_at
                .elapsed()
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            let drain_ns = drain_total.saturating_sub(batch.queue_ns + batch.route_ns);
            let reply = match batch.result {
                Ok(lines) => Reply {
                    msg: Message::Routed {
                        tenant: p.tenant,
                        request_id: p.request_id,
                        sources: lines.iter().map(|r| r.data() as u32).collect(),
                    },
                    meta: Some(ReplyMeta {
                        tenant: p.tenant,
                        request_id: p.request_id,
                        records: p.records,
                        arrival: p.arrival,
                        decode_ns: p.decode_ns,
                        admission_ns: p.admission_ns,
                        queue_ns: p.handoff_ns + batch.queue_ns,
                        route_ns: batch.route_ns,
                        drain_ns,
                        queued_at: Instant::now(),
                    }),
                },
                Err(e) => Reply::bare(Message::Error {
                    tenant: p.tenant,
                    request_id: p.request_id,
                    code: ErrorCode::Route,
                    message: error_chain(&e),
                }),
            };
            let served = matches!(reply.msg, Message::Routed { .. });
            if !served {
                ctx.telemetry.record_error(p.tenant);
            }
            match p.reply.try_send(reply) {
                Ok(()) => {
                    if served {
                        SessionStats::bump(&ctx.stats.frames_served);
                        ctx.counters.frame_served(ServeEvent {
                            tenant: p.tenant,
                            request_id: p.request_id,
                            records: p.records,
                            latency_ns: p.arrival.elapsed().as_nanos().min(u128::from(u64::MAX))
                                as u64,
                        });
                    } else {
                        SessionStats::bump(&ctx.stats.frames_errored);
                    }
                }
                Err(_) => {
                    // Reply buffer full or writer gone: the bounded-buffer
                    // promise wins over delivery. Count it, never block.
                    SessionStats::bump(&ctx.stats.responses_dropped);
                }
            }
            p.tenant_slot.fetch_sub(1, Ordering::AcqRel);
            ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        }

        // Feed the engine everything the readers have admitted.
        loop {
            match jobs.try_recv() {
                Ok(job) => submit_job(handle, job, ctx, &mut pending),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        if disconnected && pending.is_empty() {
            break;
        }

        // Park briefly: long when fully idle, short while batches are in
        // flight so drains are delivered promptly.
        let wait = if pending.is_empty() {
            Duration::from_millis(50)
        } else {
            Duration::from_micros(200)
        };
        match jobs.recv_timeout(wait) {
            Ok(job) => submit_job(handle, job, ctx, &mut pending),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => disconnected = true,
        }
    }
}

fn submit_job<O: Observer>(
    handle: &EngineHandle<'_, O>,
    job: RouteJob,
    ctx: &SessionCtx<'_>,
    pending: &mut HashMap<u64, Pending>,
) {
    let records = job.lines.len();
    match handle.try_submit(job.lines) {
        Ok(seq) => {
            // The admission cap keeps `inflight <= queue_capacity`, so the
            // engine queue had room; both slots are released at delivery.
            let handoff_ns = job
                .admitted_at
                .elapsed()
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            pending.insert(
                seq,
                Pending {
                    tenant: job.tenant,
                    request_id: job.request_id,
                    records,
                    arrival: job.arrival,
                    decode_ns: job.decode_ns,
                    admission_ns: job.admission_ns,
                    handoff_ns,
                    submitted_at: Instant::now(),
                    reply: job.reply,
                    tenant_slot: job.tenant_slot,
                },
            );
        }
        Err(err) => {
            // Defensive: admission should make this unreachable. Push the
            // frame back rather than lose it.
            let reason = if err.is_closed() {
                RetryReason::Draining
            } else {
                RetryReason::QueueFull
            };
            SessionStats::bump(&ctx.stats.retries_issued);
            ctx.counters.retry_issued(ThrottleEvent {
                tenant: job.tenant,
                reason: reason.as_u8(),
            });
            ctx.telemetry.record_retry(job.tenant);
            let _ = job.reply.try_send(Reply::bare(Message::Retry {
                tenant: job.tenant,
                request_id: job.request_id,
                reason,
            }));
            job.tenant_slot.fetch_sub(1, Ordering::AcqRel);
            ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Renders an error with its full `source()` chain.
fn error_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cur = err.source();
    while let Some(e) = cur {
        out.push_str(": ");
        out.push_str(&e.to_string());
        cur = e.source();
    }
    out
}

/// Handles one accepted connection: sniffs HTTP operator requests, then
/// runs the binary-protocol reader loop with a paired writer thread.
fn serve_connection(
    stream: TcpStream,
    ctx: &SessionCtx<'_>,
    job_tx: mpsc::Sender<RouteJob>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(ctx.cfg.read_timeout))?;
    if sniff_http(&stream)? {
        return serve_http(stream, ctx);
    }

    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    writer.set_write_timeout(Some(Duration::from_secs(5))).ok();

    // Reply buffer: big enough for every frame this connection could have
    // in flight plus a burst of RETRYs; a client that stops reading
    // entirely sees drops counted in `responses_dropped`, never unbounded
    // server-side buffering.
    let (reply_tx, reply_rx) =
        mpsc::sync_channel::<Reply>(ctx.cfg.queue_capacity + ctx.cfg.tenant_quota + 4);

    thread::scope(|s| {
        let writer_handle = s.spawn(move || {
            for reply in reply_rx.iter() {
                if write_message(&mut writer, &reply.msg).is_err() {
                    break; // drain remaining sends as disconnects
                }
                // The request is wire-complete only now: close its
                // telemetry record here, in the one thread that knows the
                // write finished, so stage sums and the independently
                // measured wire latency describe the same request set.
                if let Some(meta) = reply.meta {
                    let wire_ns =
                        meta.arrival.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    let write_ns = meta
                        .queued_at
                        .elapsed()
                        .as_nanos()
                        .min(u128::from(u64::MAX)) as u64;
                    let t = ctx.telemetry;
                    t.record_stage(Stage::Decode, meta.decode_ns);
                    t.record_stage(Stage::Admission, meta.admission_ns);
                    t.record_stage(Stage::QueueWait, meta.queue_ns);
                    t.record_stage(Stage::Route, meta.route_ns);
                    t.record_stage(Stage::Drain, meta.drain_ns);
                    t.record_stage(Stage::Write, write_ns);
                    t.record_request(meta.tenant, (meta.records as u64) * 4, wire_ns);
                    if t.note_if_slow(wire_ns) {
                        if let Some(rec) = ctx.recorder {
                            rec.record(Span {
                                kind: SpanKind::Request,
                                ts_ns: rec.now_ns(),
                                dur_ns: wire_ns,
                                lane: 0,
                                seq: meta.request_id,
                                a: u64::from(meta.tenant),
                                b: meta.records as u64,
                                c: 0,
                                ok: true,
                            });
                        }
                    }
                }
            }
            let _ = writer.flush();
        });

        let result = reader_loop(&mut reader, ctx, &job_tx, &reply_tx);

        // Let the writer finish any responses still flowing from the
        // dispatcher (its sender clones live inside Pending entries).
        drop(reply_tx);
        drop(job_tx);
        let _ = writer_handle.join();
        result
    })
}

fn reader_loop(
    reader: &mut TcpStream,
    ctx: &SessionCtx<'_>,
    job_tx: &mpsc::Sender<RouteJob>,
    reply_tx: &mpsc::SyncSender<Reply>,
) -> io::Result<()> {
    loop {
        let (msg, decode_ns) = match read_message_timed(reader) {
            Ok(Some(timed)) => timed,
            Ok(None) => return Ok(()), // clean hangup
            Err(RecvError::IdleTimeout) => {
                if ctx.control.shutdown_requested() {
                    return Ok(());
                }
                continue;
            }
            Err(RecvError::Wire(e)) => {
                SessionStats::bump(&ctx.stats.protocol_errors);
                let _ = reply_tx.try_send(Reply::bare(Message::Error {
                    tenant: 0,
                    request_id: 0,
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                }));
                return Ok(());
            }
            Err(RecvError::Io(e)) => return Err(e),
        };
        match msg {
            Message::Submit {
                tenant,
                request_id,
                dests,
            } => {
                // Arrival ≈ read completion minus the timed body read, so
                // idle time between frames never counts against a request.
                let received_at = Instant::now();
                let arrival = received_at
                    .checked_sub(Duration::from_nanos(decode_ns))
                    .unwrap_or(received_at);
                SessionStats::bump(&ctx.stats.frames_submitted);
                admit(
                    tenant,
                    request_id,
                    dests,
                    received_at,
                    decode_ns,
                    arrival,
                    ctx,
                    job_tx,
                    reply_tx,
                );
            }
            Message::Status { tenant, request_id } => {
                // Answered from the reader; never enters the frame ledger.
                let json = serde_json::to_string(&build_status(ctx))
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                let _ = reply_tx.try_send(Reply::bare(Message::StatusReport {
                    tenant,
                    request_id,
                    json,
                }));
            }
            Message::Shutdown { .. } => ctx.control.trigger_shutdown(),
            // Server-to-client opcodes arriving at the server are a
            // protocol violation.
            Message::Routed { .. }
            | Message::Retry { .. }
            | Message::Error { .. }
            | Message::StatusReport { .. } => {
                SessionStats::bump(&ctx.stats.protocol_errors);
                let _ = reply_tx.try_send(Reply::bare(Message::Error {
                    tenant: msg.tenant(),
                    request_id: msg.request_id(),
                    code: ErrorCode::Protocol,
                    message: format!("client sent server-only opcode 0x{:02x}", msg.opcode()),
                }));
                return Ok(());
            }
        }
    }
}

/// Admission control for one SUBMIT: draining check, per-tenant quota,
/// then the global in-flight cap. Refusals answer with a *blocking* send
/// of RETRY — TCP backpressure is the flow control for rejections.
#[allow(clippy::too_many_arguments)]
fn admit(
    tenant: u16,
    request_id: u64,
    dests: Vec<u32>,
    received_at: Instant,
    decode_ns: u64,
    arrival: Instant,
    ctx: &SessionCtx<'_>,
    job_tx: &mpsc::Sender<RouteJob>,
    reply_tx: &mpsc::SyncSender<Reply>,
) {
    let retry = |reason: RetryReason| {
        SessionStats::bump(&ctx.stats.retries_issued);
        ctx.counters.retry_issued(ThrottleEvent {
            tenant,
            reason: reason.as_u8(),
        });
        ctx.telemetry.record_retry(tenant);
        let _ = reply_tx.send(Reply::bare(Message::Retry {
            tenant,
            request_id,
            reason,
        }));
    };

    if ctx.control.shutdown_requested() {
        retry(RetryReason::Draining);
        return;
    }
    let tenant_slot = ctx.admission.tenant_slot(tenant);
    if tenant_slot.fetch_add(1, Ordering::AcqRel) >= ctx.cfg.tenant_quota {
        tenant_slot.fetch_sub(1, Ordering::AcqRel);
        retry(RetryReason::TenantQuota);
        return;
    }
    if ctx.admission.inflight.fetch_add(1, Ordering::AcqRel) >= ctx.cfg.queue_capacity {
        ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        tenant_slot.fetch_sub(1, Ordering::AcqRel);
        retry(RetryReason::QueueFull);
        return;
    }

    let lines: Vec<Record> = dests
        .iter()
        .enumerate()
        .map(|(i, &d)| Record::new(d as usize, i as u64))
        .collect();
    let admission_ns = received_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let job = RouteJob {
        tenant,
        request_id,
        arrival,
        decode_ns,
        admission_ns,
        admitted_at: Instant::now(),
        lines,
        reply: reply_tx.clone(),
        tenant_slot,
    };
    if let Err(mpsc::SendError(job)) = job_tx.send(job) {
        // Dispatcher already gone: the session is past its drain point.
        ctx.admission.inflight.fetch_sub(1, Ordering::AcqRel);
        job.tenant_slot.fetch_sub(1, Ordering::AcqRel);
        retry(RetryReason::Draining);
    }
}

/// True when the connection's first bytes look like an HTTP GET.
fn sniff_http(stream: &TcpStream) -> io::Result<bool> {
    let mut first = [0u8; 4];
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        match stream.peek(&mut first) {
            Ok(4) => return Ok(&first == b"GET "),
            Ok(_) => {
                if Instant::now() >= deadline {
                    return Ok(false);
                }
                thread::sleep(Duration::from_millis(1));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Answers one HTTP operator request, then closes: `/status` with the
/// JSON [`StatusSnapshot`], any other path with the Prometheus 0.0.4
/// exposition of the shared counters plus the telemetry families.
fn serve_http(mut stream: TcpStream, ctx: &SessionCtx<'_>) -> io::Result<()> {
    // Consume the request head (bounded) so the peer sees a clean close.
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    while head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let path = http_path(&head);
    let (content_type, body) = if path.starts_with("/status") {
        let json = serde_json::to_string(&build_status(ctx))
            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
        ("application/json", json)
    } else {
        let mut body = render_prometheus(&ctx.counters.snapshot());
        body.push_str(&render_prometheus_telemetry(&ctx.telemetry.snapshot()));
        ("text/plain; version=0.0.4", body)
    };
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        content_type,
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// The request path from an HTTP request head (`GET <path> HTTP/1.1`);
/// empty when the head is malformed, which falls through to `/metrics`.
fn http_path(head: &[u8]) -> &str {
    let line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    std::str::from_utf8(line)
        .ok()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("")
}
