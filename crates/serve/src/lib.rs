//! bnb-serve: a long-lived routing service for the BNB network.
//!
//! The paper's self-routing property makes the network a natural shared
//! fabric: a frame's route is determined entirely by its own destination
//! tags, so frames from unrelated clients can be multiplexed onto one
//! engine with no cross-frame coordination. This crate builds that
//! service on `std::net` alone — no async runtime:
//!
//! - [`protocol`]: a length-prefixed binary wire format (version byte,
//!   opcode, tenant id, request id) whose decoder is total — malformed,
//!   truncated, or oversized input yields a typed
//!   [`protocol::WireError`], never a panic. See DESIGN.md §14.
//! - [`server`]: a threaded server multiplexing many connections onto
//!   one [`bnb_engine::Engine`] submit/drain queue, with per-tenant
//!   in-flight quotas and a global cap equal to the engine's bounded
//!   queue. Overload is answered with explicit `RETRY` responses — the
//!   server never buffers beyond its declared bounds. SIGTERM/SIGINT (or
//!   a wire `SHUTDOWN`) triggers a graceful drain: in-flight frames are
//!   delivered, threads join deterministically, and the session's
//!   [`server::ServeReport`] balances its frame ledger. The same
//!   listener doubles as the operator surface: HTTP `GET /metrics`
//!   answers with the Prometheus exposition of the shared
//!   [`bnb_obs::Counters`] plus per-stage/per-tenant request telemetry,
//!   `GET /status` (and the wire `STATUS` opcode) with a JSON
//!   [`server::StatusSnapshot`] covering uptime, tenant windows, engine
//!   queue depths, and live fabric health.
//! - [`loadgen`]: an open/closed-loop load generator that verifies every
//!   routed frame against the submitted permutation, optionally resubmits
//!   RETRYed frames, and reports latency percentiles (first-attempt and
//!   retry-to-served) plus per-tenant breakdowns from shared
//!   [`bnb_obs::AtomicHistogram`]s.

pub mod auth;
mod conn;
pub mod loadgen;
pub mod protocol;
mod reactor;
pub mod server;
mod sys;

pub use auth::TenantKeys;
pub use loadgen::{
    run_loadgen, run_sweep, LatencyPercentiles, LoadMode, LoadgenConfig, LoadgenReport,
    SweepPoint, SweepReport, TenantLoad,
};
pub use protocol::{ErrorCode, FrameAssembler, Message, RecvError, RetryReason, WireError};
pub use server::{
    install_signal_handlers, EngineStatus, ServeConfig, ServeError, ServeReport, Server,
    ServerControl, StatusSnapshot, WindowStatus,
};
