//! Error types for netlist construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors raised by netlist evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GateError {
    /// The number of provided input values does not match the number of
    /// declared inputs.
    InputCountMismatch {
        /// Declared inputs in the netlist.
        expected: usize,
        /// Values provided to `eval`.
        actual: usize,
    },
    /// The netlist declares no outputs, so evaluation would be meaningless.
    NoOutputs,
    /// An edit addressed a net that does not exist.
    UnknownNet {
        /// The requested net index.
        net: usize,
        /// Nets in the netlist.
        nets: usize,
    },
    /// An edit would make a gate read a net at or after its own position,
    /// breaking the append-only acyclicity invariant.
    ForwardReference {
        /// The gate being edited.
        net: usize,
        /// The offending fan-in net.
        fanin: usize,
    },
    /// An edit tried to replace a primary input (or turn a gate into one),
    /// which would desynchronise the declared input order.
    ReplacesInput {
        /// The gate involved.
        net: usize,
    },
    /// Structural verification found the declared inputs out of sync with
    /// the `Input` gates actually present.
    InputOrderMismatch {
        /// Inputs declared via [`crate::netlist::Netlist::input`].
        declared: usize,
        /// `Input` gates found in the gate list.
        found: usize,
    },
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GateError::InputCountMismatch { expected, actual } => {
                write!(
                    f,
                    "netlist has {expected} inputs but {actual} values were provided"
                )
            }
            GateError::NoOutputs => write!(f, "netlist declares no outputs"),
            GateError::UnknownNet { net, nets } => {
                write!(f, "net n{net} does not exist (netlist has {nets} nets)")
            }
            GateError::ForwardReference { net, fanin } => {
                write!(
                    f,
                    "gate n{net} may not read n{fanin}: fan-ins must precede the gate"
                )
            }
            GateError::ReplacesInput { net } => {
                write!(f, "n{net}: primary inputs cannot be edited")
            }
            GateError::InputOrderMismatch { declared, found } => {
                write!(
                    f,
                    "netlist declares {declared} inputs but contains {found} Input gates"
                )
            }
        }
    }
}

impl Error for GateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = GateError::InputCountMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("3 inputs"));
        assert!(GateError::NoOutputs.to_string().contains("no outputs"));
        assert!(GateError::UnknownNet { net: 9, nets: 4 }
            .to_string()
            .contains("n9"));
        assert!(GateError::ForwardReference { net: 2, fanin: 5 }
            .to_string()
            .contains("n5"));
        assert!(GateError::ReplacesInput { net: 0 }
            .to_string()
            .contains("primary inputs"));
        assert!(GateError::InputOrderMismatch {
            declared: 4,
            found: 3
        }
        .to_string()
        .contains("4 inputs"));
    }
}
