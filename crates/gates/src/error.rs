//! Error types for netlist construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors raised by netlist evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GateError {
    /// The number of provided input values does not match the number of
    /// declared inputs.
    InputCountMismatch {
        /// Declared inputs in the netlist.
        expected: usize,
        /// Values provided to `eval`.
        actual: usize,
    },
    /// The netlist declares no outputs, so evaluation would be meaningless.
    NoOutputs,
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GateError::InputCountMismatch { expected, actual } => {
                write!(
                    f,
                    "netlist has {expected} inputs but {actual} values were provided"
                )
            }
            GateError::NoOutputs => write!(f, "netlist declares no outputs"),
        }
    }
}

impl Error for GateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = GateError::InputCountMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("3 inputs"));
        assert!(GateError::NoOutputs.to_string().contains("no outputs"));
    }
}
