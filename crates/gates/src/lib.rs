//! Gate-level netlist substrate for the BNB reproduction.
//!
//! The paper's evaluation (§5) counts abstract hardware units — 2×2 switches
//! (`C_SW`) and one-bit function nodes (`C_FN`) — and abstract delays
//! (`D_SW`, `D_FN`). This crate replaces the authors' implicit hardware with
//! an explicit, simulatable one:
//!
//! - [`netlist::Netlist`] — an append-only combinational netlist of boolean
//!   gates, evaluated in construction order (acyclic by construction).
//! - [`delay`] — arrival-time / critical-path analysis under a configurable
//!   per-gate delay model.
//! - [`components`] — netlist builders for every hardware component the
//!   paper describes: the function node of Fig. 5, the 2×2 switch, the
//!   tree arbiter `A(p)`, the splitter `sp(p)` of Fig. 4, the bit-sorter
//!   network, and the complete BNB network (control plane + data path) for
//!   small `N`.
//! - [`pipeline`] — the clocked, register-per-column BNB pipeline
//!   (eq. (7) in hardware).
//! - the `optimize` module — constant folding, algebraic identities and
//!   dead-gate elimination; [`equivalence`] certifies its output.
//! - [`event_sim`] — event-driven transient simulation (settling times,
//!   glitches), a dynamic second opinion on the static [`delay`] analysis.
//! - [`export`] — Graphviz DOT and structural Verilog emission.
//!
//! The gate-level BNB is cross-checked against the behavioural simulator in
//! `bnb-core`: both must route every permutation identically. That makes the
//! behavioural cost/delay accounting (used for the Table 1/2 reproduction)
//! trustworthy.
//!
//! # Example
//!
//! ```
//! use bnb_gates::netlist::Netlist;
//! use bnb_gates::components::function_node;
//!
//! let mut nl = Netlist::new();
//! let x1 = nl.input("x1");
//! let x2 = nl.input("x2");
//! let zd = nl.input("zd");
//! let node = function_node(&mut nl, x1, x2, zd);
//! nl.output("zu", node.zu);
//! // type-1 pair (0,0): zu = x1 xor x2 = 0.
//! let out = nl.eval(&[false, false, true]).unwrap();
//! assert!(!out[0]);
//! ```

pub mod components;
pub mod delay;
pub mod equivalence;
pub mod error;
pub mod event_sim;
pub mod export;
pub mod netlist;
pub mod optimize;
pub mod pipeline;

pub use components::{
    bnb_network_faultable, BnbNetlist, BnbNetlistError, FunctionNodeOutputs, GateFault,
    GateFaultKind, SplitterOutputs,
};
pub use delay::{CriticalPath, DelayModel};
pub use error::GateError;
pub use netlist::{GateKind, Net, Netlist};
pub use optimize::{optimize, OptimizeStats};
