//! Combinational equivalence checking between two netlists.
//!
//! Used to certify the optimizer and to compare independently-built
//! implementations of the same component (e.g. a hand-minimized splitter
//! against the generated one). Exhaustive up to 20 inputs; beyond that, a
//! deterministic pseudo-random stimulus sweep (self-seeded xorshift, no
//! external RNG dependency).

use serde::{Deserialize, Serialize};

use crate::error::GateError;
use crate::netlist::Netlist;

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EquivVerdict {
    /// No distinguishing input was found.
    Equivalent,
    /// The two netlists differ in interface (input/output counts).
    InterfaceMismatch {
        /// `(inputs, outputs)` of the first netlist.
        a: (usize, usize),
        /// `(inputs, outputs)` of the second.
        b: (usize, usize),
    },
    /// A distinguishing stimulus.
    Mismatch {
        /// The input vector exposing the difference.
        inputs: Vec<bool>,
        /// First netlist's outputs.
        a: Vec<bool>,
        /// Second netlist's outputs.
        b: Vec<bool>,
    },
}

impl EquivVerdict {
    /// `true` for [`EquivVerdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivVerdict::Equivalent)
    }
}

fn interfaces_match(a: &Netlist, b: &Netlist) -> Option<EquivVerdict> {
    if a.input_count() != b.input_count() || a.output_count() != b.output_count() {
        return Some(EquivVerdict::InterfaceMismatch {
            a: (a.input_count(), a.output_count()),
            b: (b.input_count(), b.output_count()),
        });
    }
    None
}

fn compare_on(a: &Netlist, b: &Netlist, bits: &[bool]) -> Result<Option<EquivVerdict>, GateError> {
    let ra = a.eval(bits)?;
    let rb = b.eval(bits)?;
    if ra != rb {
        return Ok(Some(EquivVerdict::Mismatch {
            inputs: bits.to_vec(),
            a: ra,
            b: rb,
        }));
    }
    Ok(None)
}

/// Exhaustive equivalence check over all `2^inputs` stimulus vectors.
///
/// # Errors
///
/// Propagates [`GateError`]s from evaluation (e.g. a netlist without
/// outputs).
///
/// # Panics
///
/// Panics if the netlists have more than 20 inputs — use
/// [`check_random`] instead.
pub fn check_exhaustive(a: &Netlist, b: &Netlist) -> Result<EquivVerdict, GateError> {
    if let Some(v) = interfaces_match(a, b) {
        return Ok(v);
    }
    let n = a.input_count();
    assert!(
        n <= 20,
        "exhaustive check limited to 20 inputs; use check_random"
    );
    for pattern in 0..(1u64 << n) {
        let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
        if let Some(v) = compare_on(a, b, &bits)? {
            return Ok(v);
        }
    }
    Ok(EquivVerdict::Equivalent)
}

/// Randomized equivalence check: `trials` deterministic pseudo-random
/// stimulus vectors derived from `seed`. A returned
/// [`EquivVerdict::Equivalent`] means "no difference found", not a proof.
///
/// # Errors
///
/// Propagates [`GateError`]s from evaluation.
pub fn check_random(
    a: &Netlist,
    b: &Netlist,
    trials: usize,
    seed: u64,
) -> Result<EquivVerdict, GateError> {
    if let Some(v) = interfaces_match(a, b) {
        return Ok(v);
    }
    let n = a.input_count();
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..trials {
        let bits: Vec<bool> = (0..n).map(|_| next() & 1 == 1).collect();
        if let Some(v) = compare_on(a, b, &bits)? {
            return Ok(v);
        }
    }
    Ok(EquivVerdict::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{bit_sorter, bnb_network};
    use crate::netlist::Net;
    use crate::optimize::optimize;

    fn bsn_netlist(k: usize) -> Netlist {
        let n = 1usize << k;
        let mut nl = Netlist::new();
        let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
        let outs = bit_sorter(&mut nl, &ins);
        for (j, &o) in outs.iter().enumerate() {
            nl.output(format!("o{j}"), o);
        }
        nl
    }

    #[test]
    fn optimizer_output_is_certified_equivalent() {
        for k in [2usize, 3, 4] {
            let nl = bsn_netlist(k);
            let (opt, _) = optimize(&nl);
            assert!(
                check_exhaustive(&nl, &opt).unwrap().is_equivalent(),
                "BSN({k}) optimization must be exhaustive-equivalent"
            );
        }
    }

    #[test]
    fn a_seeded_bug_is_caught_with_a_witness() {
        let good = bsn_netlist(3);
        // An extra output: interface mismatch.
        let with_extra = {
            let mut nl = bsn_netlist(3);
            let (name0, net0) = nl.outputs()[0].clone();
            let inv = nl.not(net0);
            nl.output(format!("{name0}_x"), inv);
            nl
        };
        assert!(matches!(
            check_exhaustive(&good, &with_extra).unwrap(),
            EquivVerdict::InterfaceMismatch { .. }
        ));
        // Functional mismatch: compare the BSN against constant-false
        // outputs.
        let mut zeros = Netlist::new();
        for j in 0..8 {
            let _ = zeros.input(format!("s{j}"));
        }
        let f = zeros.constant(false);
        for j in 0..8 {
            zeros.output(format!("o{j}"), f);
        }
        match check_exhaustive(&good, &zeros).unwrap() {
            EquivVerdict::Mismatch { inputs, a, b } => {
                assert_eq!(inputs.len(), 8);
                assert_ne!(a, b);
                assert!(b.iter().all(|&x| !x));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn random_check_agrees_with_exhaustive_on_the_bnb() {
        let net = bnb_network(2, 1);
        let (opt, _) = optimize(net.netlist());
        assert!(check_random(net.netlist(), &opt, 200, 42)
            .unwrap()
            .is_equivalent());
        assert!(check_exhaustive(net.netlist(), &opt)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn random_check_finds_gross_differences_quickly() {
        let a = bsn_netlist(2);
        let mut b = Netlist::new();
        for j in 0..4 {
            let _ = b.input(format!("s{j}"));
        }
        let t = b.constant(true);
        for j in 0..4 {
            b.output(format!("o{j}"), t);
        }
        assert!(matches!(
            check_random(&a, &b, 50, 7).unwrap(),
            EquivVerdict::Mismatch { .. }
        ));
    }
}
