//! Cycle-accurate pipelined BNB hardware: the combinational network of
//! [`crate::components::bnb_network`] cut into one netlist per switch
//! column, with a register bank between columns.
//!
//! This is the synchronous circuit a hardware team would actually build:
//! a new word batch can be clocked in every cycle, each batch advances one
//! column per cycle, and a batch's outputs appear `m(m+1)/2` cycles after
//! injection (paper eq. (7)). The gate-level pipeline is cross-checked
//! against both the flat combinational netlist and the behavioural timing
//! model in `bnb-sim`.

use bnb_topology::bitops::unshuffle;
use bnb_topology::record::Record;

use crate::components::{splitter_controls, switch_bank, BnbNetlistError};
use crate::netlist::{Net, Netlist};

/// One register-bounded switch column of the pipelined BNB network.
#[derive(Debug, Clone)]
pub struct ColumnCircuit {
    /// Main-network stage this column belongs to.
    pub main_stage: usize,
    /// Internal stage within the nested networks.
    pub internal_stage: usize,
    /// Combinational logic of the column: `N·q` inputs to `N·q` outputs,
    /// wiring to the next column already applied.
    pub netlist: Netlist,
}

/// A clocked, fully pipelined gate-level BNB network.
///
/// # Example
///
/// ```
/// use bnb_gates::pipeline::PipelinedBnb;
/// use bnb_topology::record::Record;
///
/// let mut pipe = PipelinedBnb::new(2, 2);
/// assert_eq!(pipe.depth(), 3);
/// let batch = vec![
///     Record::new(2, 0), Record::new(0, 1),
///     Record::new(3, 2), Record::new(1, 3),
/// ];
/// let mut out = None;
/// for cycle in 0.. {
///     let injected = if cycle == 0 { Some(batch.as_slice()) } else { None };
///     out = pipe.clock(injected)?;
///     if out.is_some() { break; }
/// }
/// assert_eq!(out.unwrap()[2], Record::new(2, 0));
/// # Ok::<(), bnb_gates::components::BnbNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedBnb {
    m: usize,
    w: usize,
    columns: Vec<ColumnCircuit>,
    /// `registers[s]` holds the bits sitting after column `s`, or `None`
    /// when that pipeline slot is empty (bubbles).
    registers: Vec<Option<Vec<bool>>>,
}

impl PipelinedBnb {
    /// Builds the pipelined network for `2^m` inputs and `w` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `w > 63`.
    pub fn new(m: usize, w: usize) -> Self {
        assert!(m >= 1, "network needs at least 2 inputs");
        assert!(w <= 63, "data width is limited to 63 bits");
        let n = 1usize << m;
        let q = m + w;
        let mut columns = Vec::new();
        for main_stage in 0..m {
            let k = m - main_stage;
            for internal in 0..k {
                let mut nl = Netlist::new();
                let lines: Vec<Vec<Net>> = (0..n)
                    .map(|j| (0..q).map(|b| nl.input(format!("l{j}.b{b}"))).collect())
                    .collect();
                let box_size = 1usize << (k - internal);
                let mut next: Vec<Vec<Net>> = Vec::with_capacity(n);
                for start in (0..n).step_by(box_size) {
                    let span = &lines[start..start + box_size];
                    let bits: Vec<Net> = span.iter().map(|word| word[main_stage]).collect();
                    let controls = splitter_controls(&mut nl, &bits);
                    next.extend(switch_bank(&mut nl, &controls, span));
                }
                // Apply the wiring that follows this column, so register s
                // feeds column s+1 positionally.
                let wired: Vec<Vec<Net>> = if internal + 1 < k {
                    let nested = 1usize << k;
                    let mut wired = vec![Vec::new(); n];
                    for (j, word) in next.into_iter().enumerate() {
                        let base = j & !(nested - 1);
                        let local = j & (nested - 1);
                        wired[base | unshuffle(k - internal, k, local)] = word;
                    }
                    wired
                } else if main_stage + 1 < m {
                    let mut wired = vec![Vec::new(); n];
                    for (j, word) in next.into_iter().enumerate() {
                        wired[unshuffle(k, m, j)] = word;
                    }
                    wired
                } else {
                    next
                };
                for (j, word) in wired.iter().enumerate() {
                    for (b, &net) in word.iter().enumerate() {
                        nl.output(format!("o{j}.b{b}"), net);
                    }
                }
                columns.push(ColumnCircuit {
                    main_stage,
                    internal_stage: internal,
                    netlist: nl,
                });
            }
        }
        let depth = columns.len();
        PipelinedBnb {
            m,
            w,
            columns,
            registers: vec![None; depth],
        }
    }

    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Network width.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// Pipeline depth in cycles: `m(m+1)/2` columns.
    pub fn depth(&self) -> usize {
        self.columns.len()
    }

    /// The per-column circuits (for inspection / export).
    pub fn columns(&self) -> &[ColumnCircuit] {
        &self.columns
    }

    /// Per-column gate censuses — the area budget of each pipeline stage.
    /// Early columns host the big arbiters (large splitters), late columns
    /// are mux-only, which is exactly the profile paper eq. (8) predicts
    /// for delay.
    pub fn column_census(&self) -> Vec<crate::netlist::GateCensus> {
        self.columns.iter().map(|c| c.netlist.census()).collect()
    }

    /// Batches currently in flight.
    pub fn occupancy(&self) -> usize {
        self.registers.iter().filter(|r| r.is_some()).count()
    }

    /// Drops all in-flight batches.
    pub fn flush(&mut self) {
        for r in &mut self.registers {
            *r = None;
        }
    }

    fn encode(&self, records: &[Record]) -> Result<Vec<bool>, BnbNetlistError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(BnbNetlistError::RecordCount {
                expected: n,
                actual: records.len(),
            });
        }
        let mut bits = Vec::with_capacity(n * (self.m + self.w));
        for r in records {
            if r.dest() >= n {
                return Err(BnbNetlistError::DestinationTooWide { dest: r.dest(), n });
            }
            if self.w < 64 && r.data() >> self.w != 0 {
                return Err(BnbNetlistError::DataTooWide {
                    data: r.data(),
                    w: self.w,
                });
            }
            #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
            for k in 0..self.m {
                bits.push((r.dest() >> (self.m - 1 - k)) & 1 == 1);
            }
            for t in 0..self.w {
                bits.push((r.data() >> t) & 1 == 1);
            }
        }
        Ok(bits)
    }

    fn decode(&self, bits: &[bool]) -> Vec<Record> {
        let n = self.inputs();
        let q = self.m + self.w;
        (0..n)
            .map(|j| {
                let word = &bits[j * q..(j + 1) * q];
                let mut dest = 0usize;
                #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
                for k in 0..self.m {
                    dest = (dest << 1) | usize::from(word[k]);
                }
                let mut data = 0u64;
                for t in 0..self.w {
                    if word[self.m + t] {
                        data |= 1 << t;
                    }
                }
                Record::new(dest, data)
            })
            .collect()
    }

    /// Advances one clock cycle: optionally injects a new batch at the
    /// first column, shifts every in-flight batch one column forward, and
    /// returns the batch (if any) that drained from the last register.
    ///
    /// # Errors
    ///
    /// Returns a [`BnbNetlistError`] if the injected batch is malformed;
    /// the pipeline state is unchanged in that case.
    pub fn clock(
        &mut self,
        inject: Option<&[Record]>,
    ) -> Result<Option<Vec<Record>>, BnbNetlistError> {
        let encoded = inject.map(|records| self.encode(records)).transpose()?;
        let depth = self.columns.len();
        // Register s holds the bits that have completed column s. On the
        // clock edge, register depth-1 drains, every register s-1 moves
        // through column s into register s, and the injected batch moves
        // through column 0 into register 0.
        let drained = self.registers[depth - 1].take();
        for s in (1..depth).rev() {
            let moved = self.registers[s - 1].take();
            self.registers[s] = moved.map(|bits| {
                self.columns[s]
                    .netlist
                    .eval(&bits)
                    .expect("well-formed column netlist")
            });
        }
        self.registers[0] = encoded.map(|bits| {
            self.columns[0]
                .netlist
                .eval(&bits)
                .expect("well-formed column netlist")
        });
        Ok(drained.map(|bits| self.decode(&bits)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn depth_matches_eq7() {
        for m in 1..=4usize {
            assert_eq!(PipelinedBnb::new(m, 0).depth(), m * (m + 1) / 2);
        }
    }

    #[test]
    fn single_batch_emerges_after_depth_cycles() {
        let mut pipe = PipelinedBnb::new(3, 4);
        let p = Permutation::try_from(vec![5, 1, 7, 2, 0, 6, 4, 3]).unwrap();
        let batch = records_for_permutation(&p);
        let mut outputs = Vec::new();
        for cycle in 0..20 {
            let inject = if cycle == 0 {
                Some(batch.as_slice())
            } else {
                None
            };
            if let Some(out) = pipe.clock(inject).unwrap() {
                outputs.push((cycle, out));
            }
        }
        assert_eq!(outputs.len(), 1);
        let (cycle, out) = &outputs[0];
        assert_eq!(*cycle, pipe.depth(), "latency must be the column count");
        assert!(all_delivered(out));
    }

    #[test]
    fn back_to_back_batches_emerge_every_cycle() {
        let mut pipe = PipelinedBnb::new(2, 3);
        let mut rng = StdRng::seed_from_u64(50);
        let batches: Vec<Vec<Record>> = (0..6)
            .map(|_| records_for_permutation(&Permutation::random(4, &mut rng)))
            .collect();
        let mut drained = Vec::new();
        for cycle in 0..(6 + pipe.depth() + 2) {
            let inject = batches.get(cycle).map(Vec::as_slice);
            if let Some(out) = pipe.clock(inject).unwrap() {
                drained.push((cycle, out));
            }
        }
        assert_eq!(drained.len(), 6);
        // One batch per cycle at steady state, in order.
        for (i, (cycle, out)) in drained.iter().enumerate() {
            assert_eq!(*cycle, i + pipe.depth());
            assert!(all_delivered(out), "batch {i}");
            // FIFO order: batch i's payloads match the i-th offered batch.
            let mut expected: Vec<u64> = batches[i].iter().map(Record::data).collect();
            expected.sort_unstable();
            let mut got: Vec<u64> = out.iter().map(Record::data).collect();
            got.sort_unstable();
            assert_eq!(got, expected, "batch {i} contents");
        }
    }

    #[test]
    fn bubbles_flow_through() {
        let mut pipe = PipelinedBnb::new(2, 3);
        let p = Permutation::identity(4);
        let batch = records_for_permutation(&p);
        // Inject, wait, inject again with a gap.
        let mut outputs = 0;
        for cycle in 0..12 {
            let inject = if cycle == 0 || cycle == 4 {
                Some(batch.as_slice())
            } else {
                None
            };
            if pipe.clock(inject).unwrap().is_some() {
                outputs += 1;
            }
        }
        assert_eq!(outputs, 2);
        assert_eq!(pipe.occupancy(), 0);
    }

    #[test]
    fn pipeline_agrees_with_flat_netlist() {
        use crate::components::bnb_network;
        let flat = bnb_network(3, 3);
        let mut pipe = PipelinedBnb::new(3, 3);
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let p = Permutation::random(8, &mut rng);
            let batch = records_for_permutation(&p);
            let expected = flat.route(&batch).unwrap();
            pipe.flush();
            let mut got = None;
            for cycle in 0..=pipe.depth() {
                let inject = if cycle == 0 {
                    Some(batch.as_slice())
                } else {
                    None
                };
                got = pipe.clock(inject).unwrap();
            }
            assert_eq!(got.unwrap(), expected);
        }
    }

    #[test]
    fn malformed_injection_leaves_state_unchanged() {
        let mut pipe = PipelinedBnb::new(2, 2);
        let bad = vec![Record::new(9, 0); 4];
        assert!(pipe.clock(Some(&bad)).is_err());
        assert_eq!(pipe.occupancy(), 0);
        let short = vec![Record::new(0, 0)];
        assert!(matches!(
            pipe.clock(Some(&short)),
            Err(BnbNetlistError::RecordCount {
                expected: 4,
                actual: 1
            })
        ));
    }

    #[test]
    fn column_censuses_sum_to_the_flat_netlist() {
        use crate::components::bnb_network;
        for (m, w) in [(2usize, 0usize), (3, 2)] {
            let pipe = PipelinedBnb::new(m, w);
            let flat = bnb_network(m, w);
            let flat_census = flat.netlist().census();
            let cols = pipe.column_census();
            let sum =
                |f: fn(&crate::netlist::GateCensus) -> usize| -> usize { cols.iter().map(f).sum() };
            assert_eq!(sum(|c| c.muxes), flat_census.muxes, "m={m},w={w}");
            assert_eq!(sum(|c| c.xors), flat_census.xors);
            assert_eq!(sum(|c| c.ands), flat_census.ands);
            assert_eq!(sum(|c| c.ors), flat_census.ors);
            assert_eq!(sum(|c| c.nots), flat_census.nots);
        }
    }

    #[test]
    fn early_columns_carry_the_arbiter_weight() {
        // Column (0,0) hosts the sp(m) arbiter — the largest; the final
        // column hosts only sp(1)'s (no arbiter gates at all).
        let pipe = PipelinedBnb::new(4, 0);
        let cols = pipe.column_census();
        let arbiter_gates = |c: &crate::netlist::GateCensus| c.xors + c.ands + c.ors + c.nots;
        assert!(arbiter_gates(&cols[0]) > 0);
        let last = cols.last().unwrap();
        // sp(1) columns: controls are wires (constant flag), so the only
        // logic is the switch muxes plus the control XOR with a constant…
        // which the builder still emits as an XOR per switch.
        assert!(
            arbiter_gates(last) <= pipe.inputs(),
            "final column is near-mux-only"
        );
        assert!(arbiter_gates(&cols[0]) > arbiter_gates(last));
    }

    #[test]
    fn columns_expose_structure() {
        let pipe = PipelinedBnb::new(3, 0);
        let cols = pipe.columns();
        assert_eq!(cols.len(), 6);
        assert_eq!((cols[0].main_stage, cols[0].internal_stage), (0, 0));
        assert_eq!((cols[5].main_stage, cols[5].internal_stage), (2, 0));
        // Every column is N*q in, N*q out.
        for c in cols {
            assert_eq!(c.netlist.input_count(), 8 * 3);
            assert_eq!(c.netlist.output_count(), 8 * 3);
        }
    }
}
