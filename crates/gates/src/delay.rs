//! Arrival-time and critical-path analysis of a netlist.
//!
//! The paper expresses delay in abstract `D_SW` / `D_FN` units; this module
//! measures the *gate-level* depth of the same circuits so the two models
//! can be compared. The delay model assigns a delay to every gate kind;
//! [`DelayModel::unit`] counts plain logic depth.

use serde::{Deserialize, Serialize};

use crate::netlist::{GateKind, Net, Netlist};

/// Per-gate-kind delay assignment (arbitrary time units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// Delay of a NOT gate.
    pub not: f64,
    /// Delay of an AND gate.
    pub and: f64,
    /// Delay of an OR gate.
    pub or: f64,
    /// Delay of an XOR gate.
    pub xor: f64,
    /// Delay of a 2:1 mux.
    pub mux: f64,
}

impl DelayModel {
    /// Unit delay for every logic gate — measures logic depth.
    pub fn unit() -> Self {
        DelayModel {
            not: 1.0,
            and: 1.0,
            or: 1.0,
            xor: 1.0,
            mux: 1.0,
        }
    }

    /// A typical CMOS-flavoured model: XOR and MUX cost twice a NAND-class
    /// gate. Used to show the Table 2 comparison is robust to the gate
    /// technology assumption.
    pub fn cmos() -> Self {
        DelayModel {
            not: 0.5,
            and: 1.0,
            or: 1.0,
            xor: 2.0,
            mux: 2.0,
        }
    }

    fn of(&self, kind: &GateKind) -> f64 {
        match kind {
            GateKind::Input | GateKind::Const(_) => 0.0,
            GateKind::Not(_) => self.not,
            GateKind::And(..) => self.and,
            GateKind::Or(..) => self.or,
            GateKind::Xor(..) => self.xor,
            GateKind::Mux { .. } => self.mux,
        }
    }
}

impl Default for DelayModel {
    /// The unit-delay model.
    fn default() -> Self {
        DelayModel::unit()
    }
}

/// Result of a critical-path analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Total delay from inputs to the slowest declared output.
    pub delay: f64,
    /// The output name whose cone is slowest.
    pub output: String,
    /// The nets along the slowest path, input first.
    pub path: Vec<Net>,
}

/// Computes the arrival time of every net under `model`.
pub fn arrival_times(netlist: &Netlist, model: &DelayModel) -> Vec<f64> {
    let n = netlist.net_count();
    let mut arrival = vec![0.0f64; n];
    for i in 0..n {
        let net = Net(i as u32);
        let kind = netlist.gate(net);
        let fan = kind.fanin();
        let worst = fan.iter().map(|f| arrival[f.index()]).fold(0.0, f64::max);
        arrival[i] = worst + model.of(&kind);
    }
    arrival
}

/// Finds the critical (slowest) path to any declared output.
///
/// Returns `None` when the netlist has no outputs.
pub fn critical_path(netlist: &Netlist, model: &DelayModel) -> Option<CriticalPath> {
    let arrival = arrival_times(netlist, model);
    let (name, out_net) = netlist
        .outputs()
        .iter()
        .max_by(|a, b| {
            arrival[a.1.index()]
                .partial_cmp(&arrival[b.1.index()])
                .expect("delays are finite")
        })?
        .clone();
    // Backtrack: at each gate follow the fan-in with the largest arrival.
    let mut path = vec![out_net];
    let mut cur = out_net;
    loop {
        let fan = netlist.gate(cur).fanin();
        let Some(&next) = fan.iter().max_by(|a, b| {
            arrival[a.index()]
                .partial_cmp(&arrival[b.index()])
                .expect("finite")
        }) else {
            break;
        };
        path.push(next);
        cur = next;
    }
    path.reverse();
    Some(CriticalPath {
        delay: arrival[out_net.index()],
        output: name,
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(depth: usize) -> Netlist {
        let mut nl = Netlist::new();
        let mut cur = nl.input("a");
        for _ in 0..depth {
            cur = nl.not(cur);
        }
        nl.output("out", cur);
        nl
    }

    #[test]
    fn unit_delay_equals_logic_depth() {
        let nl = chain(5);
        let cp = critical_path(&nl, &DelayModel::unit()).unwrap();
        assert_eq!(cp.delay, 5.0);
        assert_eq!(cp.path.len(), 6); // input + 5 gates
        assert_eq!(cp.output, "out");
    }

    #[test]
    fn inputs_and_constants_have_zero_delay() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let c = nl.constant(true);
        nl.output("a", a);
        nl.output("c", c);
        let arr = arrival_times(&nl, &DelayModel::unit());
        assert_eq!(arr, vec![0.0, 0.0]);
    }

    #[test]
    fn critical_path_picks_slowest_output() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let short = nl.not(a);
        let mid = nl.not(short);
        let long = nl.not(mid);
        nl.output("short", short);
        nl.output("long", long);
        let cp = critical_path(&nl, &DelayModel::unit()).unwrap();
        assert_eq!(cp.output, "long");
        assert_eq!(cp.delay, 3.0);
    }

    #[test]
    fn critical_path_follows_slowest_fanin() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let slow = nl.not(a);
        let slower = nl.not(slow);
        let fast = b;
        let join = nl.and(slower, fast);
        nl.output("j", join);
        let cp = critical_path(&nl, &DelayModel::unit()).unwrap();
        assert_eq!(cp.delay, 3.0);
        // path: a -> slow -> slower -> join
        assert_eq!(cp.path, vec![a, slow, slower, join]);
    }

    #[test]
    fn cmos_model_weights_xor_heavier() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        nl.output("x", x);
        let cp = critical_path(&nl, &DelayModel::cmos()).unwrap();
        assert_eq!(cp.delay, 2.0);
    }

    #[test]
    fn no_outputs_yields_none() {
        let mut nl = Netlist::new();
        let _ = nl.input("a");
        assert!(critical_path(&nl, &DelayModel::unit()).is_none());
    }

    #[test]
    fn default_model_is_unit() {
        assert_eq!(DelayModel::default(), DelayModel::unit());
    }
}
