//! An append-only combinational netlist.
//!
//! Gates may only reference nets created earlier, so the netlist is acyclic
//! by construction and a single forward pass evaluates it. This is exactly
//! the class of circuits the paper's hardware lives in: the BNB network is
//! purely combinational (arbiters + switches), with no feedback.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GateError;

/// Handle to a net (the output wire of one gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Net(pub(crate) u32);

impl Net {
    /// The raw index of this net in construction order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The boolean function computed by a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GateKind {
    /// A primary input (value supplied at evaluation time).
    Input,
    /// A constant.
    Const(bool),
    /// Logical NOT of one net.
    Not(Net),
    /// Logical AND of two nets.
    And(Net, Net),
    /// Logical OR of two nets.
    Or(Net, Net),
    /// Logical XOR of two nets.
    Xor(Net, Net),
    /// Two-way multiplexer: `sel ? b : a`.
    Mux {
        /// Select line.
        sel: Net,
        /// Output when `sel` is false.
        a: Net,
        /// Output when `sel` is true.
        b: Net,
    },
}

impl GateKind {
    /// The fan-in nets of this gate, in a fixed order.
    pub fn fanin(&self) -> Vec<Net> {
        match *self {
            GateKind::Input | GateKind::Const(_) => vec![],
            GateKind::Not(a) => vec![a],
            GateKind::And(a, b) | GateKind::Or(a, b) | GateKind::Xor(a, b) => vec![a, b],
            GateKind::Mux { sel, a, b } => vec![sel, a, b],
        }
    }
}

/// Per-gate-kind census of a netlist, used for area accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateCensus {
    /// Primary inputs.
    pub inputs: usize,
    /// Constant drivers.
    pub consts: usize,
    /// NOT gates.
    pub nots: usize,
    /// AND gates.
    pub ands: usize,
    /// OR gates.
    pub ors: usize,
    /// XOR gates.
    pub xors: usize,
    /// 2:1 multiplexers.
    pub muxes: usize,
}

impl GateCensus {
    /// Total logic gates, excluding inputs and constants.
    pub fn logic_gates(&self) -> usize {
        self.nots + self.ands + self.ors + self.xors + self.muxes
    }
}

impl fmt::Display for GateCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates (not={}, and={}, or={}, xor={}, mux={}) over {} inputs",
            self.logic_gates(),
            self.nots,
            self.ands,
            self.ors,
            self.xors,
            self.muxes,
            self.inputs
        )
    }
}

/// A combinational circuit under construction or evaluation.
///
/// # Example
///
/// ```
/// use bnb_gates::netlist::Netlist;
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let x = nl.xor(a, b);
/// nl.output("sum", x);
/// assert_eq!(nl.eval(&[true, false])?, vec![true]);
/// # Ok::<(), bnb_gates::GateError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    gates: Vec<GateKind>,
    input_order: Vec<Net>,
    input_names: Vec<String>,
    outputs: Vec<(String, Net)>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, kind: GateKind) -> Net {
        let id = Net(u32::try_from(self.gates.len()).expect("netlist exceeds u32 nets"));
        self.gates.push(kind);
        id
    }

    /// Declares a primary input. Inputs are fed to [`Netlist::eval`] in
    /// declaration order.
    pub fn input(&mut self, name: impl Into<String>) -> Net {
        let id = self.push(GateKind::Input);
        self.input_order.push(id);
        self.input_names.push(name.into());
        id
    }

    /// A constant driver.
    pub fn constant(&mut self, value: bool) -> Net {
        self.push(GateKind::Const(value))
    }

    /// NOT gate.
    pub fn not(&mut self, a: Net) -> Net {
        self.push(GateKind::Not(a))
    }

    /// AND gate.
    pub fn and(&mut self, a: Net, b: Net) -> Net {
        self.push(GateKind::And(a, b))
    }

    /// OR gate.
    pub fn or(&mut self, a: Net, b: Net) -> Net {
        self.push(GateKind::Or(a, b))
    }

    /// XOR gate.
    pub fn xor(&mut self, a: Net, b: Net) -> Net {
        self.push(GateKind::Xor(a, b))
    }

    /// 2:1 mux: output is `a` when `sel` is false, `b` when true.
    pub fn mux(&mut self, sel: Net, a: Net, b: Net) -> Net {
        self.push(GateKind::Mux { sel, a, b })
    }

    /// Declares a named output. Outputs are returned from
    /// [`Netlist::eval`] in declaration order.
    pub fn output(&mut self, name: impl Into<String>, net: Net) {
        self.outputs.push((name.into(), net));
    }

    /// Number of declared primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_order.len()
    }

    /// Number of declared outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Total nets (gates + inputs + constants).
    pub fn net_count(&self) -> usize {
        self.gates.len()
    }

    /// The gate driving `net`.
    pub fn gate(&self, net: Net) -> GateKind {
        self.gates[net.index()]
    }

    /// Iterator over every net handle, in construction (topological) order.
    pub fn nets(&self) -> impl Iterator<Item = Net> + '_ {
        (0..self.gates.len()).map(|i| Net(i as u32))
    }

    /// Declared output names and nets, in order.
    pub fn outputs(&self) -> &[(String, Net)] {
        &self.outputs
    }

    /// Declared input names, in order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Census of gate kinds.
    pub fn census(&self) -> GateCensus {
        let mut c = GateCensus::default();
        for g in &self.gates {
            match g {
                GateKind::Input => c.inputs += 1,
                GateKind::Const(_) => c.consts += 1,
                GateKind::Not(_) => c.nots += 1,
                GateKind::And(..) => c.ands += 1,
                GateKind::Or(..) => c.ors += 1,
                GateKind::Xor(..) => c.xors += 1,
                GateKind::Mux { .. } => c.muxes += 1,
            }
        }
        c
    }

    /// Replaces the gate driving `net` with `kind`, returning the old gate.
    ///
    /// This is the netlist's one mutation primitive after construction: it
    /// rewires an element in place (fault injection, repair, rewiring a
    /// fan-in) while preserving the append-only acyclicity invariant, so
    /// evaluation order and delay analysis stay valid without a rebuild.
    ///
    /// # Errors
    ///
    /// - [`GateError::UnknownNet`] if `net` does not exist.
    /// - [`GateError::ReplacesInput`] if `net` is a primary input or `kind`
    ///   is [`GateKind::Input`] (either would desynchronise the declared
    ///   input order).
    /// - [`GateError::ForwardReference`] if any fan-in of `kind` sits at or
    ///   after `net` in construction order.
    pub fn replace_gate(&mut self, net: Net, kind: GateKind) -> Result<GateKind, GateError> {
        let idx = net.index();
        if idx >= self.gates.len() {
            return Err(GateError::UnknownNet {
                net: idx,
                nets: self.gates.len(),
            });
        }
        if matches!(self.gates[idx], GateKind::Input) || matches!(kind, GateKind::Input) {
            return Err(GateError::ReplacesInput { net: idx });
        }
        for fanin in kind.fanin() {
            if fanin.index() >= idx {
                return Err(GateError::ForwardReference {
                    net: idx,
                    fanin: fanin.index(),
                });
            }
        }
        Ok(std::mem::replace(&mut self.gates[idx], kind))
    }

    /// Jams `net` to a constant — the classic stuck-at fault. Returns the
    /// healthy gate so the caller can undo the injection later.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::replace_gate`].
    pub fn stuck_at(&mut self, net: Net, value: bool) -> Result<GateKind, GateError> {
        self.replace_gate(net, GateKind::Const(value))
    }

    /// Structurally verifies the netlist: every gate's fan-ins precede it,
    /// every declared output exists, and the declared inputs are exactly
    /// the `Input` gates in order. Cheap enough to run after every editing
    /// session; a freshly built netlist always passes.
    ///
    /// # Errors
    ///
    /// The first violation found, as [`GateError::ForwardReference`],
    /// [`GateError::UnknownNet`], or [`GateError::InputOrderMismatch`].
    pub fn verify(&self) -> Result<(), GateError> {
        let mut inputs_seen = 0usize;
        for (i, g) in self.gates.iter().enumerate() {
            for fanin in g.fanin() {
                if fanin.index() >= i {
                    return Err(GateError::ForwardReference {
                        net: i,
                        fanin: fanin.index(),
                    });
                }
            }
            if matches!(g, GateKind::Input) {
                if self.input_order.get(inputs_seen).map(|n| n.index()) != Some(i) {
                    return Err(GateError::InputOrderMismatch {
                        declared: self.input_order.len(),
                        found: inputs_seen + 1,
                    });
                }
                inputs_seen += 1;
            }
        }
        if inputs_seen != self.input_order.len() {
            return Err(GateError::InputOrderMismatch {
                declared: self.input_order.len(),
                found: inputs_seen,
            });
        }
        for (_, net) in &self.outputs {
            if net.index() >= self.gates.len() {
                return Err(GateError::UnknownNet {
                    net: net.index(),
                    nets: self.gates.len(),
                });
            }
        }
        Ok(())
    }

    /// Evaluates every net in one forward pass and returns the values of the
    /// declared outputs in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InputCountMismatch`] if `inputs.len()` differs
    /// from the declared input count, or [`GateError::NoOutputs`] if no
    /// output was declared.
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, GateError> {
        Ok(self.eval_all(inputs)?.1)
    }

    /// Like [`Netlist::eval`] but also returns the value of every net, for
    /// waveform-style debugging and delay cross-checks.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::eval`].
    pub fn eval_all(&self, inputs: &[bool]) -> Result<(Vec<bool>, Vec<bool>), GateError> {
        if inputs.len() != self.input_order.len() {
            return Err(GateError::InputCountMismatch {
                expected: self.input_order.len(),
                actual: inputs.len(),
            });
        }
        if self.outputs.is_empty() {
            return Err(GateError::NoOutputs);
        }
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0usize;
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match *g {
                GateKind::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                GateKind::Const(v) => v,
                GateKind::Not(a) => !values[a.index()],
                GateKind::And(a, b) => values[a.index()] && values[b.index()],
                GateKind::Or(a, b) => values[a.index()] || values[b.index()],
                GateKind::Xor(a, b) => values[a.index()] ^ values[b.index()],
                GateKind::Mux { sel, a, b } => {
                    if values[sel.index()] {
                        values[b.index()]
                    } else {
                        values[a.index()]
                    }
                }
            };
        }
        let outs = self
            .outputs
            .iter()
            .map(|(_, n)| values[n.index()])
            .collect();
        Ok((values, outs))
    }

    /// Evaluates and returns outputs as a name → value map.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::eval`].
    pub fn eval_named(&self, inputs: &[bool]) -> Result<HashMap<String, bool>, GateError> {
        let outs = self.eval(inputs)?;
        Ok(self
            .outputs
            .iter()
            .zip(outs)
            .map(|((name, _), v)| (name.clone(), v))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_netlist_has_no_nets() {
        let nl = Netlist::new();
        assert_eq!(nl.net_count(), 0);
        assert_eq!(nl.input_count(), 0);
    }

    #[test]
    fn basic_gates_compute_boolean_functions() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let and = nl.and(a, b);
        let or = nl.or(a, b);
        let xor = nl.xor(a, b);
        let not = nl.not(a);
        nl.output("and", and);
        nl.output("or", or);
        nl.output("xor", xor);
        nl.output("not", not);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = nl.eval(&[va, vb]).unwrap();
            assert_eq!(out, vec![va && vb, va || vb, va ^ vb, !va]);
        }
    }

    #[test]
    fn mux_selects_between_inputs() {
        let mut nl = Netlist::new();
        let s = nl.input("s");
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.mux(s, a, b);
        nl.output("m", m);
        assert_eq!(nl.eval(&[false, true, false]).unwrap(), vec![true]); // sel=0 -> a
        assert_eq!(nl.eval(&[true, true, false]).unwrap(), vec![false]); // sel=1 -> b
    }

    #[test]
    fn constants_drive_fixed_values() {
        let mut nl = Netlist::new();
        let t = nl.constant(true);
        let f = nl.constant(false);
        let o = nl.or(t, f);
        nl.output("o", o);
        assert_eq!(nl.eval(&[]).unwrap(), vec![true]);
    }

    #[test]
    fn eval_checks_input_count() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.output("a", a);
        assert_eq!(
            nl.eval(&[]).unwrap_err(),
            GateError::InputCountMismatch {
                expected: 1,
                actual: 0
            }
        );
    }

    #[test]
    fn eval_requires_outputs() {
        let mut nl = Netlist::new();
        let _ = nl.input("a");
        assert_eq!(nl.eval(&[true]).unwrap_err(), GateError::NoOutputs);
    }

    #[test]
    fn census_counts_gates() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        let y = nl.and(x, a);
        let z = nl.not(y);
        nl.output("z", z);
        let c = nl.census();
        assert_eq!(c.inputs, 2);
        assert_eq!(c.xors, 1);
        assert_eq!(c.ands, 1);
        assert_eq!(c.nots, 1);
        assert_eq!(c.logic_gates(), 3);
        assert!(c.to_string().contains("3 gates"));
    }

    #[test]
    fn eval_named_maps_outputs() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.output("na", n);
        let m = nl.eval_named(&[false]).unwrap();
        assert!(m["na"]);
    }

    #[test]
    fn fanin_lists_dependencies() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.mux(a, b, a);
        assert_eq!(nl.gate(m).fanin(), vec![a, b, a]);
        assert_eq!(nl.gate(a).fanin(), Vec::<Net>::new());
    }

    #[test]
    fn replace_gate_rewires_in_place() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.and(a, b);
        nl.output("g", g);
        assert_eq!(nl.eval(&[true, false]).unwrap(), vec![false]);
        let old = nl.replace_gate(g, GateKind::Or(a, b)).unwrap();
        assert_eq!(old, GateKind::And(a, b));
        assert_eq!(nl.eval(&[true, false]).unwrap(), vec![true]);
        nl.verify().unwrap();
    }

    #[test]
    fn stuck_at_jams_and_restores() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let x = nl.not(a);
        nl.output("x", x);
        let healthy = nl.stuck_at(x, true).unwrap();
        assert_eq!(nl.eval(&[true]).unwrap(), vec![true], "stuck at 1");
        nl.replace_gate(x, healthy).unwrap();
        assert_eq!(nl.eval(&[true]).unwrap(), vec![false], "repaired");
    }

    #[test]
    fn replace_gate_rejects_bad_edits() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let g = nl.not(a);
        let h = nl.not(g);
        nl.output("h", h);
        assert_eq!(
            nl.replace_gate(Net(99), GateKind::Const(true)).unwrap_err(),
            GateError::UnknownNet { net: 99, nets: 3 }
        );
        assert_eq!(
            nl.replace_gate(a, GateKind::Const(true)).unwrap_err(),
            GateError::ReplacesInput { net: 0 }
        );
        assert_eq!(
            nl.replace_gate(g, GateKind::Input).unwrap_err(),
            GateError::ReplacesInput { net: 1 }
        );
        // Self-reference and forward references both break acyclicity.
        assert_eq!(
            nl.replace_gate(g, GateKind::Not(g)).unwrap_err(),
            GateError::ForwardReference { net: 1, fanin: 1 }
        );
        assert_eq!(
            nl.replace_gate(g, GateKind::Not(h)).unwrap_err(),
            GateError::ForwardReference { net: 1, fanin: 2 }
        );
        // Rejected edits leave the netlist untouched.
        assert_eq!(nl.gate(g), GateKind::Not(a));
        nl.verify().unwrap();
    }

    #[test]
    fn verify_passes_on_built_netlists() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.mux(a, b, a);
        nl.output("m", m);
        nl.verify().unwrap();
    }

    #[test]
    fn eval_all_exposes_every_net() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.output("n", n);
        let (values, outs) = nl.eval_all(&[true]).unwrap();
        assert_eq!(values, vec![true, false]);
        assert_eq!(outs, vec![false]);
    }
}
