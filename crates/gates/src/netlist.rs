//! An append-only combinational netlist.
//!
//! Gates may only reference nets created earlier, so the netlist is acyclic
//! by construction and a single forward pass evaluates it. This is exactly
//! the class of circuits the paper's hardware lives in: the BNB network is
//! purely combinational (arbiters + switches), with no feedback.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GateError;

/// Handle to a net (the output wire of one gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Net(pub(crate) u32);

impl Net {
    /// The raw index of this net in construction order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The boolean function computed by a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GateKind {
    /// A primary input (value supplied at evaluation time).
    Input,
    /// A constant.
    Const(bool),
    /// Logical NOT of one net.
    Not(Net),
    /// Logical AND of two nets.
    And(Net, Net),
    /// Logical OR of two nets.
    Or(Net, Net),
    /// Logical XOR of two nets.
    Xor(Net, Net),
    /// Two-way multiplexer: `sel ? b : a`.
    Mux {
        /// Select line.
        sel: Net,
        /// Output when `sel` is false.
        a: Net,
        /// Output when `sel` is true.
        b: Net,
    },
}

impl GateKind {
    /// The fan-in nets of this gate, in a fixed order.
    pub fn fanin(&self) -> Vec<Net> {
        match *self {
            GateKind::Input | GateKind::Const(_) => vec![],
            GateKind::Not(a) => vec![a],
            GateKind::And(a, b) | GateKind::Or(a, b) | GateKind::Xor(a, b) => vec![a, b],
            GateKind::Mux { sel, a, b } => vec![sel, a, b],
        }
    }
}

/// Per-gate-kind census of a netlist, used for area accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateCensus {
    /// Primary inputs.
    pub inputs: usize,
    /// Constant drivers.
    pub consts: usize,
    /// NOT gates.
    pub nots: usize,
    /// AND gates.
    pub ands: usize,
    /// OR gates.
    pub ors: usize,
    /// XOR gates.
    pub xors: usize,
    /// 2:1 multiplexers.
    pub muxes: usize,
}

impl GateCensus {
    /// Total logic gates, excluding inputs and constants.
    pub fn logic_gates(&self) -> usize {
        self.nots + self.ands + self.ors + self.xors + self.muxes
    }
}

impl fmt::Display for GateCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates (not={}, and={}, or={}, xor={}, mux={}) over {} inputs",
            self.logic_gates(),
            self.nots,
            self.ands,
            self.ors,
            self.xors,
            self.muxes,
            self.inputs
        )
    }
}

/// A combinational circuit under construction or evaluation.
///
/// # Example
///
/// ```
/// use bnb_gates::netlist::Netlist;
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let x = nl.xor(a, b);
/// nl.output("sum", x);
/// assert_eq!(nl.eval(&[true, false])?, vec![true]);
/// # Ok::<(), bnb_gates::GateError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    gates: Vec<GateKind>,
    input_order: Vec<Net>,
    input_names: Vec<String>,
    outputs: Vec<(String, Net)>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, kind: GateKind) -> Net {
        let id = Net(u32::try_from(self.gates.len()).expect("netlist exceeds u32 nets"));
        self.gates.push(kind);
        id
    }

    /// Declares a primary input. Inputs are fed to [`Netlist::eval`] in
    /// declaration order.
    pub fn input(&mut self, name: impl Into<String>) -> Net {
        let id = self.push(GateKind::Input);
        self.input_order.push(id);
        self.input_names.push(name.into());
        id
    }

    /// A constant driver.
    pub fn constant(&mut self, value: bool) -> Net {
        self.push(GateKind::Const(value))
    }

    /// NOT gate.
    pub fn not(&mut self, a: Net) -> Net {
        self.push(GateKind::Not(a))
    }

    /// AND gate.
    pub fn and(&mut self, a: Net, b: Net) -> Net {
        self.push(GateKind::And(a, b))
    }

    /// OR gate.
    pub fn or(&mut self, a: Net, b: Net) -> Net {
        self.push(GateKind::Or(a, b))
    }

    /// XOR gate.
    pub fn xor(&mut self, a: Net, b: Net) -> Net {
        self.push(GateKind::Xor(a, b))
    }

    /// 2:1 mux: output is `a` when `sel` is false, `b` when true.
    pub fn mux(&mut self, sel: Net, a: Net, b: Net) -> Net {
        self.push(GateKind::Mux { sel, a, b })
    }

    /// Declares a named output. Outputs are returned from
    /// [`Netlist::eval`] in declaration order.
    pub fn output(&mut self, name: impl Into<String>, net: Net) {
        self.outputs.push((name.into(), net));
    }

    /// Number of declared primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_order.len()
    }

    /// Number of declared outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Total nets (gates + inputs + constants).
    pub fn net_count(&self) -> usize {
        self.gates.len()
    }

    /// The gate driving `net`.
    pub fn gate(&self, net: Net) -> GateKind {
        self.gates[net.index()]
    }

    /// Iterator over every net handle, in construction (topological) order.
    pub fn nets(&self) -> impl Iterator<Item = Net> + '_ {
        (0..self.gates.len()).map(|i| Net(i as u32))
    }

    /// Declared output names and nets, in order.
    pub fn outputs(&self) -> &[(String, Net)] {
        &self.outputs
    }

    /// Declared input names, in order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Census of gate kinds.
    pub fn census(&self) -> GateCensus {
        let mut c = GateCensus::default();
        for g in &self.gates {
            match g {
                GateKind::Input => c.inputs += 1,
                GateKind::Const(_) => c.consts += 1,
                GateKind::Not(_) => c.nots += 1,
                GateKind::And(..) => c.ands += 1,
                GateKind::Or(..) => c.ors += 1,
                GateKind::Xor(..) => c.xors += 1,
                GateKind::Mux { .. } => c.muxes += 1,
            }
        }
        c
    }

    /// Evaluates every net in one forward pass and returns the values of the
    /// declared outputs in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InputCountMismatch`] if `inputs.len()` differs
    /// from the declared input count, or [`GateError::NoOutputs`] if no
    /// output was declared.
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, GateError> {
        Ok(self.eval_all(inputs)?.1)
    }

    /// Like [`Netlist::eval`] but also returns the value of every net, for
    /// waveform-style debugging and delay cross-checks.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::eval`].
    pub fn eval_all(&self, inputs: &[bool]) -> Result<(Vec<bool>, Vec<bool>), GateError> {
        if inputs.len() != self.input_order.len() {
            return Err(GateError::InputCountMismatch {
                expected: self.input_order.len(),
                actual: inputs.len(),
            });
        }
        if self.outputs.is_empty() {
            return Err(GateError::NoOutputs);
        }
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0usize;
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match *g {
                GateKind::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                GateKind::Const(v) => v,
                GateKind::Not(a) => !values[a.index()],
                GateKind::And(a, b) => values[a.index()] && values[b.index()],
                GateKind::Or(a, b) => values[a.index()] || values[b.index()],
                GateKind::Xor(a, b) => values[a.index()] ^ values[b.index()],
                GateKind::Mux { sel, a, b } => {
                    if values[sel.index()] {
                        values[b.index()]
                    } else {
                        values[a.index()]
                    }
                }
            };
        }
        let outs = self
            .outputs
            .iter()
            .map(|(_, n)| values[n.index()])
            .collect();
        Ok((values, outs))
    }

    /// Evaluates and returns outputs as a name → value map.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::eval`].
    pub fn eval_named(&self, inputs: &[bool]) -> Result<HashMap<String, bool>, GateError> {
        let outs = self.eval(inputs)?;
        Ok(self
            .outputs
            .iter()
            .zip(outs)
            .map(|((name, _), v)| (name.clone(), v))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_netlist_has_no_nets() {
        let nl = Netlist::new();
        assert_eq!(nl.net_count(), 0);
        assert_eq!(nl.input_count(), 0);
    }

    #[test]
    fn basic_gates_compute_boolean_functions() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let and = nl.and(a, b);
        let or = nl.or(a, b);
        let xor = nl.xor(a, b);
        let not = nl.not(a);
        nl.output("and", and);
        nl.output("or", or);
        nl.output("xor", xor);
        nl.output("not", not);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = nl.eval(&[va, vb]).unwrap();
            assert_eq!(out, vec![va && vb, va || vb, va ^ vb, !va]);
        }
    }

    #[test]
    fn mux_selects_between_inputs() {
        let mut nl = Netlist::new();
        let s = nl.input("s");
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.mux(s, a, b);
        nl.output("m", m);
        assert_eq!(nl.eval(&[false, true, false]).unwrap(), vec![true]); // sel=0 -> a
        assert_eq!(nl.eval(&[true, true, false]).unwrap(), vec![false]); // sel=1 -> b
    }

    #[test]
    fn constants_drive_fixed_values() {
        let mut nl = Netlist::new();
        let t = nl.constant(true);
        let f = nl.constant(false);
        let o = nl.or(t, f);
        nl.output("o", o);
        assert_eq!(nl.eval(&[]).unwrap(), vec![true]);
    }

    #[test]
    fn eval_checks_input_count() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.output("a", a);
        assert_eq!(
            nl.eval(&[]).unwrap_err(),
            GateError::InputCountMismatch {
                expected: 1,
                actual: 0
            }
        );
    }

    #[test]
    fn eval_requires_outputs() {
        let mut nl = Netlist::new();
        let _ = nl.input("a");
        assert_eq!(nl.eval(&[true]).unwrap_err(), GateError::NoOutputs);
    }

    #[test]
    fn census_counts_gates() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        let y = nl.and(x, a);
        let z = nl.not(y);
        nl.output("z", z);
        let c = nl.census();
        assert_eq!(c.inputs, 2);
        assert_eq!(c.xors, 1);
        assert_eq!(c.ands, 1);
        assert_eq!(c.nots, 1);
        assert_eq!(c.logic_gates(), 3);
        assert!(c.to_string().contains("3 gates"));
    }

    #[test]
    fn eval_named_maps_outputs() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.output("na", n);
        let m = nl.eval_named(&[false]).unwrap();
        assert!(m["na"]);
    }

    #[test]
    fn fanin_lists_dependencies() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.mux(a, b, a);
        assert_eq!(nl.gate(m).fanin(), vec![a, b, a]);
        assert_eq!(nl.gate(a).fanin(), Vec::<Net>::new());
    }

    #[test]
    fn eval_all_exposes_every_net() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.output("n", n);
        let (values, outs) = nl.eval_all(&[true]).unwrap();
        assert_eq!(values, vec![true, false]);
        assert_eq!(outs, vec![false]);
    }
}
