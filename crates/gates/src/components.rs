//! Netlist builders for the BNB network's hardware components.
//!
//! Everything the paper describes as hardware is generated here as real
//! gates:
//!
//! - [`function_node`] — the arbiter node of Fig. 5:
//!   `z_u = x1 ⊕ x2`, `y1 = z_u · z_d`, `y2 = z̄_u + z_d`.
//! - [`arbiter`] — the tree arbiter `A(p)` of Definition 6 (up-sweep of
//!   XORs, down-sweep of flags, root echo).
//! - [`splitter_controls`] / [`splitter`] — the splitter `sp(p)` of Fig. 4:
//!   arbiter plus a bank of 2×2 switches set by `s ⊕ f`.
//! - [`bit_sorter`] — the bit-sorter network (Definition 4): a GBN of
//!   splitters.
//! - [`bnb_network`] — the complete `N`-input, `q = m + w` bit BNB network
//!   of Definition 5 as one combinational circuit, with [`BnbNetlist::route`]
//!   to push records through it.
//!
//! The generated circuits are cross-checked against the behavioural
//! simulator in `bnb-core`; they are also what the gate-depth measurements
//! in EXPERIMENTS.md run on.

use std::error::Error;
use std::fmt;

use bnb_topology::bitops::unshuffle;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

use crate::error::GateError;
use crate::netlist::{GateKind, Net, Netlist};

/// The three outputs of one arbiter function node (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionNodeOutputs {
    /// Up-signal to the parent: `x1 ⊕ x2`.
    pub zu: Net,
    /// Flag to the upper child: 0 if this node generates flags itself
    /// (`z_u = 0`), otherwise the parent flag `z_d`.
    pub y1: Net,
    /// Flag to the lower child: 1 if this node generates flags itself,
    /// otherwise `z_d`.
    pub y2: Net,
}

/// Emits one arbiter function node (Fig. 5).
///
/// Truth behaviour: for a type-1 pair (`x1 = x2`, so `z_u = 0`) the node
/// *generates* flags `y1 = 0`, `y2 = 1` regardless of `z_d`; for a type-2
/// pair (`z_u = 1`) it *forwards* the parent flag to both children.
pub fn function_node(nl: &mut Netlist, x1: Net, x2: Net, zd: Net) -> FunctionNodeOutputs {
    let zu = nl.xor(x1, x2);
    let y1 = nl.and(zu, zd);
    let nzu = nl.not(zu);
    let y2 = nl.or(nzu, zd);
    FunctionNodeOutputs { zu, y1, y2 }
}

/// Emits the tree arbiter `A(p)` over `2^p` one-bit inputs and returns one
/// flag per 2×2 switch (i.e. per adjacent input pair).
///
/// The switch-setting rule (paper §4, step 5) then uses
/// `control_t = s(2t) ⊕ flag_t`.
///
/// `A(1)` is pure wiring (no function nodes): the returned flag is the
/// constant 0, so `control = s(0)` — exactly the paper's "the input bit
/// itself is the switch setting signal".
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn arbiter(nl: &mut Netlist, inputs: &[Net]) -> Vec<Net> {
    let n = inputs.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "arbiter needs 2^p >= 2 inputs"
    );
    if n == 2 {
        // A(1): wiring only.
        let zero = nl.constant(false);
        return vec![zero];
    }
    let p = n.trailing_zeros() as usize;
    // Up-sweep: zu[l][t] for levels l = 1..=p (level 0 is the raw inputs).
    let mut zu_levels: Vec<Vec<Net>> = Vec::with_capacity(p + 1);
    zu_levels.push(inputs.to_vec());
    for l in 1..=p {
        let below = &zu_levels[l - 1];
        let mut level = Vec::with_capacity(below.len() / 2);
        for t in 0..below.len() / 2 {
            level.push(nl.xor(below[2 * t], below[2 * t + 1]));
        }
        zu_levels.push(level);
    }
    // Down-sweep: the root's incoming flag is its own zu (paper step 4).
    // zd[l][t] is the flag entering node (l, t).
    let root_zu = zu_levels[p][0];
    let mut zd_level = vec![root_zu];
    for l in (1..=p).rev() {
        let mut below = Vec::with_capacity(zd_level.len() * 2);
        for (t, &zd_in) in zd_level.iter().enumerate() {
            let zu = zu_levels[l][t];
            // y1 = zu & zd; y2 = !zu | zd  (Fig. 5).
            let y1 = nl.and(zu, zd_in);
            let nzu = nl.not(zu);
            let y2 = nl.or(nzu, zd_in);
            below.push(y1);
            below.push(y2);
        }
        zd_level = below;
    }
    // zd_level now holds one flag per level-0 position pair? No: after
    // processing level 1 it holds 2 * (#level-1 nodes) = n/2 * 2 = n flags —
    // one per raw input. The switch flag is the flag of the *upper* input.
    debug_assert_eq!(zd_level.len(), n);
    (0..n / 2).map(|t| zd_level[2 * t]).collect()
}

/// Emits the control signals of a splitter `sp(p)`:
/// `control_t = s(2t) ⊕ flag_t`, one per 2×2 switch.
///
/// `control = 0` routes straight (`s(2t) → even output`), `control = 1`
/// exchanges.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn splitter_controls(nl: &mut Netlist, inputs: &[Net]) -> Vec<Net> {
    let flags = arbiter(nl, inputs);
    flags
        .iter()
        .enumerate()
        .map(|(t, &f)| nl.xor(inputs[2 * t], f))
        .collect()
}

/// Outputs of a standalone splitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitterOutputs {
    /// One control per 2×2 switch (shared with the other slices of a nested
    /// network).
    pub controls: Vec<Net>,
    /// The routed one-bit outputs.
    pub outputs: Vec<Net>,
}

/// Emits a complete splitter `sp(p)` (Fig. 4): arbiter plus switch bank,
/// routing its own one-bit inputs.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn splitter(nl: &mut Netlist, inputs: &[Net]) -> SplitterOutputs {
    let controls = splitter_controls(nl, inputs);
    let mut outputs = Vec::with_capacity(inputs.len());
    for (t, &c) in controls.iter().enumerate() {
        let (a, b) = (inputs[2 * t], inputs[2 * t + 1]);
        outputs.push(nl.mux(c, a, b));
        outputs.push(nl.mux(c, b, a));
    }
    SplitterOutputs { controls, outputs }
}

/// Routes a bank of full words through 2×2 switches driven by `controls`:
/// lines `2t` and `2t+1` are exchanged when `controls[t]` is 1. Every bit
/// of the word gets its own pair of muxes — this is how the non-BSN slices
/// of a nested network "follow the routing of the bit-sorter network".
///
/// # Panics
///
/// Panics if `lines.len() != 2 * controls.len()`.
pub fn switch_bank(nl: &mut Netlist, controls: &[Net], lines: &[Vec<Net>]) -> Vec<Vec<Net>> {
    assert_eq!(lines.len(), 2 * controls.len(), "one control per line pair");
    let mut out = Vec::with_capacity(lines.len());
    for (t, &c) in controls.iter().enumerate() {
        let (up, lo) = (&lines[2 * t], &lines[2 * t + 1]);
        assert_eq!(up.len(), lo.len(), "word widths must match");
        let even: Vec<Net> = up.iter().zip(lo).map(|(&a, &b)| nl.mux(c, a, b)).collect();
        let odd: Vec<Net> = up.iter().zip(lo).map(|(&a, &b)| nl.mux(c, b, a)).collect();
        out.push(even);
        out.push(odd);
    }
    out
}

/// Emits a `2^k`-input bit-sorter network (Definition 4) over one-bit
/// inputs and returns the routed outputs.
///
/// Per Theorem 1, if exactly half the inputs are 1 the outputs satisfy
/// `out[j] = j mod 2`.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn bit_sorter(nl: &mut Netlist, inputs: &[Net]) -> Vec<Net> {
    let n = inputs.len();
    assert!(n >= 2 && n.is_power_of_two(), "BSN needs 2^k >= 2 inputs");
    let k = n.trailing_zeros() as usize;
    let mut lines = inputs.to_vec();
    for stage in 0..k {
        let size = 1usize << (k - stage);
        let mut next = Vec::with_capacity(n);
        for b in 0..(1usize << stage) {
            let span = &lines[b * size..(b + 1) * size];
            next.extend(splitter(nl, span).outputs);
        }
        if stage + 1 < k {
            let mut wired = vec![next[0]; n];
            for (j, &net) in next.iter().enumerate() {
                wired[unshuffle(k - stage, k, j)] = net;
            }
            lines = wired;
        } else {
            lines = next;
        }
    }
    lines
}

/// The ways a switching element can be broken, at the gate level.
///
/// Deliberately the same vocabulary (and the same element addressing) as
/// `bnb_core::fault::FaultKind`: the differential tests prove a fault
/// injected here and the same fault expressed behaviourally produce the
/// identical detection error or the identical routed frame. This crate
/// stays independent of `bnb-core`, so the vocabulary is duplicated rather
/// than imported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GateFaultKind {
    /// 2×2 switch stuck-at-0: its control gate is jammed to constant 0.
    StuckStraight,
    /// 2×2 switch stuck-at-1: its control gate is jammed to constant 1.
    StuckExchange,
    /// Splitter arbiter tree dead: every switch in the box degrades to the
    /// greedy control `s(2t)` (its control gate is rewired to the upper
    /// input's tap).
    DeadArbiter,
    /// Address-tap link broken: the column's control-plane tap for one
    /// line is jammed to constant 0; the data path is untouched.
    BrokenLink,
}

impl GateFaultKind {
    /// Number of valid [`GateFault::element`] indices for this kind in one
    /// column of an `N = 2^m` network: switches and links span the whole
    /// column (`N/2` and `N`), arbiters are one per splitter box.
    pub fn elements(self, m: usize, main_stage: usize, internal_stage: usize) -> usize {
        let n = 1usize << m;
        let box_size = 1usize << (m - main_stage - internal_stage);
        match self {
            GateFaultKind::StuckStraight | GateFaultKind::StuckExchange => n / 2,
            GateFaultKind::DeadArbiter => n / box_size,
            GateFaultKind::BrokenLink => n,
        }
    }
}

/// One gate-level fault: a kind at a column and element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GateFault {
    /// Main-network stage (`0..m`).
    pub main_stage: usize,
    /// Column within the stage's nested networks (`0..m - main_stage`).
    pub internal_stage: usize,
    /// Global element index within the column: switch index, splitter-box
    /// index, or line index depending on the kind.
    pub element: usize,
    /// How the element is broken.
    pub kind: GateFaultKind,
}

impl GateFault {
    /// A fault at the given column and element.
    pub fn new(
        main_stage: usize,
        internal_stage: usize,
        element: usize,
        kind: GateFaultKind,
    ) -> Self {
        GateFault {
            main_stage,
            internal_stage,
            element,
            kind,
        }
    }

    /// Whether the site addresses a real element of an `N = 2^m` network.
    pub fn in_bounds(&self, m: usize) -> bool {
        self.main_stage < m
            && self.internal_stage < m - self.main_stage
            && self.element < self.kind.elements(m, self.main_stage, self.internal_stage)
    }
}

/// Error from routing records through a [`BnbNetlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BnbNetlistError {
    /// Wrong number of input records.
    RecordCount {
        /// Expected record count (N).
        expected: usize,
        /// Provided record count.
        actual: usize,
    },
    /// A record's destination does not fit in `m` bits.
    DestinationTooWide {
        /// The offending destination.
        dest: usize,
        /// The network width.
        n: usize,
    },
    /// A record's data does not fit in `w` bits.
    DataTooWide {
        /// The offending data word.
        data: u64,
        /// Data width in bits.
        w: usize,
    },
    /// Internal evaluation error (should not occur for a well-formed
    /// netlist).
    Gate(GateError),
    /// A checked route found a splitter whose *input* bits violate the
    /// Definition 3 precondition (sp(1): exactly one 1; wider: an even
    /// number of 1s). Mirrors `bnb_core::RouteError::UnbalancedSplitter`
    /// field for field.
    Unbalanced {
        /// Main-network stage of the offending column.
        main_stage: usize,
        /// Internal stage within the nested networks.
        internal_stage: usize,
        /// Global index of the splitter box's first line.
        first_line: usize,
        /// Box width (number of lines).
        width: usize,
        /// Ones observed among the input bits.
        ones: usize,
    },
    /// A checked route caught an injected fault: a splitter in a faulted
    /// column produced an uneven split (Theorem 3 says a healthy one
    /// cannot). Mirrors `bnb_core::RouteError::HardwareFault` field for
    /// field.
    HardwareFault {
        /// Main-network stage of the offending column.
        main_stage: usize,
        /// Internal stage within the nested networks.
        internal_stage: usize,
        /// Global index of the splitter box's first line.
        first_line: usize,
        /// Box width (number of lines).
        width: usize,
        /// Ones that left on even (upper) outputs.
        even_ones: usize,
        /// Ones that left on odd (lower) outputs.
        odd_ones: usize,
    },
    /// Fault injection or checked routing requested on a netlist built
    /// without the editable control-plane taps — use
    /// [`bnb_network_faultable`].
    NotFaultable,
    /// An injected fault addresses no real element of this network.
    FaultOutOfBounds {
        /// The rejected fault.
        fault: GateFault,
    },
}

impl fmt::Display for BnbNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BnbNetlistError::RecordCount { expected, actual } => {
                write!(f, "expected {expected} records, got {actual}")
            }
            BnbNetlistError::DestinationTooWide { dest, n } => {
                write!(f, "destination {dest} does not fit a {n}-output network")
            }
            BnbNetlistError::DataTooWide { data, w } => {
                write!(f, "data {data:#x} does not fit in {w} bits")
            }
            BnbNetlistError::Gate(e) => write!(f, "netlist evaluation failed: {e}"),
            BnbNetlistError::Unbalanced {
                main_stage,
                internal_stage,
                first_line,
                width,
                ones,
            } => write!(
                f,
                "unbalanced splitter input at main stage {main_stage}, internal stage \
                 {internal_stage}, lines {first_line}..{} ({ones} ones over {width} lines)",
                first_line + width
            ),
            BnbNetlistError::HardwareFault {
                main_stage,
                internal_stage,
                first_line,
                width,
                even_ones,
                odd_ones,
            } => write!(
                f,
                "hardware fault detected at main stage {main_stage}, internal stage \
                 {internal_stage}, lines {first_line}..{} (split {even_ones} even / \
                 {odd_ones} odd)",
                first_line + width
            ),
            BnbNetlistError::NotFaultable => {
                write!(f, "netlist was built without editable fault taps")
            }
            BnbNetlistError::FaultOutOfBounds { fault } => write!(
                f,
                "fault {:?} at ({}, {}, {}) addresses no element of this network",
                fault.kind, fault.main_stage, fault.internal_stage, fault.element
            ),
        }
    }
}

impl Error for BnbNetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BnbNetlistError::Gate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GateError> for BnbNetlistError {
    fn from(e: GateError) -> Self {
        BnbNetlistError::Gate(e)
    }
}

/// A complete gate-level BNB network (Definition 5) plus its word geometry.
///
/// # Example
///
/// ```
/// use bnb_gates::components::bnb_network;
/// use bnb_topology::record::Record;
///
/// let net = bnb_network(2, 4); // N = 4, 4 data bits
/// let recs = vec![
///     Record::new(2, 0xA), Record::new(0, 0xB),
///     Record::new(3, 0xC), Record::new(1, 0xD),
/// ];
/// let out = net.route(&recs)?;
/// assert_eq!(out[0], Record::new(0, 0xB));
/// assert_eq!(out[3], Record::new(3, 0xC));
/// # Ok::<(), bnb_gates::components::BnbNetlistError>(())
/// ```
/// Geometry and editing handles of one switching column of a faultable
/// netlist, recorded at build time. Boxes are contiguous ascending spans,
/// so box `b` covers `inputs[b * box_size..(b + 1) * box_size]` (and the
/// matching slices of `taps`, `outputs`, and `controls`).
#[derive(Debug, Clone)]
struct ColumnMeta {
    main_stage: usize,
    internal_stage: usize,
    box_size: usize,
    /// True address-slice bit entering the column, per line.
    inputs: Vec<Net>,
    /// Control-plane tap of that bit (an editable identity gate), per line.
    taps: Vec<Net>,
    /// The `s ⊕ f` control gate, per 2×2 switch.
    controls: Vec<Net>,
    /// Post-switch (pre-wiring) address-slice bit, per line.
    outputs: Vec<Net>,
}

#[derive(Debug, Clone)]
pub struct BnbNetlist {
    netlist: Netlist,
    m: usize,
    w: usize,
    /// One entry per switching column in route order; empty unless built
    /// with [`bnb_network_faultable`].
    columns: Vec<ColumnMeta>,
    /// Currently injected faults, in injection order.
    active: Vec<GateFault>,
    /// Healthy gates displaced by the active faults, for restoration.
    pristine: Vec<(Net, GateKind)>,
}

impl BnbNetlist {
    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Data word width in bits.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Network width `N = 2^m`.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// The underlying netlist (for census / delay analysis).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Routes one record per input line through the gate-level network.
    ///
    /// # Errors
    ///
    /// Returns a [`BnbNetlistError`] if the record count or any record's
    /// width is wrong. Note the circuit itself never errors: feeding it a
    /// non-permutation simply mis-routes, exactly like the hardware would.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, BnbNetlistError> {
        let bits = self.encode(records)?;
        let out_bits = self.netlist.eval(&bits)?;
        Ok(self.decode(&out_bits))
    }

    /// Validates records and flattens them into the netlist's input layout:
    /// address bits MSB-first (paper slice order), then data LSB-first.
    fn encode(&self, records: &[Record]) -> Result<Vec<bool>, BnbNetlistError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(BnbNetlistError::RecordCount {
                expected: n,
                actual: records.len(),
            });
        }
        let mut bits = Vec::with_capacity(n * (self.m + self.w));
        for r in records {
            if r.dest() >= n {
                return Err(BnbNetlistError::DestinationTooWide { dest: r.dest(), n });
            }
            if self.w < 64 && r.data() >> self.w != 0 {
                return Err(BnbNetlistError::DataTooWide {
                    data: r.data(),
                    w: self.w,
                });
            }
            #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
            for k in 0..self.m {
                bits.push((r.dest() >> (self.m - 1 - k)) & 1 == 1);
            }
            for t in 0..self.w {
                bits.push((r.data() >> t) & 1 == 1);
            }
        }
        Ok(bits)
    }

    /// Reassembles records from the declared output bits.
    fn decode(&self, out_bits: &[bool]) -> Vec<Record> {
        let n = self.inputs();
        let q = self.m + self.w;
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            let word = &out_bits[j * q..(j + 1) * q];
            let mut dest = 0usize;
            #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
            for k in 0..self.m {
                dest = (dest << 1) | usize::from(word[k]);
            }
            let mut data = 0u64;
            for t in 0..self.w {
                if word[self.m + t] {
                    data |= 1 << t;
                }
            }
            out.push(Record::new(dest, data));
        }
        out
    }

    /// Whether this netlist was built with editable control-plane taps
    /// ([`bnb_network_faultable`]), i.e. supports fault injection and
    /// [`BnbNetlist::route_checked`].
    pub fn faultable(&self) -> bool {
        !self.columns.is_empty()
    }

    /// The currently injected faults, in injection order.
    pub fn active_faults(&self) -> &[GateFault] {
        &self.active
    }

    /// Injects a gate-level fault by editing the netlist in place.
    ///
    /// The edit mirrors the behavioural fault model exactly: stuck
    /// switches jam their control gate to a constant, a dead arbiter
    /// rewires every control in its box to the greedy `s(2t)` tap, and a
    /// broken link jams the column's tap for that line to 0. All active
    /// faults are re-applied from the pristine gates on every change, so
    /// precedence (stuck overrides the greedy fallback) is independent of
    /// injection order, matching `FaultMap::override_flags`.
    ///
    /// # Errors
    ///
    /// [`BnbNetlistError::NotFaultable`] on a default-built netlist,
    /// [`BnbNetlistError::FaultOutOfBounds`] if the site addresses no
    /// element.
    pub fn inject_fault(&mut self, fault: GateFault) -> Result<(), BnbNetlistError> {
        if !self.faultable() {
            return Err(BnbNetlistError::NotFaultable);
        }
        if !fault.in_bounds(self.m) {
            return Err(BnbNetlistError::FaultOutOfBounds { fault });
        }
        self.active.push(fault);
        self.reapply();
        Ok(())
    }

    /// Removes one previously injected fault (the first exact match) and
    /// restores the displaced gates. Returns whether a fault was removed.
    pub fn clear_fault(&mut self, fault: GateFault) -> bool {
        match self.active.iter().position(|&f| f == fault) {
            Some(i) => {
                self.active.remove(i);
                self.reapply();
                true
            }
            None => false,
        }
    }

    /// Removes every injected fault, restoring the pristine netlist.
    pub fn clear_faults(&mut self) {
        self.active.clear();
        self.reapply();
    }

    /// Restores all displaced gates, then re-applies the active fault list
    /// from scratch: dead arbiters first, stuck switches second (so a
    /// stuck latch overrides the greedy fallback, like the hardware),
    /// broken links last (they edit tap gates, disjoint from controls).
    fn reapply(&mut self) {
        for (net, kind) in std::mem::take(&mut self.pristine) {
            self.netlist
                .replace_gate(net, kind)
                .expect("restoring a recorded gate cannot fail");
        }
        let mut edits: Vec<(Net, GateKind)> = Vec::new();
        for f in &self.active {
            let col = self
                .columns
                .iter()
                .find(|c| c.main_stage == f.main_stage && c.internal_stage == f.internal_stage)
                .expect("in-bounds fault addresses a real column");
            match f.kind {
                GateFaultKind::DeadArbiter => {
                    let bs = col.box_size;
                    let first_switch = f.element * bs / 2;
                    for t in 0..bs / 2 {
                        let tap = col.taps[f.element * bs + 2 * t];
                        edits.push((col.controls[first_switch + t], GateKind::Or(tap, tap)));
                    }
                }
                GateFaultKind::StuckStraight => {
                    edits.push((col.controls[f.element], GateKind::Const(false)));
                }
                GateFaultKind::StuckExchange => {
                    edits.push((col.controls[f.element], GateKind::Const(true)));
                }
                GateFaultKind::BrokenLink => {
                    edits.push((col.taps[f.element], GateKind::Const(false)));
                }
            }
        }
        // Stuck-switch edits must land after dead-arbiter edits; the pass
        // above already emits per-fault edits in active order, so sort the
        // precedence explicitly: replay dead-arbiter/link edits first, then
        // stuck constants.
        edits.sort_by_key(|(_, kind)| matches!(kind, GateKind::Const(_)));
        for (net, kind) in edits {
            let old = self
                .netlist
                .replace_gate(net, kind)
                .expect("fault edits stay in bounds");
            if !self.pristine.iter().any(|&(n, _)| n == net) {
                self.pristine.push((net, old));
            }
        }
        debug_assert!(self.netlist.verify().is_ok());
    }

    /// Routes with the strict detect-or-deliver semantics of the
    /// behavioural fabric: every splitter's input bits are checked against
    /// the Definition 3 precondition, and in faulted columns the *output*
    /// split is audited (Theorem 3: a healthy splitter on a checked input
    /// always splits evenly, so an uneven split pins the corruption).
    /// Columns are scanned in route order and boxes ascending, first
    /// violation wins — the identical scan order as
    /// `bnb_core::stages::route_span_scalar_inner`, so the returned error
    /// matches the behavioural `RouteError` field for field.
    ///
    /// # Errors
    ///
    /// Validation errors as [`BnbNetlist::route`], plus
    /// [`BnbNetlistError::Unbalanced`], [`BnbNetlistError::HardwareFault`],
    /// and [`BnbNetlistError::NotFaultable`] on a default-built netlist.
    pub fn route_checked(&self, records: &[Record]) -> Result<Vec<Record>, BnbNetlistError> {
        if !self.faultable() {
            return Err(BnbNetlistError::NotFaultable);
        }
        let bits = self.encode(records)?;
        let (values, out_bits) = self.netlist.eval_all(&bits)?;
        let n = self.inputs();
        for col in &self.columns {
            let faulted = self
                .active
                .iter()
                .any(|f| f.main_stage == col.main_stage && f.internal_stage == col.internal_stage);
            for start in (0..n).step_by(col.box_size) {
                let box_in = &col.inputs[start..start + col.box_size];
                let ones = box_in.iter().filter(|b| values[b.index()]).count();
                let balanced_in = if col.box_size == 2 {
                    ones == 1
                } else {
                    ones % 2 == 0
                };
                if !balanced_in {
                    return Err(BnbNetlistError::Unbalanced {
                        main_stage: col.main_stage,
                        internal_stage: col.internal_stage,
                        first_line: start,
                        width: col.box_size,
                        ones,
                    });
                }
                if faulted {
                    let box_out = &col.outputs[start..start + col.box_size];
                    let even_ones = box_out
                        .iter()
                        .step_by(2)
                        .filter(|b| values[b.index()])
                        .count();
                    let odd_ones = box_out
                        .iter()
                        .skip(1)
                        .step_by(2)
                        .filter(|b| values[b.index()])
                        .count();
                    let balanced_out = if col.box_size == 2 {
                        even_ones == 0 && odd_ones == 1
                    } else {
                        even_ones == odd_ones
                    };
                    if !balanced_out {
                        return Err(BnbNetlistError::HardwareFault {
                            main_stage: col.main_stage,
                            internal_stage: col.internal_stage,
                            first_line: start,
                            width: col.box_size,
                            even_ones,
                            odd_ones,
                        });
                    }
                }
            }
        }
        Ok(self.decode(&out_bits))
    }
}

/// Builds the complete gate-level BNB network `B(m, B_k^q(i, SB_k))` with
/// `N = 2^m` inputs and `w` data bits per word (`q = m + w` slices).
///
/// Main stage `i` consists of `2^i` nested networks of `2^{m-i}` lines; the
/// nested network's slice `i` is a bit-sorter network whose splitter
/// controls drive the switches of *all* `q` slices; unshuffle wiring (free
/// of gates) joins internal stages and main stages.
///
/// # Panics
///
/// Panics if `m == 0` or `w > 63`.
pub fn bnb_network(m: usize, w: usize) -> BnbNetlist {
    build_bnb_network(m, w, false)
}

/// Like [`bnb_network`], but every column's control plane reads its
/// address bits through per-line identity *tap* gates and the builder
/// records every column's geometry and editing handles. The pristine
/// circuit computes exactly what [`bnb_network`] computes (a tap is the
/// identity), at the cost of `N` extra OR gates per column — and those
/// taps plus the recorded control nets are precisely the elements
/// [`BnbNetlist::inject_fault`] edits and [`BnbNetlist::route_checked`]
/// audits.
///
/// # Panics
///
/// Panics if `m == 0` or `w > 63`.
pub fn bnb_network_faultable(m: usize, w: usize) -> BnbNetlist {
    build_bnb_network(m, w, true)
}

fn build_bnb_network(m: usize, w: usize, faultable: bool) -> BnbNetlist {
    assert!(m >= 1, "network needs at least 2 inputs");
    assert!(w <= 63, "data width is limited to 63 bits");
    let n = 1usize << m;
    let q = m + w;
    let mut nl = Netlist::new();
    let mut columns: Vec<ColumnMeta> = Vec::new();
    // lines[j] = the q nets of the word currently on line j.
    let mut lines: Vec<Vec<Net>> = (0..n)
        .map(|j| {
            (0..q)
                .map(|b| {
                    if b < m {
                        nl.input(format!("in{j}.a{b}"))
                    } else {
                        nl.input(format!("in{j}.d{}", b - m))
                    }
                })
                .collect()
        })
        .collect();

    for main_stage in 0..m {
        let nested_size_log = m - main_stage;
        let nested_size = 1usize << nested_size_log;
        // Each nested network runs nested_size_log internal stages.
        for internal in 0..nested_size_log {
            let box_size = 1usize << (nested_size_log - internal);
            let mut next: Vec<Vec<Net>> = Vec::with_capacity(n);
            let mut meta = ColumnMeta {
                main_stage,
                internal_stage: internal,
                box_size,
                inputs: Vec::new(),
                taps: Vec::new(),
                controls: Vec::new(),
                outputs: Vec::new(),
            };
            for box_start in (0..n).step_by(box_size) {
                let span = &lines[box_start..box_start + box_size];
                // The BSN slice for this main stage is address bit
                // `main_stage` (paper: slice i of NB(i, l)).
                let slice_bits: Vec<Net> = span.iter().map(|word| word[main_stage]).collect();
                let controls = if faultable {
                    // The control plane reads the address bits through
                    // editable identity taps; the data path keeps the true
                    // nets, mirroring the behavioural model where a broken
                    // link corrupts only the control plane's *view*.
                    let taps: Vec<Net> = slice_bits.iter().map(|&b| nl.or(b, b)).collect();
                    let controls = splitter_controls(&mut nl, &taps);
                    meta.inputs.extend_from_slice(&slice_bits);
                    meta.taps.extend_from_slice(&taps);
                    meta.controls.extend_from_slice(&controls);
                    controls
                } else {
                    splitter_controls(&mut nl, &slice_bits)
                };
                let routed = switch_bank(&mut nl, &controls, span);
                if faultable {
                    meta.outputs
                        .extend(routed.iter().map(|word| word[main_stage]));
                }
                next.extend(routed);
            }
            if faultable {
                columns.push(meta);
            }
            if internal + 1 < nested_size_log {
                // Internal GBN wiring within each nested network:
                // U_{k-j}^{k} applied to the local index.
                let k = nested_size_log;
                let mut wired = vec![Vec::new(); n];
                for (j, word) in next.into_iter().enumerate() {
                    let base = j & !(nested_size - 1);
                    let local = j & (nested_size - 1);
                    wired[base | unshuffle(k - internal, k, local)] = word;
                }
                lines = wired;
            } else {
                lines = next;
            }
        }
        if main_stage + 1 < m {
            // Main GBN wiring: U_{m-i}^m on the global index.
            let mut wired = vec![Vec::new(); n];
            for (j, word) in lines.into_iter().enumerate() {
                wired[unshuffle(m - main_stage, m, j)] = word;
            }
            lines = wired;
        }
    }

    for (j, word) in lines.iter().enumerate() {
        for (b, &net) in word.iter().enumerate() {
            if b < m {
                nl.output(format!("out{j}.a{b}"), net);
            } else {
                nl.output(format!("out{j}.d{}", b - m), net);
            }
        }
    }
    BnbNetlist {
        netlist: nl,
        m,
        w,
        columns,
        active: Vec::new(),
        pristine: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};

    /// Exhaustive truth table of the Fig. 5 function node.
    #[test]
    fn function_node_truth_table() {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let zd = nl.input("zd");
        let node = function_node(&mut nl, x1, x2, zd);
        nl.output("zu", node.zu);
        nl.output("y1", node.y1);
        nl.output("y2", node.y2);
        for bits in 0..8u8 {
            let (v1, v2, vd) = (bits & 4 != 0, bits & 2 != 0, bits & 1 != 0);
            let out = nl.eval(&[v1, v2, vd]).unwrap();
            let zu = v1 ^ v2;
            let (y1, y2) = if zu { (vd, vd) } else { (false, true) };
            assert_eq!(out, vec![zu, y1, y2], "inputs ({v1},{v2},{vd})");
        }
    }

    /// Every even-weight input to a splitter must be split evenly onto even
    /// and odd outputs (Theorem 3), exhaustively for p = 2 and 3.
    #[test]
    fn splitter_splits_even_weight_inputs_evenly() {
        for p in [2usize, 3] {
            let n = 1 << p;
            let mut nl = Netlist::new();
            let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
            let sp = splitter(&mut nl, &ins);
            for (j, &o) in sp.outputs.iter().enumerate() {
                nl.output(format!("o{j}"), o);
            }
            for pattern in 0..(1u32 << n) {
                if pattern.count_ones() % 2 != 0 {
                    continue; // paper assumption: even number of ones
                }
                let input: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                let out = nl.eval(&input).unwrap();
                let even_ones = out.iter().step_by(2).filter(|&&b| b).count();
                let odd_ones = out.iter().skip(1).step_by(2).filter(|&&b| b).count();
                assert_eq!(
                    even_ones, odd_ones,
                    "sp({p}) failed M_e = M_o for input {pattern:0n$b}"
                );
                // And it is a routing: multiset of bits preserved.
                let in_ones = input.iter().filter(|&&b| b).count();
                assert_eq!(even_ones + odd_ones, in_ones);
            }
        }
    }

    /// sp(1) sends 0 up and 1 down (Definition 3, p = 1 case).
    #[test]
    fn splitter_size_two_sorts_its_pair() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let sp = splitter(&mut nl, &[a, b]);
        nl.output("o0", sp.outputs[0]);
        nl.output("o1", sp.outputs[1]);
        assert_eq!(nl.eval(&[false, true]).unwrap(), vec![false, true]);
        assert_eq!(nl.eval(&[true, false]).unwrap(), vec![false, true]);
    }

    /// Theorem 1 at the gate level: a balanced input emerges as 0101…,
    /// exhaustively for k = 2 and 3.
    #[test]
    fn bit_sorter_realizes_theorem_1() {
        for k in [2usize, 3] {
            let n = 1 << k;
            let mut nl = Netlist::new();
            let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
            let outs = bit_sorter(&mut nl, &ins);
            for (j, &o) in outs.iter().enumerate() {
                nl.output(format!("o{j}"), o);
            }
            for pattern in 0..(1u32 << n) {
                if pattern.count_ones() as usize != n / 2 {
                    continue; // Theorem 1 assumes exactly half ones
                }
                let input: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                let out = nl.eval(&input).unwrap();
                for (j, &bit) in out.iter().enumerate() {
                    assert_eq!(bit, j % 2 == 1, "BSN({k}) input {pattern:b} output {j}");
                }
            }
        }
    }

    /// Theorem 2 at the gate level: the full BNB netlist self-routes every
    /// permutation of 4 inputs, and a random sample of 8-input permutations.
    #[test]
    fn bnb_netlist_routes_permutations() {
        let net = bnb_network(2, 3);
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p} mis-routed at gate level");
            // Data words must travel with their addresses.
            for (j, r) in out.iter().enumerate() {
                assert_eq!(r.data(), p.inverse().apply(j) as u64);
            }
        }
    }

    #[test]
    fn bnb_netlist_routes_eight_inputs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let net = bnb_network(3, 5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = Permutation::random(8, &mut rng);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p} mis-routed at gate level");
        }
    }

    #[test]
    fn bnb_netlist_validates_inputs() {
        let net = bnb_network(2, 2);
        let too_few = vec![Record::new(0, 0)];
        assert!(matches!(
            net.route(&too_few),
            Err(BnbNetlistError::RecordCount {
                expected: 4,
                actual: 1
            })
        ));
        let wide_dest = vec![
            Record::new(9, 0),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&wide_dest),
            Err(BnbNetlistError::DestinationTooWide { dest: 9, .. })
        ));
        let wide_data = vec![
            Record::new(0, 0xFF),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&wide_data),
            Err(BnbNetlistError::DataTooWide { data: 0xFF, .. })
        ));
    }

    #[test]
    fn arbiter_of_two_inputs_is_wiring_only() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let flags = arbiter(&mut nl, &[a, b]);
        assert_eq!(flags.len(), 1);
        // No logic gates were emitted — A(1) is wiring (plus one constant).
        assert_eq!(nl.census().logic_gates(), 0);
    }

    #[test]
    fn switch_bank_exchanges_words() {
        let mut nl = Netlist::new();
        let c = nl.input("c");
        let a0 = nl.input("a0");
        let a1 = nl.input("a1");
        let b0 = nl.input("b0");
        let b1 = nl.input("b1");
        let out = switch_bank(&mut nl, &[c], &[vec![a0, a1], vec![b0, b1]]);
        for (j, word) in out.iter().enumerate() {
            for (b, &net) in word.iter().enumerate() {
                nl.output(format!("o{j}.{b}"), net);
            }
        }
        // c = 0: straight.
        assert_eq!(
            nl.eval(&[false, true, false, false, true]).unwrap(),
            vec![true, false, false, true]
        );
        // c = 1: exchanged.
        assert_eq!(
            nl.eval(&[true, true, false, false, true]).unwrap(),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn gate_counts_grow_with_network_size() {
        let small = bnb_network(2, 0).netlist().census().logic_gates();
        let large = bnb_network(3, 0).netlist().census().logic_gates();
        assert!(large > 2 * small, "gate count must grow superlinearly");
    }

    #[test]
    fn faultable_network_is_equivalent_when_pristine() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for (m, w) in [(2usize, 3usize), (3, 4)] {
            let plain = bnb_network(m, w);
            let editable = bnb_network_faultable(m, w);
            assert!(editable.faultable());
            assert!(!plain.faultable());
            editable.netlist().verify().unwrap();
            let mut rng = StdRng::seed_from_u64(40);
            for _ in 0..20 {
                let p = Permutation::random(1 << m, &mut rng);
                let recs = records_for_permutation(&p);
                let expected = plain.route(&recs).unwrap();
                assert_eq!(editable.route(&recs).unwrap(), expected);
                assert_eq!(editable.route_checked(&recs).unwrap(), expected);
            }
        }
    }

    #[test]
    fn faultable_columns_cover_the_whole_network() {
        let net = bnb_network_faultable(3, 0);
        let n = net.inputs();
        // m + (m-1) + ... + 1 columns for m = 3.
        assert_eq!(net.columns.len(), 6);
        for col in &net.columns {
            assert_eq!(col.inputs.len(), n);
            assert_eq!(col.taps.len(), n);
            assert_eq!(col.outputs.len(), n);
            assert_eq!(col.controls.len(), n / 2);
        }
    }

    #[test]
    fn stuck_exchange_is_detected_or_harmless() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut net = bnb_network_faultable(2, 2);
        net.inject_fault(GateFault::new(1, 0, 0, GateFaultKind::StuckExchange))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut caught = 0;
        for _ in 0..40 {
            let p = Permutation::random(4, &mut rng);
            let recs = records_for_permutation(&p);
            match net.route_checked(&recs) {
                Ok(out) => assert!(all_delivered(&out), "silent misdelivery"),
                Err(BnbNetlistError::HardwareFault {
                    main_stage,
                    internal_stage,
                    ..
                }) => {
                    assert_eq!((main_stage, internal_stage), (1, 0));
                    caught += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(caught > 0, "fault never fired across 40 permutations");
    }

    #[test]
    fn clearing_faults_restores_the_pristine_circuit() {
        let pristine = bnb_network_faultable(3, 3);
        let mut net = pristine.clone();
        net.inject_fault(GateFault::new(0, 0, 1, GateFaultKind::StuckStraight))
            .unwrap();
        net.inject_fault(GateFault::new(0, 1, 0, GateFaultKind::DeadArbiter))
            .unwrap();
        net.inject_fault(GateFault::new(1, 0, 3, GateFaultKind::BrokenLink))
            .unwrap();
        assert_eq!(net.active_faults().len(), 3);
        assert!(net.clear_fault(GateFault::new(0, 1, 0, GateFaultKind::DeadArbiter)));
        assert!(!net.clear_fault(GateFault::new(0, 1, 0, GateFaultKind::DeadArbiter)));
        net.clear_faults();
        // Every displaced gate is restored: the netlists agree gate for gate.
        for nn in pristine.netlist().nets() {
            assert_eq!(net.netlist().gate(nn), pristine.netlist().gate(nn));
        }
        let p = Permutation::nth_lexicographic(8, 999);
        let recs = records_for_permutation(&p);
        assert_eq!(
            net.route_checked(&recs).unwrap(),
            pristine.route(&recs).unwrap()
        );
    }

    #[test]
    fn fault_injection_validates_its_target() {
        let mut plain = bnb_network(2, 0);
        assert!(matches!(
            plain.inject_fault(GateFault::new(0, 0, 0, GateFaultKind::BrokenLink)),
            Err(BnbNetlistError::NotFaultable)
        ));
        assert!(matches!(
            plain.route_checked(&[]),
            Err(BnbNetlistError::NotFaultable)
        ));
        let mut net = bnb_network_faultable(2, 0);
        assert!(matches!(
            net.inject_fault(GateFault::new(5, 0, 0, GateFaultKind::StuckStraight)),
            Err(BnbNetlistError::FaultOutOfBounds { .. })
        ));
        assert!(matches!(
            net.inject_fault(GateFault::new(0, 0, 4, GateFaultKind::StuckStraight)),
            Err(BnbNetlistError::FaultOutOfBounds { .. })
        ));
    }

    #[test]
    fn editing_changes_combinational_depth_and_back() {
        use crate::delay::{critical_path, DelayModel};
        let mut net = bnb_network_faultable(2, 0);
        let before = critical_path(net.netlist(), &DelayModel::unit())
            .unwrap()
            .delay;
        // Jamming a first-column control to a constant shortens the cone
        // through that switch; the recomputed depth must not grow.
        net.inject_fault(GateFault::new(0, 0, 0, GateFaultKind::StuckExchange))
            .unwrap();
        let during = critical_path(net.netlist(), &DelayModel::unit())
            .unwrap()
            .delay;
        assert!(
            during <= before,
            "a constant control cannot deepen the cone"
        );
        net.clear_faults();
        let after = critical_path(net.netlist(), &DelayModel::unit())
            .unwrap()
            .delay;
        assert_eq!(after, before, "repair restores the original depth");
    }
}
