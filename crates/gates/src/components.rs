//! Netlist builders for the BNB network's hardware components.
//!
//! Everything the paper describes as hardware is generated here as real
//! gates:
//!
//! - [`function_node`] — the arbiter node of Fig. 5:
//!   `z_u = x1 ⊕ x2`, `y1 = z_u · z_d`, `y2 = z̄_u + z_d`.
//! - [`arbiter`] — the tree arbiter `A(p)` of Definition 6 (up-sweep of
//!   XORs, down-sweep of flags, root echo).
//! - [`splitter_controls`] / [`splitter`] — the splitter `sp(p)` of Fig. 4:
//!   arbiter plus a bank of 2×2 switches set by `s ⊕ f`.
//! - [`bit_sorter`] — the bit-sorter network (Definition 4): a GBN of
//!   splitters.
//! - [`bnb_network`] — the complete `N`-input, `q = m + w` bit BNB network
//!   of Definition 5 as one combinational circuit, with [`BnbNetlist::route`]
//!   to push records through it.
//!
//! The generated circuits are cross-checked against the behavioural
//! simulator in `bnb-core`; they are also what the gate-depth measurements
//! in EXPERIMENTS.md run on.

use std::error::Error;
use std::fmt;

use bnb_topology::bitops::unshuffle;
use bnb_topology::record::Record;

use crate::error::GateError;
use crate::netlist::{Net, Netlist};

/// The three outputs of one arbiter function node (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionNodeOutputs {
    /// Up-signal to the parent: `x1 ⊕ x2`.
    pub zu: Net,
    /// Flag to the upper child: 0 if this node generates flags itself
    /// (`z_u = 0`), otherwise the parent flag `z_d`.
    pub y1: Net,
    /// Flag to the lower child: 1 if this node generates flags itself,
    /// otherwise `z_d`.
    pub y2: Net,
}

/// Emits one arbiter function node (Fig. 5).
///
/// Truth behaviour: for a type-1 pair (`x1 = x2`, so `z_u = 0`) the node
/// *generates* flags `y1 = 0`, `y2 = 1` regardless of `z_d`; for a type-2
/// pair (`z_u = 1`) it *forwards* the parent flag to both children.
pub fn function_node(nl: &mut Netlist, x1: Net, x2: Net, zd: Net) -> FunctionNodeOutputs {
    let zu = nl.xor(x1, x2);
    let y1 = nl.and(zu, zd);
    let nzu = nl.not(zu);
    let y2 = nl.or(nzu, zd);
    FunctionNodeOutputs { zu, y1, y2 }
}

/// Emits the tree arbiter `A(p)` over `2^p` one-bit inputs and returns one
/// flag per 2×2 switch (i.e. per adjacent input pair).
///
/// The switch-setting rule (paper §4, step 5) then uses
/// `control_t = s(2t) ⊕ flag_t`.
///
/// `A(1)` is pure wiring (no function nodes): the returned flag is the
/// constant 0, so `control = s(0)` — exactly the paper's "the input bit
/// itself is the switch setting signal".
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn arbiter(nl: &mut Netlist, inputs: &[Net]) -> Vec<Net> {
    let n = inputs.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "arbiter needs 2^p >= 2 inputs"
    );
    if n == 2 {
        // A(1): wiring only.
        let zero = nl.constant(false);
        return vec![zero];
    }
    let p = n.trailing_zeros() as usize;
    // Up-sweep: zu[l][t] for levels l = 1..=p (level 0 is the raw inputs).
    let mut zu_levels: Vec<Vec<Net>> = Vec::with_capacity(p + 1);
    zu_levels.push(inputs.to_vec());
    for l in 1..=p {
        let below = &zu_levels[l - 1];
        let mut level = Vec::with_capacity(below.len() / 2);
        for t in 0..below.len() / 2 {
            level.push(nl.xor(below[2 * t], below[2 * t + 1]));
        }
        zu_levels.push(level);
    }
    // Down-sweep: the root's incoming flag is its own zu (paper step 4).
    // zd[l][t] is the flag entering node (l, t).
    let root_zu = zu_levels[p][0];
    let mut zd_level = vec![root_zu];
    for l in (1..=p).rev() {
        let mut below = Vec::with_capacity(zd_level.len() * 2);
        for (t, &zd_in) in zd_level.iter().enumerate() {
            let zu = zu_levels[l][t];
            // y1 = zu & zd; y2 = !zu | zd  (Fig. 5).
            let y1 = nl.and(zu, zd_in);
            let nzu = nl.not(zu);
            let y2 = nl.or(nzu, zd_in);
            below.push(y1);
            below.push(y2);
        }
        zd_level = below;
    }
    // zd_level now holds one flag per level-0 position pair? No: after
    // processing level 1 it holds 2 * (#level-1 nodes) = n/2 * 2 = n flags —
    // one per raw input. The switch flag is the flag of the *upper* input.
    debug_assert_eq!(zd_level.len(), n);
    (0..n / 2).map(|t| zd_level[2 * t]).collect()
}

/// Emits the control signals of a splitter `sp(p)`:
/// `control_t = s(2t) ⊕ flag_t`, one per 2×2 switch.
///
/// `control = 0` routes straight (`s(2t) → even output`), `control = 1`
/// exchanges.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn splitter_controls(nl: &mut Netlist, inputs: &[Net]) -> Vec<Net> {
    let flags = arbiter(nl, inputs);
    flags
        .iter()
        .enumerate()
        .map(|(t, &f)| nl.xor(inputs[2 * t], f))
        .collect()
}

/// Outputs of a standalone splitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitterOutputs {
    /// One control per 2×2 switch (shared with the other slices of a nested
    /// network).
    pub controls: Vec<Net>,
    /// The routed one-bit outputs.
    pub outputs: Vec<Net>,
}

/// Emits a complete splitter `sp(p)` (Fig. 4): arbiter plus switch bank,
/// routing its own one-bit inputs.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn splitter(nl: &mut Netlist, inputs: &[Net]) -> SplitterOutputs {
    let controls = splitter_controls(nl, inputs);
    let mut outputs = Vec::with_capacity(inputs.len());
    for (t, &c) in controls.iter().enumerate() {
        let (a, b) = (inputs[2 * t], inputs[2 * t + 1]);
        outputs.push(nl.mux(c, a, b));
        outputs.push(nl.mux(c, b, a));
    }
    SplitterOutputs { controls, outputs }
}

/// Routes a bank of full words through 2×2 switches driven by `controls`:
/// lines `2t` and `2t+1` are exchanged when `controls[t]` is 1. Every bit
/// of the word gets its own pair of muxes — this is how the non-BSN slices
/// of a nested network "follow the routing of the bit-sorter network".
///
/// # Panics
///
/// Panics if `lines.len() != 2 * controls.len()`.
pub fn switch_bank(nl: &mut Netlist, controls: &[Net], lines: &[Vec<Net>]) -> Vec<Vec<Net>> {
    assert_eq!(lines.len(), 2 * controls.len(), "one control per line pair");
    let mut out = Vec::with_capacity(lines.len());
    for (t, &c) in controls.iter().enumerate() {
        let (up, lo) = (&lines[2 * t], &lines[2 * t + 1]);
        assert_eq!(up.len(), lo.len(), "word widths must match");
        let even: Vec<Net> = up.iter().zip(lo).map(|(&a, &b)| nl.mux(c, a, b)).collect();
        let odd: Vec<Net> = up.iter().zip(lo).map(|(&a, &b)| nl.mux(c, b, a)).collect();
        out.push(even);
        out.push(odd);
    }
    out
}

/// Emits a `2^k`-input bit-sorter network (Definition 4) over one-bit
/// inputs and returns the routed outputs.
///
/// Per Theorem 1, if exactly half the inputs are 1 the outputs satisfy
/// `out[j] = j mod 2`.
///
/// # Panics
///
/// Panics if `inputs.len()` is not a power of two or is less than 2.
pub fn bit_sorter(nl: &mut Netlist, inputs: &[Net]) -> Vec<Net> {
    let n = inputs.len();
    assert!(n >= 2 && n.is_power_of_two(), "BSN needs 2^k >= 2 inputs");
    let k = n.trailing_zeros() as usize;
    let mut lines = inputs.to_vec();
    for stage in 0..k {
        let size = 1usize << (k - stage);
        let mut next = Vec::with_capacity(n);
        for b in 0..(1usize << stage) {
            let span = &lines[b * size..(b + 1) * size];
            next.extend(splitter(nl, span).outputs);
        }
        if stage + 1 < k {
            let mut wired = vec![next[0]; n];
            for (j, &net) in next.iter().enumerate() {
                wired[unshuffle(k - stage, k, j)] = net;
            }
            lines = wired;
        } else {
            lines = next;
        }
    }
    lines
}

/// Error from routing records through a [`BnbNetlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BnbNetlistError {
    /// Wrong number of input records.
    RecordCount {
        /// Expected record count (N).
        expected: usize,
        /// Provided record count.
        actual: usize,
    },
    /// A record's destination does not fit in `m` bits.
    DestinationTooWide {
        /// The offending destination.
        dest: usize,
        /// The network width.
        n: usize,
    },
    /// A record's data does not fit in `w` bits.
    DataTooWide {
        /// The offending data word.
        data: u64,
        /// Data width in bits.
        w: usize,
    },
    /// Internal evaluation error (should not occur for a well-formed
    /// netlist).
    Gate(GateError),
}

impl fmt::Display for BnbNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BnbNetlistError::RecordCount { expected, actual } => {
                write!(f, "expected {expected} records, got {actual}")
            }
            BnbNetlistError::DestinationTooWide { dest, n } => {
                write!(f, "destination {dest} does not fit a {n}-output network")
            }
            BnbNetlistError::DataTooWide { data, w } => {
                write!(f, "data {data:#x} does not fit in {w} bits")
            }
            BnbNetlistError::Gate(e) => write!(f, "netlist evaluation failed: {e}"),
        }
    }
}

impl Error for BnbNetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BnbNetlistError::Gate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GateError> for BnbNetlistError {
    fn from(e: GateError) -> Self {
        BnbNetlistError::Gate(e)
    }
}

/// A complete gate-level BNB network (Definition 5) plus its word geometry.
///
/// # Example
///
/// ```
/// use bnb_gates::components::bnb_network;
/// use bnb_topology::record::Record;
///
/// let net = bnb_network(2, 4); // N = 4, 4 data bits
/// let recs = vec![
///     Record::new(2, 0xA), Record::new(0, 0xB),
///     Record::new(3, 0xC), Record::new(1, 0xD),
/// ];
/// let out = net.route(&recs)?;
/// assert_eq!(out[0], Record::new(0, 0xB));
/// assert_eq!(out[3], Record::new(3, 0xC));
/// # Ok::<(), bnb_gates::components::BnbNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BnbNetlist {
    netlist: Netlist,
    m: usize,
    w: usize,
}

impl BnbNetlist {
    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Data word width in bits.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Network width `N = 2^m`.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// The underlying netlist (for census / delay analysis).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Routes one record per input line through the gate-level network.
    ///
    /// # Errors
    ///
    /// Returns a [`BnbNetlistError`] if the record count or any record's
    /// width is wrong. Note the circuit itself never errors: feeding it a
    /// non-permutation simply mis-routes, exactly like the hardware would.
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, BnbNetlistError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(BnbNetlistError::RecordCount {
                expected: n,
                actual: records.len(),
            });
        }
        let mut bits = Vec::with_capacity(n * (self.m + self.w));
        for r in records {
            if r.dest() >= n {
                return Err(BnbNetlistError::DestinationTooWide { dest: r.dest(), n });
            }
            if self.w < 64 && r.data() >> self.w != 0 {
                return Err(BnbNetlistError::DataTooWide {
                    data: r.data(),
                    w: self.w,
                });
            }
            // Address bits MSB-first (paper slice order), then data LSB-first.
            #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
            for k in 0..self.m {
                bits.push((r.dest() >> (self.m - 1 - k)) & 1 == 1);
            }
            for t in 0..self.w {
                bits.push((r.data() >> t) & 1 == 1);
            }
        }
        let out_bits = self.netlist.eval(&bits)?;
        let q = self.m + self.w;
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            let word = &out_bits[j * q..(j + 1) * q];
            let mut dest = 0usize;
            #[allow(clippy::needless_range_loop)] // k is the MSB-first bit position
            for k in 0..self.m {
                dest = (dest << 1) | usize::from(word[k]);
            }
            let mut data = 0u64;
            for t in 0..self.w {
                if word[self.m + t] {
                    data |= 1 << t;
                }
            }
            out.push(Record::new(dest, data));
        }
        Ok(out)
    }
}

/// Builds the complete gate-level BNB network `B(m, B_k^q(i, SB_k))` with
/// `N = 2^m` inputs and `w` data bits per word (`q = m + w` slices).
///
/// Main stage `i` consists of `2^i` nested networks of `2^{m-i}` lines; the
/// nested network's slice `i` is a bit-sorter network whose splitter
/// controls drive the switches of *all* `q` slices; unshuffle wiring (free
/// of gates) joins internal stages and main stages.
///
/// # Panics
///
/// Panics if `m == 0` or `w > 63`.
pub fn bnb_network(m: usize, w: usize) -> BnbNetlist {
    assert!(m >= 1, "network needs at least 2 inputs");
    assert!(w <= 63, "data width is limited to 63 bits");
    let n = 1usize << m;
    let q = m + w;
    let mut nl = Netlist::new();
    // lines[j] = the q nets of the word currently on line j.
    let mut lines: Vec<Vec<Net>> = (0..n)
        .map(|j| {
            (0..q)
                .map(|b| {
                    if b < m {
                        nl.input(format!("in{j}.a{b}"))
                    } else {
                        nl.input(format!("in{j}.d{}", b - m))
                    }
                })
                .collect()
        })
        .collect();

    for main_stage in 0..m {
        let nested_size_log = m - main_stage;
        let nested_size = 1usize << nested_size_log;
        // Each nested network runs nested_size_log internal stages.
        for internal in 0..nested_size_log {
            let box_size = 1usize << (nested_size_log - internal);
            let mut next: Vec<Vec<Net>> = Vec::with_capacity(n);
            for box_start in (0..n).step_by(box_size) {
                let span = &lines[box_start..box_start + box_size];
                // The BSN slice for this main stage is address bit
                // `main_stage` (paper: slice i of NB(i, l)).
                let slice_bits: Vec<Net> = span.iter().map(|word| word[main_stage]).collect();
                let controls = splitter_controls(&mut nl, &slice_bits);
                next.extend(switch_bank(&mut nl, &controls, span));
            }
            if internal + 1 < nested_size_log {
                // Internal GBN wiring within each nested network:
                // U_{k-j}^{k} applied to the local index.
                let k = nested_size_log;
                let mut wired = vec![Vec::new(); n];
                for (j, word) in next.into_iter().enumerate() {
                    let base = j & !(nested_size - 1);
                    let local = j & (nested_size - 1);
                    wired[base | unshuffle(k - internal, k, local)] = word;
                }
                lines = wired;
            } else {
                lines = next;
            }
        }
        if main_stage + 1 < m {
            // Main GBN wiring: U_{m-i}^m on the global index.
            let mut wired = vec![Vec::new(); n];
            for (j, word) in lines.into_iter().enumerate() {
                wired[unshuffle(m - main_stage, m, j)] = word;
            }
            lines = wired;
        }
    }

    for (j, word) in lines.iter().enumerate() {
        for (b, &net) in word.iter().enumerate() {
            if b < m {
                nl.output(format!("out{j}.a{b}"), net);
            } else {
                nl.output(format!("out{j}.d{}", b - m), net);
            }
        }
    }
    BnbNetlist { netlist: nl, m, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};

    /// Exhaustive truth table of the Fig. 5 function node.
    #[test]
    fn function_node_truth_table() {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let zd = nl.input("zd");
        let node = function_node(&mut nl, x1, x2, zd);
        nl.output("zu", node.zu);
        nl.output("y1", node.y1);
        nl.output("y2", node.y2);
        for bits in 0..8u8 {
            let (v1, v2, vd) = (bits & 4 != 0, bits & 2 != 0, bits & 1 != 0);
            let out = nl.eval(&[v1, v2, vd]).unwrap();
            let zu = v1 ^ v2;
            let (y1, y2) = if zu { (vd, vd) } else { (false, true) };
            assert_eq!(out, vec![zu, y1, y2], "inputs ({v1},{v2},{vd})");
        }
    }

    /// Every even-weight input to a splitter must be split evenly onto even
    /// and odd outputs (Theorem 3), exhaustively for p = 2 and 3.
    #[test]
    fn splitter_splits_even_weight_inputs_evenly() {
        for p in [2usize, 3] {
            let n = 1 << p;
            let mut nl = Netlist::new();
            let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
            let sp = splitter(&mut nl, &ins);
            for (j, &o) in sp.outputs.iter().enumerate() {
                nl.output(format!("o{j}"), o);
            }
            for pattern in 0..(1u32 << n) {
                if pattern.count_ones() % 2 != 0 {
                    continue; // paper assumption: even number of ones
                }
                let input: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                let out = nl.eval(&input).unwrap();
                let even_ones = out.iter().step_by(2).filter(|&&b| b).count();
                let odd_ones = out.iter().skip(1).step_by(2).filter(|&&b| b).count();
                assert_eq!(
                    even_ones, odd_ones,
                    "sp({p}) failed M_e = M_o for input {pattern:0n$b}"
                );
                // And it is a routing: multiset of bits preserved.
                let in_ones = input.iter().filter(|&&b| b).count();
                assert_eq!(even_ones + odd_ones, in_ones);
            }
        }
    }

    /// sp(1) sends 0 up and 1 down (Definition 3, p = 1 case).
    #[test]
    fn splitter_size_two_sorts_its_pair() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let sp = splitter(&mut nl, &[a, b]);
        nl.output("o0", sp.outputs[0]);
        nl.output("o1", sp.outputs[1]);
        assert_eq!(nl.eval(&[false, true]).unwrap(), vec![false, true]);
        assert_eq!(nl.eval(&[true, false]).unwrap(), vec![false, true]);
    }

    /// Theorem 1 at the gate level: a balanced input emerges as 0101…,
    /// exhaustively for k = 2 and 3.
    #[test]
    fn bit_sorter_realizes_theorem_1() {
        for k in [2usize, 3] {
            let n = 1 << k;
            let mut nl = Netlist::new();
            let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
            let outs = bit_sorter(&mut nl, &ins);
            for (j, &o) in outs.iter().enumerate() {
                nl.output(format!("o{j}"), o);
            }
            for pattern in 0..(1u32 << n) {
                if pattern.count_ones() as usize != n / 2 {
                    continue; // Theorem 1 assumes exactly half ones
                }
                let input: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                let out = nl.eval(&input).unwrap();
                for (j, &bit) in out.iter().enumerate() {
                    assert_eq!(bit, j % 2 == 1, "BSN({k}) input {pattern:b} output {j}");
                }
            }
        }
    }

    /// Theorem 2 at the gate level: the full BNB netlist self-routes every
    /// permutation of 4 inputs, and a random sample of 8-input permutations.
    #[test]
    fn bnb_netlist_routes_permutations() {
        let net = bnb_network(2, 3);
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p} mis-routed at gate level");
            // Data words must travel with their addresses.
            for (j, r) in out.iter().enumerate() {
                assert_eq!(r.data(), p.inverse().apply(j) as u64);
            }
        }
    }

    #[test]
    fn bnb_netlist_routes_eight_inputs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let net = bnb_network(3, 5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = Permutation::random(8, &mut rng);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p} mis-routed at gate level");
        }
    }

    #[test]
    fn bnb_netlist_validates_inputs() {
        let net = bnb_network(2, 2);
        let too_few = vec![Record::new(0, 0)];
        assert!(matches!(
            net.route(&too_few),
            Err(BnbNetlistError::RecordCount {
                expected: 4,
                actual: 1
            })
        ));
        let wide_dest = vec![
            Record::new(9, 0),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&wide_dest),
            Err(BnbNetlistError::DestinationTooWide { dest: 9, .. })
        ));
        let wide_data = vec![
            Record::new(0, 0xFF),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&wide_data),
            Err(BnbNetlistError::DataTooWide { data: 0xFF, .. })
        ));
    }

    #[test]
    fn arbiter_of_two_inputs_is_wiring_only() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let flags = arbiter(&mut nl, &[a, b]);
        assert_eq!(flags.len(), 1);
        // No logic gates were emitted — A(1) is wiring (plus one constant).
        assert_eq!(nl.census().logic_gates(), 0);
    }

    #[test]
    fn switch_bank_exchanges_words() {
        let mut nl = Netlist::new();
        let c = nl.input("c");
        let a0 = nl.input("a0");
        let a1 = nl.input("a1");
        let b0 = nl.input("b0");
        let b1 = nl.input("b1");
        let out = switch_bank(&mut nl, &[c], &[vec![a0, a1], vec![b0, b1]]);
        for (j, word) in out.iter().enumerate() {
            for (b, &net) in word.iter().enumerate() {
                nl.output(format!("o{j}.{b}"), net);
            }
        }
        // c = 0: straight.
        assert_eq!(
            nl.eval(&[false, true, false, false, true]).unwrap(),
            vec![true, false, false, true]
        );
        // c = 1: exchanged.
        assert_eq!(
            nl.eval(&[true, true, false, false, true]).unwrap(),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn gate_counts_grow_with_network_size() {
        let small = bnb_network(2, 0).netlist().census().logic_gates();
        let large = bnb_network(3, 0).netlist().census().logic_gates();
        assert!(large > 2 * small, "gate count must grow superlinearly");
    }
}
