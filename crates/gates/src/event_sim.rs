//! Event-driven (dynamic) gate simulation.
//!
//! The delay analysis in [`crate::delay`] is *static*: it bounds when each
//! net could last change. This module actually *plays the transient*: the
//! circuit rests in the stable state for the all-false input vector, the
//! inputs switch to the requested vector at `t = 0`, and every gate
//! propagates changes after its transport delay. The simulation yields,
//! per net, the final value and the time of its last transition — plus the
//! glitch count, something no static analysis can see.
//!
//! Cross-validation: final values must equal the levelized evaluator's,
//! and every settle time must be bounded by the static arrival time. Both
//! are enforced by tests over random circuits and over the full BNB
//! netlist.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::delay::DelayModel;
use crate::error::GateError;
use crate::netlist::{GateKind, Net, Netlist};

/// Result of one transient simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventOutcome {
    /// Final value of every net.
    pub values: Vec<bool>,
    /// Time of each net's last transition (0.0 if it never changed).
    pub settle_time: Vec<f64>,
    /// Time of the last transition anywhere — the measured settling time.
    pub final_time: f64,
    /// Transitions beyond each net's first — hazard/glitch activity.
    pub glitches: usize,
}

/// A scheduled signal change. Ordered by time (then sequence for
/// determinism); used through `Reverse` in a max-heap to get a min-queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    net: u32,
    value: bool,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("delays are finite")
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn gate_delay(model: &DelayModel, kind: &GateKind) -> f64 {
    match kind {
        GateKind::Input | GateKind::Const(_) => 0.0,
        GateKind::Not(_) => model.not,
        GateKind::And(..) => model.and,
        GateKind::Or(..) => model.or,
        GateKind::Xor(..) => model.xor,
        GateKind::Mux { .. } => model.mux,
    }
}

fn compute(kind: &GateKind, values: &[bool]) -> bool {
    match *kind {
        GateKind::Input => unreachable!("inputs are driven externally"),
        GateKind::Const(v) => v,
        GateKind::Not(a) => !values[a.index()],
        GateKind::And(a, b) => values[a.index()] && values[b.index()],
        GateKind::Or(a, b) => values[a.index()] || values[b.index()],
        GateKind::Xor(a, b) => values[a.index()] ^ values[b.index()],
        GateKind::Mux { sel, a, b } => {
            if values[sel.index()] {
                values[b.index()]
            } else {
                values[a.index()]
            }
        }
    }
}

/// Simulates the transient from the all-false stable state to `inputs`,
/// with transport delays from `model`.
///
/// # Errors
///
/// Returns [`GateError::InputCountMismatch`] if `inputs.len()` differs
/// from the declared input count. (Unlike `eval`, netlists without
/// declared outputs are permitted — the transient is still well-defined.)
pub fn simulate(
    nl: &Netlist,
    inputs: &[bool],
    model: &DelayModel,
) -> Result<EventOutcome, GateError> {
    if inputs.len() != nl.input_count() {
        return Err(GateError::InputCountMismatch {
            expected: nl.input_count(),
            actual: inputs.len(),
        });
    }
    let n = nl.net_count();
    // Fan-out lists.
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
    for net in nl.nets() {
        for f in nl.gate(net).fanin() {
            fanout[f.index()].push(net.index() as u32);
        }
    }
    // Stable state for all-false inputs, computed levelized.
    let mut values = vec![false; n];
    {
        let mut input_seen = 0usize;
        for net in nl.nets() {
            let kind = nl.gate(net);
            values[net.index()] = match kind {
                GateKind::Input => {
                    input_seen += 1;
                    let _ = input_seen;
                    false
                }
                _ => compute(&kind, &values),
            };
        }
    }
    let mut settle = vec![0.0f64; n];
    let mut glitches = 0usize;
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    // At t = 0 the inputs switch.
    {
        let mut idx = 0usize;
        for net in nl.nets() {
            if matches!(nl.gate(net), GateKind::Input) {
                if inputs[idx] != values[net.index()] {
                    heap.push(Event {
                        time: 0.0,
                        seq,
                        net: net.index() as u32,
                        value: inputs[idx],
                    });
                    seq += 1;
                }
                idx += 1;
            }
        }
    }
    let mut changed = vec![false; n]; // whether the net transitioned at least once
    let mut final_time = 0.0f64;
    while let Some(ev) = heap.pop() {
        let i = ev.net as usize;
        if values[i] == ev.value {
            continue; // superseded — the driving cone settled back
        }
        values[i] = ev.value;
        settle[i] = ev.time;
        final_time = final_time.max(ev.time);
        if changed[i] {
            glitches += 1;
        }
        changed[i] = true;
        for &g in &fanout[i] {
            let kind = nl.gate(Net(g));
            let new_val = compute(&kind, &values);
            let t = ev.time + gate_delay(model, &kind);
            heap.push(Event {
                time: t,
                seq,
                net: g,
                value: new_val,
            });
            seq += 1;
        }
    }
    Ok(EventOutcome {
        values,
        settle_time: settle,
        final_time,
        glitches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{bnb_network, splitter};
    use crate::delay::{arrival_times, critical_path};

    fn outputs_of(nl: &Netlist, outcome: &EventOutcome) -> Vec<bool> {
        nl.outputs()
            .iter()
            .map(|(_, net)| outcome.values[net.index()])
            .collect()
    }

    #[test]
    fn final_values_match_eval_on_a_splitter_exhaustively() {
        let n = 8usize;
        let mut nl = Netlist::new();
        let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
        let sp = splitter(&mut nl, &ins);
        for (j, &o) in sp.outputs.iter().enumerate() {
            nl.output(format!("o{j}"), o);
        }
        for pattern in 0..256u32 {
            let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
            let outcome = simulate(&nl, &bits, &DelayModel::unit()).unwrap();
            assert_eq!(
                outputs_of(&nl, &outcome),
                nl.eval(&bits).unwrap(),
                "pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn settling_is_bounded_by_static_arrival_times() {
        let net = bnb_network(3, 2);
        let nl = net.netlist();
        let arrivals = arrival_times(nl, &DelayModel::unit());
        let cp = critical_path(nl, &DelayModel::unit()).unwrap();
        // A worst-ish-case stimulus: all address bits high.
        let bits = vec![true; nl.input_count()];
        let outcome = simulate(nl, &bits, &DelayModel::unit()).unwrap();
        for net in nl.nets() {
            assert!(
                outcome.settle_time[net.index()] <= arrivals[net.index()] + 1e-9,
                "net {net} settles after its static bound"
            );
        }
        assert!(outcome.final_time <= cp.delay + 1e-9);
    }

    #[test]
    fn full_bnb_transient_matches_eval_on_random_stimulus() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let net = bnb_network(3, 1);
        let nl = net.netlist();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let bits: Vec<bool> = (0..nl.input_count())
                .map(|_| rng.random_bool(0.5))
                .collect();
            let outcome = simulate(nl, &bits, &DelayModel::cmos()).unwrap();
            assert_eq!(outputs_of(nl, &outcome), nl.eval(&bits).unwrap());
        }
    }

    #[test]
    fn a_static_hazard_produces_a_glitch() {
        // Classic hazard: f = (a AND b) OR (NOT a AND c) with b = c = 1;
        // switching `a` can glitch the output because the two product
        // terms hand over with unequal path delays.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let na = nl.not(a);
        let p1 = nl.and(a, b);
        let p2 = nl.and(na, c);
        let f = nl.or(p1, p2);
        nl.output("f", f);
        // Stable all-false start; stimulus a=1, b=1, c=1.
        let outcome = simulate(&nl, &[true, true, true], &DelayModel::unit()).unwrap();
        assert!(outputs_of(&nl, &outcome)[0]);
        // The transient must have produced at least one multi-transition
        // net somewhere in the cone (p2 rises then falls as ¬a catches up,
        // or f glitches) — transitions beyond the first are counted.
        let total_transitions = outcome.glitches;
        assert!(total_transitions >= 1, "expected hazard activity, got none");
    }

    #[test]
    fn no_stimulus_means_no_activity() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        nl.output("na", n1);
        let outcome = simulate(&nl, &[false], &DelayModel::unit()).unwrap();
        assert_eq!(outcome.final_time, 0.0);
        assert_eq!(outcome.glitches, 0);
        assert_eq!(outputs_of(&nl, &outcome), vec![true]);
    }

    #[test]
    fn input_count_is_validated() {
        let mut nl = Netlist::new();
        let _ = nl.input("a");
        assert!(matches!(
            simulate(&nl, &[], &DelayModel::unit()),
            Err(GateError::InputCountMismatch {
                expected: 1,
                actual: 0
            })
        ));
    }
}
