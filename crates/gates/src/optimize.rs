//! Netlist optimization: constant folding, algebraic simplification and
//! dead-gate elimination.
//!
//! The component builders favour regularity over minimality — e.g. every
//! splitter emits uniform arbiter nodes even where a flag is unused, and
//! `A(1)` contributes a constant-zero flag that turns the control XOR into
//! a wire. This pass recovers the minimal circuit, which serves two
//! purposes: it quantifies how much slack the regular design leaves (an
//! area the paper's §5 model cannot see), and it provides a second,
//! independent implementation whose outputs must match the unoptimized
//! netlist bit for bit (an equivalence-checking test target).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::netlist::{GateKind, Net, Netlist};

/// What happened during one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizeStats {
    /// Logic gates before.
    pub original_gates: usize,
    /// Logic gates after.
    pub optimized_gates: usize,
    /// Gates removed by constant folding / algebraic identities.
    pub folded: usize,
    /// Gates removed because no output depends on them.
    pub dead_removed: usize,
}

impl OptimizeStats {
    /// Fraction of logic gates eliminated.
    pub fn reduction(&self) -> f64 {
        if self.original_gates == 0 {
            0.0
        } else {
            1.0 - self.optimized_gates as f64 / self.original_gates as f64
        }
    }
}

/// The value a net resolves to after simplification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    /// A compile-time constant.
    Const(bool),
    /// An (optionally inverted) reference to a net in the new netlist.
    Wire(Net, bool),
}

/// Optimizes a netlist: folds constants, applies the standard identities
/// (`x∧0 = 0`, `x∧1 = x`, `x⊕0 = x`, `x⊕1 = ¬x`, `mux` with constant or
/// equal arms, `¬¬x = x`, `x op x` …) and drops gates no output needs.
/// Inputs are always preserved, in order, so the evaluation interface is
/// unchanged.
///
/// Returns the new netlist and the statistics.
pub fn optimize(nl: &Netlist) -> (Netlist, OptimizeStats) {
    let n = nl.net_count();
    // Pass 1: resolve every net to a constant or a canonical (net, inverted)
    // pair, building the new netlist lazily.
    let mut out = Netlist::new();
    let mut resolved: Vec<Resolved> = Vec::with_capacity(n);
    // Cache of emitted NOT gates so x and ¬x are shared.
    let mut not_cache: HashMap<Net, Net> = HashMap::new();
    let mut input_iter = nl.input_names().iter();
    let mut folded = 0usize;

    // Materialize a Resolved as a concrete net in the output netlist.
    fn materialize(out: &mut Netlist, not_cache: &mut HashMap<Net, Net>, r: Resolved) -> Net {
        match r {
            Resolved::Const(v) => out.constant(v),
            Resolved::Wire(net, false) => net,
            Resolved::Wire(net, true) => {
                if let Some(&inv) = not_cache.get(&net) {
                    inv
                } else {
                    let inv = out.not(net);
                    not_cache.insert(net, inv);
                    inv
                }
            }
        }
    }

    for idx in 0..n {
        let kind = nl.gate(Net(idx as u32));
        let res = match kind {
            GateKind::Input => {
                let name = input_iter.next().expect("input names match input gates");
                Resolved::Wire(out.input(name.clone()), false)
            }
            GateKind::Const(v) => Resolved::Const(v),
            GateKind::Not(a) => match resolved[a.index()] {
                Resolved::Const(v) => Resolved::Const(!v),
                Resolved::Wire(w, inv) => Resolved::Wire(w, !inv),
            },
            GateKind::And(a, b) | GateKind::Or(a, b) => {
                let is_and = matches!(kind, GateKind::And(..));
                let ra = resolved[a.index()];
                let rb = resolved[b.index()];
                // Normalize constants to the left.
                let (rc, rx) = match (ra, rb) {
                    (Resolved::Const(_), _) => (Some(ra), rb),
                    (_, Resolved::Const(_)) => (Some(rb), ra),
                    _ => (None, ra),
                };
                if let Some(Resolved::Const(c)) = rc {
                    let absorbing = if is_and { !c } else { c };
                    if absorbing {
                        Resolved::Const(!is_and)
                    } else {
                        // identity element: result is the other operand
                        if matches!(ra, Resolved::Const(_)) {
                            rb
                        } else {
                            ra
                        }
                    }
                } else if ra == rb {
                    rx // x ∧ x = x ∨ x = x
                } else if let (Resolved::Wire(wa, ia), Resolved::Wire(wb, ib)) = (ra, rb) {
                    if wa == wb && ia != ib {
                        // x ∧ ¬x = 0;  x ∨ ¬x = 1
                        Resolved::Const(!is_and)
                    } else {
                        let na = materialize(&mut out, &mut not_cache, ra);
                        let nb = materialize(&mut out, &mut not_cache, rb);
                        let g = if is_and {
                            out.and(na, nb)
                        } else {
                            out.or(na, nb)
                        };
                        Resolved::Wire(g, false)
                    }
                } else {
                    unreachable!("constant cases handled above")
                }
            }
            GateKind::Xor(a, b) => {
                let ra = resolved[a.index()];
                let rb = resolved[b.index()];
                match (ra, rb) {
                    (Resolved::Const(x), Resolved::Const(y)) => Resolved::Const(x ^ y),
                    (Resolved::Const(c), w) | (w, Resolved::Const(c)) => {
                        if let Resolved::Wire(net, inv) = w {
                            Resolved::Wire(net, inv ^ c)
                        } else {
                            unreachable!("both-const handled above")
                        }
                    }
                    (Resolved::Wire(wa, ia), Resolved::Wire(wb, ib)) => {
                        if wa == wb {
                            Resolved::Const(ia ^ ib)
                        } else {
                            let na = materialize(&mut out, &mut not_cache, ra);
                            let nb = materialize(&mut out, &mut not_cache, rb);
                            Resolved::Wire(out.xor(na, nb), false)
                        }
                    }
                }
            }
            GateKind::Mux { sel, a, b } => {
                let rs = resolved[sel.index()];
                let ra = resolved[a.index()];
                let rb = resolved[b.index()];
                match rs {
                    Resolved::Const(false) => ra,
                    Resolved::Const(true) => rb,
                    Resolved::Wire(..) if ra == rb => ra,
                    Resolved::Wire(..) => {
                        // mux(s, 0, 1) = s; mux(s, 1, 0) = ¬s
                        if let (Resolved::Const(ca), Resolved::Const(cb)) = (ra, rb) {
                            if !ca && cb {
                                rs
                            } else if ca && !cb {
                                if let Resolved::Wire(w, i) = rs {
                                    Resolved::Wire(w, !i)
                                } else {
                                    unreachable!("rs is a wire in this arm")
                                }
                            } else {
                                unreachable!("equal consts handled by ra == rb")
                            }
                        } else {
                            let ns = materialize(&mut out, &mut not_cache, rs);
                            let na = materialize(&mut out, &mut not_cache, ra);
                            let nb = materialize(&mut out, &mut not_cache, rb);
                            Resolved::Wire(out.mux(ns, na, nb), false)
                        }
                    }
                }
            }
        };
        resolved.push(res);
        if !matches!(kind, GateKind::Input | GateKind::Const(_))
            && matches!(res, Resolved::Const(_))
        {
            folded += 1;
        }
    }

    // Outputs, resolving aliases (may add NOT/Const gates).
    for (name, net) in nl.outputs() {
        let r = resolved[net.index()];
        let concrete = materialize(&mut out, &mut not_cache, r);
        out.output(name.clone(), concrete);
    }

    // Pass 2: dead-gate elimination by rebuilding from the live cone.
    let pruned = prune_dead(&out);
    let original_gates = nl.census().logic_gates();
    let intermediate_gates = out.census().logic_gates();
    let optimized_gates = pruned.census().logic_gates();
    let stats = OptimizeStats {
        original_gates,
        optimized_gates,
        folded,
        dead_removed: intermediate_gates - optimized_gates,
    };
    (pruned, stats)
}

/// Rebuilds a netlist keeping only gates in the fan-in cone of an output
/// (inputs are always kept, preserving the evaluation interface).
fn prune_dead(nl: &Netlist) -> Netlist {
    let n = nl.net_count();
    let mut live = vec![false; n];
    let mut stack: Vec<Net> = nl.outputs().iter().map(|(_, net)| *net).collect();
    while let Some(net) = stack.pop() {
        if live[net.index()] {
            continue;
        }
        live[net.index()] = true;
        stack.extend(nl.gate(net).fanin());
    }
    let mut out = Netlist::new();
    let mut remap: Vec<Option<Net>> = vec![None; n];
    let mut input_iter = nl.input_names().iter();
    for idx in 0..n {
        let net = Net(idx as u32);
        let kind = nl.gate(net);
        if let GateKind::Input = kind {
            // Inputs survive unconditionally to keep eval() positional.
            let name = input_iter.next().expect("input names align");
            remap[idx] = Some(out.input(name.clone()));
            continue;
        }
        if !live[idx] {
            continue;
        }
        let mapped = |n: Net, remap: &[Option<Net>]| {
            remap[n.index()].expect("fan-in of a live gate is live")
        };
        remap[idx] = Some(match kind {
            GateKind::Input => unreachable!("handled above"),
            GateKind::Const(v) => out.constant(v),
            GateKind::Not(a) => {
                let a = mapped(a, &remap);
                out.not(a)
            }
            GateKind::And(a, b) => {
                let (a, b) = (mapped(a, &remap), mapped(b, &remap));
                out.and(a, b)
            }
            GateKind::Or(a, b) => {
                let (a, b) = (mapped(a, &remap), mapped(b, &remap));
                out.or(a, b)
            }
            GateKind::Xor(a, b) => {
                let (a, b) = (mapped(a, &remap), mapped(b, &remap));
                out.xor(a, b)
            }
            GateKind::Mux { sel, a, b } => {
                let (s, a, b) = (mapped(sel, &remap), mapped(a, &remap), mapped(b, &remap));
                out.mux(s, a, b)
            }
        });
    }
    for (name, net) in nl.outputs() {
        out.output(name.clone(), remap[net.index()].expect("outputs are live"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{bit_sorter, bnb_network, splitter};

    /// Exhaustive equivalence on a hand-built circuit full of foldable
    /// patterns.
    #[test]
    fn folds_constants_and_identities() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let t = nl.constant(true);
        let f = nl.constant(false);
        let and_t = nl.and(a, t); // = a
        let and_f = nl.and(a, f); // = 0
        let or_f = nl.or(b, f); // = b
        let xor_t = nl.xor(a, t); // = ¬a
        let nn = nl.not(xor_t); // = a
        let mux_c = nl.mux(f, a, b); // = a
        let x_and_x = nl.and(a, a); // = a
        let x_or_notx = {
            let na = nl.not(a);
            nl.or(a, na) // = 1
        };
        for (i, net) in [and_t, and_f, or_f, xor_t, nn, mux_c, x_and_x, x_or_notx]
            .into_iter()
            .enumerate()
        {
            nl.output(format!("o{i}"), net);
        }
        let (opt, stats) = optimize(&nl);
        // Everything folds to wires/constants except the one real inverter
        // needed for the ¬a output.
        assert_eq!(opt.census().logic_gates(), 1);
        assert!(stats.reduction() > 0.8, "{stats:?}");
        for bits in 0..4u8 {
            let input = [bits & 1 == 1, bits & 2 != 0];
            assert_eq!(
                nl.eval(&input).unwrap(),
                opt.eval(&input).unwrap(),
                "bits {bits:b}"
            );
        }
    }

    #[test]
    fn dead_gates_are_removed() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let _dead = nl.xor(a, b); // no output uses this
        let live = nl.and(a, b);
        nl.output("live", live);
        let (opt, stats) = optimize(&nl);
        assert_eq!(opt.census().logic_gates(), 1);
        assert_eq!(stats.original_gates, 2);
        assert_eq!(stats.optimized_gates, 1);
    }

    #[test]
    fn splitter_optimization_preserves_behaviour_exhaustively() {
        for p in [1usize, 2, 3] {
            let n = 1usize << p;
            let mut nl = Netlist::new();
            let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
            let sp = splitter(&mut nl, &ins);
            for (j, &o) in sp.outputs.iter().enumerate() {
                nl.output(format!("o{j}"), o);
            }
            let (opt, stats) = optimize(&nl);
            assert!(stats.optimized_gates <= stats.original_gates);
            for pattern in 0..(1u32 << n) {
                let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                assert_eq!(
                    nl.eval(&bits).unwrap(),
                    opt.eval(&bits).unwrap(),
                    "sp({p}) pattern {pattern:b}"
                );
            }
        }
    }

    #[test]
    fn bsn_optimization_equivalence_exhaustive() {
        let n = 8usize;
        let mut nl = Netlist::new();
        let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
        let outs = bit_sorter(&mut nl, &ins);
        for (j, &o) in outs.iter().enumerate() {
            nl.output(format!("o{j}"), o);
        }
        let (opt, stats) = optimize(&nl);
        assert!(
            stats.optimized_gates < stats.original_gates,
            "BSN has removable slack"
        );
        for pattern in 0..256u32 {
            let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
            assert_eq!(nl.eval(&bits).unwrap(), opt.eval(&bits).unwrap());
        }
    }

    #[test]
    fn full_bnb_optimization_equivalence() {
        use bnb_topology::perm::Permutation;
        use bnb_topology::record::records_for_permutation;
        let net = bnb_network(2, 2);
        let (opt, stats) = optimize(net.netlist());
        assert!(stats.optimized_gates < stats.original_gates);
        for k in 0..24u64 {
            let p = Permutation::nth_lexicographic(4, k);
            let recs = records_for_permutation(&p);
            // Encode manually, exactly as BnbNetlist::route does.
            let mut bits = Vec::new();
            for r in &recs {
                for b in (0..2).rev() {
                    bits.push(r.dest() >> b & 1 == 1);
                }
                for t in 0..2 {
                    bits.push(r.data() >> t & 1 == 1);
                }
            }
            assert_eq!(
                net.netlist().eval(&bits).unwrap(),
                opt.eval(&bits).unwrap(),
                "perm {p}"
            );
        }
    }

    #[test]
    fn optimization_is_idempotent() {
        let net = bnb_network(2, 1);
        let (opt1, _) = optimize(net.netlist());
        let (opt2, stats2) = optimize(&opt1);
        assert_eq!(
            opt1.census().logic_gates(),
            opt2.census().logic_gates(),
            "second pass must find nothing: {stats2:?}"
        );
    }

    #[test]
    fn stats_reduction_handles_empty() {
        let s = OptimizeStats::default();
        assert_eq!(s.reduction(), 0.0);
    }
}
