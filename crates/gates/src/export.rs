//! Netlist export: Graphviz DOT for visualization and structural Verilog
//! for synthesis hand-off.
//!
//! The paper describes a hardware design; a credible open-source release
//! of it must be able to hand the circuit to standard tooling. The Verilog
//! emitted here is plain structural gate instantiation (`and`, `or`,
//! `not`, `xor` primitives and a mux assign), one wire per net, suitable
//! for any synthesis or simulation flow.

use std::fmt::Write as _;

use crate::netlist::{GateKind, Net, Netlist};

/// Renders a netlist as a Graphviz digraph: one node per gate, edges along
/// fan-in, inputs and outputs highlighted.
pub fn to_dot(nl: &Netlist, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let mut input_iter = nl.input_names().iter();
    for idx in 0..nl.net_count() {
        let net = Net(idx as u32);
        match nl.gate(net) {
            GateKind::Input => {
                let label = input_iter.next().expect("names align");
                let _ = writeln!(
                    out,
                    "  n{idx} [shape=invtriangle, label=\"{label}\", color=blue];"
                );
            }
            GateKind::Const(v) => {
                let _ = writeln!(
                    out,
                    "  n{idx} [shape=plaintext, label=\"{}\"];",
                    u8::from(v)
                );
            }
            GateKind::Not(_) => {
                let _ = writeln!(out, "  n{idx} [shape=circle, label=\"¬\"];");
            }
            GateKind::And(..) => {
                let _ = writeln!(out, "  n{idx} [shape=box, label=\"∧\"];");
            }
            GateKind::Or(..) => {
                let _ = writeln!(out, "  n{idx} [shape=box, label=\"∨\"];");
            }
            GateKind::Xor(..) => {
                let _ = writeln!(out, "  n{idx} [shape=box, label=\"⊕\"];");
            }
            GateKind::Mux { .. } => {
                let _ = writeln!(out, "  n{idx} [shape=trapezium, label=\"mux\"];");
            }
        }
        for f in nl.gate(net).fanin() {
            let _ = writeln!(out, "  n{} -> n{idx};", f.index());
        }
    }
    for (oname, net) in nl.outputs() {
        let safe = sanitize(oname);
        let _ = writeln!(
            out,
            "  \"out_{safe}\" [shape=triangle, label=\"{oname}\", color=red];"
        );
        let _ = writeln!(out, "  n{} -> \"out_{safe}\";", net.index());
    }
    let _ = writeln!(out, "}}");
    out
}

/// Emits the netlist as a structural Verilog module named `name`.
///
/// Inputs and outputs keep their declared names (sanitized to Verilog
/// identifiers); internal nets become `w<index>`.
pub fn to_verilog(nl: &Netlist, name: &str) -> String {
    let mut out = String::new();
    let inputs: Vec<String> = nl.input_names().iter().map(|n| sanitize(n)).collect();
    let outputs: Vec<String> = nl.outputs().iter().map(|(n, _)| sanitize(n)).collect();
    let _ = writeln!(out, "module {name} (");
    let mut ports: Vec<String> = inputs.iter().map(|n| format!("  input wire {n}")).collect();
    ports.extend(outputs.iter().map(|n| format!("  output wire {n}")));
    let _ = writeln!(out, "{}", ports.join(",\n"));
    let _ = writeln!(out, ");");
    // Map every net to an expression name.
    let mut names: Vec<String> = Vec::with_capacity(nl.net_count());
    let mut input_iter = inputs.iter();
    for idx in 0..nl.net_count() {
        let net = Net(idx as u32);
        let kind = nl.gate(net);
        let wire = match kind {
            GateKind::Input => input_iter.next().expect("names align").clone(),
            _ => format!("w{idx}"),
        };
        match kind {
            GateKind::Input => {}
            GateKind::Const(v) => {
                let _ = writeln!(out, "  wire {wire} = 1'b{};", u8::from(v));
            }
            GateKind::Not(a) => {
                let _ = writeln!(out, "  wire {wire};");
                let _ = writeln!(out, "  not g{idx} ({wire}, {});", names[a.index()]);
            }
            GateKind::And(a, b) => {
                let _ = writeln!(out, "  wire {wire};");
                let _ = writeln!(
                    out,
                    "  and g{idx} ({wire}, {}, {});",
                    names[a.index()],
                    names[b.index()]
                );
            }
            GateKind::Or(a, b) => {
                let _ = writeln!(out, "  wire {wire};");
                let _ = writeln!(
                    out,
                    "  or g{idx} ({wire}, {}, {});",
                    names[a.index()],
                    names[b.index()]
                );
            }
            GateKind::Xor(a, b) => {
                let _ = writeln!(out, "  wire {wire};");
                let _ = writeln!(
                    out,
                    "  xor g{idx} ({wire}, {}, {});",
                    names[a.index()],
                    names[b.index()]
                );
            }
            GateKind::Mux { sel, a, b } => {
                let _ = writeln!(out, "  wire {wire};");
                let _ = writeln!(
                    out,
                    "  assign {wire} = {} ? {} : {};",
                    names[sel.index()],
                    names[b.index()],
                    names[a.index()]
                );
            }
        }
        names.push(wire);
    }
    for (oname, net) in nl.outputs() {
        let _ = writeln!(
            out,
            "  assign {} = {};",
            sanitize(oname),
            names[net.index()]
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Replaces characters illegal in Verilog identifiers.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{bnb_network, function_node};

    fn tiny() -> Netlist {
        let mut nl = Netlist::new();
        let x1 = nl.input("x1");
        let x2 = nl.input("x2");
        let zd = nl.input("zd");
        let node = function_node(&mut nl, x1, x2, zd);
        nl.output("zu", node.zu);
        nl.output("y1", node.y1);
        nl.output("y2", node.y2);
        nl
    }

    #[test]
    fn dot_contains_all_gates_and_terminals() {
        let nl = tiny();
        let dot = to_dot(&nl, "fn_node");
        assert!(dot.starts_with("digraph \"fn_node\""));
        assert!(dot.contains("⊕"));
        assert!(dot.contains("∧"));
        assert!(dot.contains("out_zu"));
        assert!(dot.contains("label=\"x1\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn verilog_declares_ports_and_gates() {
        let nl = tiny();
        let v = to_verilog(&nl, "fn_node");
        assert!(v.starts_with("module fn_node ("));
        assert!(v.contains("input wire x1"));
        assert!(v.contains("output wire zu"));
        assert!(v.contains("xor g"));
        assert!(v.contains("and g"));
        assert!(v.contains("or g"));
        assert!(v.contains("not g"));
        assert!(v.contains("assign zu = "));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn verilog_handles_dots_in_names() {
        let net = bnb_network(2, 1);
        let v = to_verilog(net.netlist(), "bnb4");
        // "in0.a0" must become a legal identifier.
        assert!(v.contains("input wire in0_a0"));
        assert!(v.contains("output wire out3_d0"));
        assert!(!v.contains("in0.a0"));
        // Muxes appear as ternary assigns.
        assert!(v.contains(" ? "));
    }

    #[test]
    fn verilog_line_count_tracks_gate_count() {
        let net = bnb_network(2, 0);
        let v = to_verilog(net.netlist(), "bnb");
        let gate_lines = v
            .lines()
            .filter(|l| l.trim_start().starts_with(['a', 'o', 'x', 'n']))
            .count();
        assert!(gate_lines >= net.netlist().census().logic_gates() / 2);
    }

    #[test]
    fn sanitize_covers_edge_cases() {
        assert_eq!(sanitize("in0.a1"), "in0_a1");
        assert_eq!(sanitize("0abc"), "n0abc");
        assert_eq!(sanitize(""), "n");
        assert_eq!(sanitize("ok_name"), "ok_name");
    }

    #[test]
    fn dot_of_constants() {
        let mut nl = Netlist::new();
        let c = nl.constant(true);
        nl.output("one", c);
        let dot = to_dot(&nl, "c");
        assert!(dot.contains("label=\"1\""));
    }
}
