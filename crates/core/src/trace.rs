//! Per-column routing traces.
//!
//! A BNB route traverses `m(m+1)/2` switch columns (paper eq. (7)). The
//! trace records, for every column, the switch controls chosen by the
//! arbiters and the line contents *after* the column's switches and wiring —
//! enough to replay, render, or audit a route.

use std::fmt;
use std::fmt::Write as _;

use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// State after one switch column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSnapshot {
    /// Main-network stage this column belongs to.
    pub main_stage: usize,
    /// Internal stage within the nested networks of that main stage.
    pub internal_stage: usize,
    /// One control per 2×2 switch, top to bottom: `false` = straight,
    /// `true` = exchange.
    pub controls: Vec<bool>,
    /// Line contents after the column's switches *and* the following
    /// wiring.
    pub lines: Vec<Record>,
}

/// A complete route trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTrace {
    /// `log2` of the network width.
    pub m: usize,
    /// The input records.
    pub inputs: Vec<Record>,
    /// One snapshot per switch column, in traversal order.
    pub columns: Vec<ColumnSnapshot>,
}

impl RouteTrace {
    /// The outputs (line contents after the last column).
    ///
    /// # Panics
    ///
    /// Panics if the trace has no columns (never produced by the router).
    pub fn outputs(&self) -> &[Record] {
        &self
            .columns
            .last()
            .expect("route traverses at least one column")
            .lines
    }

    /// Number of switch columns traversed — must equal `m(m+1)/2`
    /// (paper eq. (7)).
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Total exchanges performed (switches set to cross).
    pub fn exchange_count(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.controls.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Exchanges per column, in traversal order — a routing-activity
    /// profile (identity traffic exercises few switches, reversals many).
    pub fn exchange_histogram(&self) -> Vec<usize> {
        self.columns
            .iter()
            .map(|c| c.controls.iter().filter(|&&b| b).count())
            .collect()
    }

    /// Fraction of all switch settings that are exchanges, `0.0..=1.0`.
    pub fn exchange_rate(&self) -> f64 {
        let switches: usize = self.columns.iter().map(|c| c.controls.len()).sum();
        if switches == 0 {
            0.0
        } else {
            self.exchange_count() as f64 / switches as f64
        }
    }

    /// Renders the trace as a destination matrix: one row per column,
    /// showing each line's current destination address.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = format!("{}", (1usize << self.m) - 1).len().max(2);
        let _ = write!(out, "in      :");
        for r in &self.inputs {
            let _ = write!(out, " {:>width$}", r.dest());
        }
        let _ = writeln!(out);
        for c in &self.columns {
            let _ = write!(out, "col {}.{} :", c.main_stage, c.internal_stage);
            for r in &c.lines {
                let _ = write!(out, " {:>width$}", r.dest());
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl fmt::Display for RouteTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> RouteTrace {
        RouteTrace {
            m: 1,
            inputs: vec![Record::new(1, 0), Record::new(0, 1)],
            columns: vec![ColumnSnapshot {
                main_stage: 0,
                internal_stage: 0,
                controls: vec![true],
                lines: vec![Record::new(0, 1), Record::new(1, 0)],
            }],
        }
    }

    #[test]
    fn outputs_come_from_last_column() {
        let t = tiny_trace();
        assert_eq!(t.outputs()[0], Record::new(0, 1));
        assert_eq!(t.column_count(), 1);
        assert_eq!(t.exchange_count(), 1);
    }

    #[test]
    fn histogram_and_rate_agree_with_count() {
        let t = tiny_trace();
        assert_eq!(t.exchange_histogram(), vec![1]);
        assert!((t.exchange_rate() - 1.0).abs() < 1e-12);
        let empty = RouteTrace {
            m: 1,
            inputs: vec![],
            columns: vec![],
        };
        assert_eq!(empty.exchange_rate(), 0.0);
    }

    #[test]
    fn render_shows_destinations_per_column() {
        let t = tiny_trace();
        let s = t.render();
        assert!(s.contains("in      :  1  0"));
        assert!(s.contains("col 0.0 :  0  1"));
        assert_eq!(s, t.to_string());
    }
}
