//! The bit-sorter network (BSN) of Definition 4 and Theorem 1.
//!
//! A `2^k`-input BSN is a generalized baseline network whose switching boxes
//! are splitters: stage `l` holds `2^l` splitters `sp(k−l)`. If exactly half
//! of the input bits are 1, the outputs satisfy `out[j] = j mod 2` — all
//! zeros on even lines, all ones on odd lines (Theorem 1). The subsequent
//! unshuffle of the *enclosing* network then sends the zeros to the upper
//! half and the ones to the lower half.

use bnb_topology::bitops::unshuffle;
use bnb_topology::connection::require_power_of_two;
use bnb_topology::gbn::Gbn;

use crate::error::RouteError;
use crate::splitter::{check_balanced, split, SplitterSite};

/// A `2^k`-input bit-sorter network.
///
/// # Example
///
/// ```
/// use bnb_core::bsn::BitSorter;
///
/// let bsn = BitSorter::with_inputs(8)?;
/// let out = bsn.route(&[true, false, true, false, false, true, false, true])?;
/// assert_eq!(out, vec![false, true, false, true, false, true, false, true]);
/// # Ok::<(), bnb_core::RouteError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSorter {
    k: usize,
}

impl BitSorter {
    /// A BSN over `2^k` lines.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "bit-sorter needs at least 2 lines");
        BitSorter { k }
    }

    /// A BSN over `n` lines.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let k = require_power_of_two(n)?;
        if k == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(BitSorter { k })
    }

    /// `log2` of the line count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of lines.
    pub fn inputs(&self) -> usize {
        1 << self.k
    }

    /// The underlying GBN topology.
    pub fn gbn(&self) -> Gbn {
        Gbn::new(self.k)
    }

    /// Routes a balanced bit vector to the interleaved `0101…` pattern
    /// (Theorem 1), validating the splitter balance assumption at every
    /// stage.
    ///
    /// # Errors
    ///
    /// - [`RouteError::WidthMismatch`] if `bits.len()` differs from the
    ///   network width.
    /// - [`RouteError::UnbalancedSplitter`] if any splitter receives an
    ///   unbalanced input — which happens at stage 0 already unless exactly
    ///   half of the bits are 1.
    pub fn route(&self, bits: &[bool]) -> Result<Vec<bool>, RouteError> {
        self.route_inner(bits, true)
    }

    /// Routes without balance validation — hardware semantics: unbalanced
    /// inputs are still routed, just without the Theorem 1 guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] if the width is wrong.
    pub fn route_permissive(&self, bits: &[bool]) -> Result<Vec<bool>, RouteError> {
        self.route_inner(bits, false)
    }

    fn route_inner(&self, bits: &[bool], strict: bool) -> Result<Vec<bool>, RouteError> {
        let n = self.inputs();
        if bits.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: bits.len(),
            });
        }
        let k = self.k;
        let mut lines = bits.to_vec();
        for stage in 0..k {
            let size = 1usize << (k - stage);
            let mut next = Vec::with_capacity(n);
            for start in (0..n).step_by(size) {
                let span = &lines[start..start + size];
                if strict {
                    check_balanced(
                        span,
                        SplitterSite {
                            main_stage: 0,
                            internal_stage: stage,
                            first_line: start,
                        },
                    )?;
                }
                next.extend(split(span).outputs);
            }
            if stage + 1 < k {
                let mut wired = vec![false; n];
                for (j, &b) in next.iter().enumerate() {
                    wired[unshuffle(k - stage, k, j)] = b;
                }
                lines = wired;
            } else {
                lines = next;
            }
        }
        Ok(lines)
    }

    /// Total splitters in the network: stage `l` has `2^l` of them, so
    /// `2^k − 1` in total.
    pub fn splitter_count(&self) -> usize {
        (1 << self.k) - 1
    }

    /// Total arbiter function nodes across all splitters — the
    /// `P·log(P/2) − P/2 + 1` of paper eq. (4).
    pub fn arbiter_node_count(&self) -> usize {
        (0..self.k)
            .map(|l| (1usize << l) * crate::arbiter::node_count(self.k - l))
            .sum()
    }

    /// Total 2×2 switches in the splitters: `k · 2^{k−1}` (one column of
    /// `2^{k−1}` switches per stage) — matches eq. (3) for one slice.
    pub fn switch_count(&self) -> usize {
        self.k * (1 << (self.k - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_interleaved(out: &[bool]) -> bool {
        out.iter().enumerate().all(|(j, &b)| b == (j % 2 == 1))
    }

    /// Theorem 1, exhaustively for k = 1..4: every balanced input becomes
    /// `0101…`.
    #[test]
    fn theorem_1_exhaustive() {
        for k in 1..=4usize {
            let bsn = BitSorter::new(k);
            let n = 1 << k;
            for pattern in 0..(1u32 << n) {
                if pattern.count_ones() as usize != n / 2 {
                    continue;
                }
                let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                let out = bsn.route(&bits).unwrap();
                assert!(
                    is_interleaved(&out),
                    "BSN({k}) failed on {pattern:b}: {out:?}"
                );
            }
        }
    }

    #[test]
    fn unbalanced_input_is_rejected_with_site() {
        let bsn = BitSorter::new(3);
        let err = bsn.route(&[true; 8]).unwrap_err();
        match err {
            RouteError::UnbalancedSplitter {
                internal_stage,
                width,
                ones,
                ..
            } => {
                // All-ones has even parity, so stage 0 passes (8 ones is
                // even); the failure surfaces at the sp(1) stage.
                assert_eq!(width, 2);
                assert_eq!(ones, 2);
                assert!(internal_stage > 0);
            }
            other => panic!("expected UnbalancedSplitter, got {other:?}"),
        }
    }

    #[test]
    fn odd_parity_rejected_at_first_stage() {
        let bsn = BitSorter::new(3);
        let mut bits = [false; 8];
        bits[0] = true;
        bits[1] = true;
        bits[2] = true;
        let err = bsn.route(&bits).unwrap_err();
        assert!(matches!(
            err,
            RouteError::UnbalancedSplitter {
                internal_stage: 0,
                ones: 3,
                ..
            }
        ));
    }

    #[test]
    fn permissive_mode_routes_anything() {
        let bsn = BitSorter::new(3);
        let out = bsn.route_permissive(&[true; 8]).unwrap();
        assert_eq!(out.iter().filter(|&&b| b).count(), 8, "bits conserved");
    }

    #[test]
    fn width_mismatch_is_detected() {
        let bsn = BitSorter::new(3);
        let err = bsn.route(&[true, false]).unwrap_err();
        assert_eq!(
            err,
            RouteError::WidthMismatch {
                expected: 8,
                actual: 2
            }
        );
    }

    #[test]
    fn counts_match_paper_formulas() {
        for k in 1..=10usize {
            let bsn = BitSorter::new(k);
            let p = 1u64 << k;
            // eq. (4): arbiter nodes = P log(P/2) − P/2 + 1.
            let expected = p as i64 * (k as i64 - 1) - p as i64 / 2 + 1;
            assert_eq!(bsn.arbiter_node_count() as i64, expected.max(0), "k = {k}");
            // eq. (3): switches per slice = (P/2)·log P.
            assert_eq!(bsn.switch_count() as u64, (p / 2) * k as u64);
            assert_eq!(bsn.splitter_count() as u64, p - 1);
        }
    }

    #[test]
    fn with_inputs_validates() {
        assert!(BitSorter::with_inputs(8).is_ok());
        assert!(BitSorter::with_inputs(6).is_err());
        assert!(BitSorter::with_inputs(1).is_err());
    }

    #[test]
    fn large_random_balanced_inputs_sort() {
        use rand::seq::SliceRandom;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for k in [5usize, 8, 10] {
            let bsn = BitSorter::new(k);
            let n = 1 << k;
            let mut bits: Vec<bool> = (0..n).map(|j| j % 2 == 0).collect();
            for _ in 0..10 {
                bits.shuffle(&mut rng);
                let out = bsn.route(&bits).unwrap();
                assert!(is_interleaved(&out), "BSN({k}) failed");
            }
        }
    }
}
