//! Renderers regenerating the paper's structural figures from constructed
//! objects: Fig. 2 (the BNB network), Fig. 3 (the nested-network profile)
//! and Fig. 4 (the splitter).

use std::fmt::Write as _;

use bnb_topology::gbn::{BoxId, Gbn};

use crate::network::BnbNetwork;

/// Renders the content of paper Fig. 2: the slice structure of
/// `B(m, B_k^q(i, SB_k))` — which slice of each nested network is the
/// bit-sorter, and what every other slice is.
pub fn render_network(net: &BnbNetwork) -> String {
    let m = net.m();
    let q = net.q();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "BNB network B({m}, B_k^{q}(i, SB_k)) — {} inputs, q = {q} slices ({} address + {} data)",
        net.inputs(),
        m,
        net.w()
    );
    for i in 0..m {
        let k = m - i;
        let _ = writeln!(
            out,
            "main stage-{i}: {} nested network(s) of {} lines, {} internal stages",
            1usize << i,
            1usize << k,
            k
        );
        for slice in 0..q {
            let role = if slice == i {
                "bit-sorter network (splitters sp(·)) — drives all slices"
            } else if slice < m {
                "switch slice sw(·) for address bit (follows BSN)"
            } else {
                "switch slice sw(·) for data bit (follows BSN)"
            };
            let _ = writeln!(out, "    slice-{slice}: {role}");
        }
    }
    out
}

/// Renders the content of paper Fig. 3: the tiling of nested networks
/// `NB(i, l)` over the main network, with line spans.
pub fn render_profile(m: usize) -> String {
    let gbn = Gbn::new(m);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Profile of the {}-input BNB network (1-bit slice):",
        gbn.inputs()
    );
    for stage in 0..m {
        let _ = write!(out, "stage-{stage}: ");
        for index in 0..gbn.boxes_in_stage(stage) {
            let id = BoxId { stage, index };
            let first = gbn.line_of(id, 0);
            let last = first + gbn.box_size(stage) - 1;
            let _ = write!(out, "[{id} {first}..{last}] ");
        }
        let _ = writeln!(out);
        if stage + 1 < m {
            let _ = writeln!(out, "         --- {} ---", gbn.connection_after(stage));
        }
    }
    out
}

/// Renders the content of paper Fig. 4: the splitter `sp(p)` as its arbiter
/// tree levels plus switch bank.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn render_splitter(p: usize) -> String {
    assert!(p >= 1, "splitter needs at least 2 lines");
    let n = 1usize << p;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sp({p}): {n}-input splitter = A({p}) arbiter + sw({p}) switch bank"
    );
    if p == 1 {
        let _ = writeln!(out, "  A(1) is wiring only: the input bit sets the switch");
    } else {
        for level in 1..=p {
            let nodes = 1usize << (p - level);
            let _ = writeln!(
                out,
                "  arbiter level {level}: {nodes} function node(s) (z_u = x1⊕x2 up; flags down)"
            );
        }
        let _ = writeln!(out, "  root echoes its own z_u as its incoming flag");
    }
    let _ = writeln!(
        out,
        "  switch bank: {} sw(1) switches, control_t = s(2t) ⊕ flag_t",
        n / 2
    );
    let _ = writeln!(
        out,
        "  even outputs -> upper sp({}), odd outputs -> lower sp({})",
        p.saturating_sub(1),
        p.saturating_sub(1)
    );
    out
}

/// Renders a route trace as a switch-state diagram: one column of
/// characters per switch column, `=` for a straight switch and `X` for an
/// exchange, one row per switch (pair of lines).
///
/// ```text
/// sw0 | = X = ...
/// sw1 | X = = ...
/// ```
pub fn render_switch_diagram(trace: &crate::trace::RouteTrace) -> String {
    let mut out = String::new();
    let switches = trace.columns.first().map_or(0, |c| c.controls.len());
    let _ = write!(out, "      ");
    for c in &trace.columns {
        let _ = write!(out, "{}.{} ", c.main_stage, c.internal_stage);
    }
    let _ = writeln!(out);
    for sw in 0..switches {
        let _ = write!(out, "sw{sw:<3}|");
        for c in &trace.columns {
            let mark = if c.controls[sw] { 'X' } else { '=' };
            let _ = write!(out, "  {mark} ");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_diagram_shows_states_per_column() {
        use bnb_topology::perm::Permutation;
        use bnb_topology::record::records_for_permutation;
        let net = BnbNetwork::new(2);
        let p = Permutation::try_from(vec![3, 1, 0, 2]).unwrap();
        let (_, trace) = net.route_traced(&records_for_permutation(&p)).unwrap();
        let art = render_switch_diagram(&trace);
        assert!(art.contains("sw0"));
        assert!(art.contains("sw1"));
        // 3 columns for m = 2.
        assert!(art.contains("0.0"));
        assert!(art.contains("1.0"));
        let marks = art.matches('X').count() + art.matches('=').count();
        assert_eq!(marks, 2 * 3, "one mark per switch per column");
        // Marks agree with the trace's exchange count.
        assert_eq!(art.matches('X').count(), trace.exchange_count());
    }

    #[test]
    fn network_render_marks_bsn_slice_diagonally() {
        let net = BnbNetwork::builder(3).data_width(0).build();
        let s = render_network(&net);
        // Fig. 2: slice i of main stage i is the BSN.
        assert!(s.contains("main stage-0"));
        assert!(s.contains("main stage-2"));
        // Each stage declares exactly one bit-sorter slice.
        assert_eq!(s.matches("bit-sorter network").count(), 3);
    }

    #[test]
    fn profile_lists_all_nested_networks() {
        let s = render_profile(3);
        for (stage, count) in [(0usize, 1usize), (1, 2), (2, 4)] {
            for index in 0..count {
                assert!(
                    s.contains(&format!("NB({stage},{index})")),
                    "missing NB({stage},{index})"
                );
            }
        }
        assert!(s.contains("2^3-unshuffle"));
    }

    #[test]
    fn splitter_render_shows_tree_and_switches() {
        let s = render_splitter(3);
        assert!(s.contains("arbiter level 1: 4 function node(s)"));
        assert!(s.contains("arbiter level 3: 1 function node(s)"));
        assert!(s.contains("4 sw(1) switches"));
        let s1 = render_splitter(1);
        assert!(s1.contains("wiring only"));
    }
}
