//! Routing errors.

use std::error::Error;
use std::fmt;

use bnb_topology::TopologyError;

/// Errors raised while routing records through a BNB network or one of its
/// components.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The number of input records differs from the network width.
    WidthMismatch {
        /// Network width `N`.
        expected: usize,
        /// Records provided.
        actual: usize,
    },
    /// A record's destination does not fit in the network's `m` address
    /// bits.
    DestinationTooWide {
        /// The offending destination.
        dest: usize,
        /// Network width `N`.
        n: usize,
    },
    /// A record's data word does not fit in the network's `w` data bits.
    DataTooWide {
        /// The offending data word.
        data: u64,
        /// Configured data width.
        w: usize,
    },
    /// Two records share a destination, so the input is not a permutation
    /// (detected under [`RoutePolicy::Strict`]).
    ///
    /// [`RoutePolicy::Strict`]: crate::network::RoutePolicy::Strict
    DuplicateDestination {
        /// The shared destination address.
        dest: usize,
        /// Input line of the first record with this destination.
        first_input: usize,
        /// Input line of the second record with this destination.
        second_input: usize,
    },
    /// A splitter received an unbalanced bit vector — an odd number of ones
    /// for `sp(p≥2)`, or two equal bits for `sp(1)` — violating the paper's
    /// §4 assumption. Reported instead of silently mis-routing.
    UnbalancedSplitter {
        /// Main-network stage (for a full-network route) or 0.
        main_stage: usize,
        /// Internal stage of the nested network / bit-sorter.
        internal_stage: usize,
        /// First line of the splitter's span.
        first_line: usize,
        /// Number of lines in the splitter.
        width: usize,
        /// Number of one-bits observed.
        ones: usize,
    },
    /// A splitter produced an unbalanced *output* even though its input
    /// passed the balance check — impossible for healthy hardware (Theorem
    /// 3 guarantees an even split), so the element itself is at fault: a
    /// stuck switch, dead arbiter node, or broken control link injected
    /// through [`FaultMap`]. Reported under [`RoutePolicy::Strict`]
    /// instead of silently misdelivering.
    ///
    /// [`FaultMap`]: crate::fault::FaultMap
    /// [`RoutePolicy::Strict`]: crate::network::RoutePolicy::Strict
    HardwareFault {
        /// Main-network stage of the faulty splitter.
        main_stage: usize,
        /// Internal stage of the nested network / bit-sorter.
        internal_stage: usize,
        /// First line of the splitter's span (global coordinates).
        first_line: usize,
        /// Number of lines in the splitter.
        width: usize,
        /// One-bits observed on even output lines (`M_e`).
        even_ones: usize,
        /// One-bits observed on odd output lines (`M_o`).
        odd_ones: usize,
    },
    /// An underlying topology error (size not a power of two, ...).
    Topology(TopologyError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::WidthMismatch { expected, actual } => {
                write!(f, "network has {expected} inputs but {actual} records were provided")
            }
            RouteError::DestinationTooWide { dest, n } => {
                write!(f, "destination {dest} does not fit a {n}-output network")
            }
            RouteError::DataTooWide { data, w } => {
                write!(f, "data {data:#x} does not fit in {w} bits")
            }
            RouteError::DuplicateDestination { dest, first_input, second_input } => write!(
                f,
                "inputs {first_input} and {second_input} both target destination {dest}: not a permutation"
            ),
            RouteError::UnbalancedSplitter {
                main_stage,
                internal_stage,
                first_line,
                width,
                ones,
            } => write!(
                f,
                "splitter at main stage {main_stage}, internal stage {internal_stage}, lines {first_line}..{} received {ones} ones over {width} lines: input violates the even-split assumption",
                first_line + width
            ),
            RouteError::HardwareFault {
                main_stage,
                internal_stage,
                first_line,
                width,
                even_ones,
                odd_ones,
            } => write!(
                f,
                "hardware fault at main stage {main_stage}, internal stage {internal_stage}, lines {first_line}..{}: balanced input split into {even_ones} even vs {odd_ones} odd ones over {width} lines, violating M_e = M_o",
                first_line + width
            ),
            RouteError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouteError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for RouteError {
    fn from(e: TopologyError) -> Self {
        RouteError::Topology(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_diagnostics() {
        let e = RouteError::UnbalancedSplitter {
            main_stage: 1,
            internal_stage: 0,
            first_line: 4,
            width: 4,
            ones: 3,
        };
        let s = e.to_string();
        assert!(s.contains("main stage 1"));
        assert!(s.contains("lines 4..8"));
        assert!(s.contains("3 ones"));

        let e = RouteError::DuplicateDestination {
            dest: 2,
            first_input: 0,
            second_input: 3,
        };
        assert!(e.to_string().contains("not a permutation"));

        let e = RouteError::HardwareFault {
            main_stage: 2,
            internal_stage: 1,
            first_line: 8,
            width: 4,
            even_ones: 2,
            odd_ones: 0,
        };
        let s = e.to_string();
        assert!(s.contains("hardware fault"));
        assert!(s.contains("main stage 2"));
        assert!(s.contains("lines 8..12"));
        assert!(s.contains("2 even vs 0 odd"));
    }

    #[test]
    fn topology_errors_convert() {
        let e: RouteError = TopologyError::NotPowerOfTwo { size: 12 }.into();
        assert!(matches!(e, RouteError::Topology(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteError>();
    }
}
