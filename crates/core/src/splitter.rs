//! The splitter `sp(p)` (Definition 3, Theorem 3), behavioural model.
//!
//! A `2^p × 2^p` splitter self-routes its one-bit inputs so that the number
//! of ones on even-numbered outputs equals the number on odd-numbered
//! outputs (`M_e = M_o`). It consists of an arbiter [`crate::arbiter`] and a
//! bank of `2^{p-1}` 2×2 switches; switch `t` is set by
//! `control_t = s(2t) ⊕ flag_t` (paper §4, step 5). For `p = 1` the splitter
//! sorts its two distinct bits: 0 up, 1 down.
//!
//! The controls are the signals that the *other* `q − 1` slices of a nested
//! network copy — "this switch setting signal is sent to all other sw(1)'s
//! in the corresponding locations of other slices" (§4).

use serde::{Deserialize, Serialize};

use crate::arbiter::arbiter_sweep;
use crate::error::RouteError;

/// The outcome of running one splitter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitOutcome {
    /// One control per 2×2 switch: `false` = straight, `true` = exchange.
    pub controls: Vec<bool>,
    /// The routed one-bit outputs.
    pub outputs: Vec<bool>,
}

/// Describes where a splitter sits, for error reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitterSite {
    /// Main-network stage (0 when running a splitter standalone).
    pub main_stage: usize,
    /// Internal stage within the nested network / bit-sorter.
    pub internal_stage: usize,
    /// Global index of the splitter's first line.
    pub first_line: usize,
}

/// Checks the paper's §4 input assumption: an even number of ones for
/// `p ≥ 2`, exactly one 1 for `p = 1`.
///
/// # Errors
///
/// Returns [`RouteError::UnbalancedSplitter`] when violated.
pub fn check_balanced(bits: &[bool], site: SplitterSite) -> Result<(), RouteError> {
    let ones = bits.iter().filter(|&&b| b).count();
    let ok = if bits.len() == 2 {
        ones == 1
    } else {
        ones % 2 == 0
    };
    if ok {
        Ok(())
    } else {
        Err(RouteError::UnbalancedSplitter {
            main_stage: site.main_stage,
            internal_stage: site.internal_stage,
            first_line: site.first_line,
            width: bits.len(),
            ones,
        })
    }
}

/// Computes the switch controls of a splitter from its input bits, without
/// routing anything. This is the arbiter plus the `s ⊕ f` XOR — the entire
/// control plane of one splitter.
///
/// # Panics
///
/// Panics if `bits.len()` is not a power of two or is less than 2.
pub fn controls(bits: &[bool]) -> Vec<bool> {
    let sweep = arbiter_sweep(bits);
    sweep
        .flags
        .iter()
        .enumerate()
        .map(|(t, &f)| bits[2 * t] ^ f)
        .collect()
}

/// Allocation-free variant of [`controls`]: computes the switch controls
/// into `out`, using `up` as scratch for the arbiter's up-sweep levels.
/// Produces exactly the same controls as [`controls`]; buffers are cleared
/// and refilled, so they can be reused across calls.
///
/// # Panics
///
/// Panics if `bits.len()` is not a power of two or is less than 2.
pub fn controls_into(bits: &[bool], up: &mut Vec<bool>, out: &mut Vec<bool>) {
    let n = bits.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "splitter needs 2^p >= 2 inputs"
    );
    out.clear();
    if n == 2 {
        // sp(1): flag is 0, control = s(0).
        out.push(bits[0]);
        return;
    }
    let p = n.trailing_zeros() as usize;
    // Up-sweep: levels 1..=p concatenated in `up`; level l has n >> l
    // entries starting at offset(l) = n - (n >> (l - 1)).
    up.clear();
    for t in 0..n / 2 {
        up.push(bits[2 * t] ^ bits[2 * t + 1]);
    }
    let mut level_start = 0usize;
    let mut level_len = n / 2;
    for _ in 2..=p {
        for t in 0..level_len / 2 {
            let v = up[level_start + 2 * t] ^ up[level_start + 2 * t + 1];
            up.push(v);
        }
        level_start += level_len;
        level_len /= 2;
    }
    // Down-sweep expanding in place inside `out`: start from the root's
    // echo and double each level, reading zu values from `up`.
    let root_zu = *up.last().expect("p >= 2 has at least one level");
    out.push(root_zu);
    let mut zu_start = up.len() - 1; // start of the level being processed
    let mut len = 1usize;
    for _ in (1..=p).rev() {
        out.resize(2 * len, false);
        for t in (0..len).rev() {
            let zd = out[t];
            let zu = up[zu_start + t];
            let (y1, y2) = if zu { (zd, zd) } else { (false, true) };
            out[2 * t] = y1;
            out[2 * t + 1] = y2;
        }
        len *= 2;
        if len < n {
            zu_start -= len; // previous (lower) level starts len entries earlier
        }
    }
    debug_assert_eq!(out.len(), n);
    // Controls: control_t = s(2t) ⊕ flag(2t); compact in place.
    for t in 0..n / 2 {
        out[t] = bits[2 * t] ^ out[2 * t];
    }
    out.truncate(n / 2);
}

/// Runs a full splitter: computes controls and routes the input bits.
///
/// `controls[t] == false` sends `bits[2t]` to the even output `2t`;
/// `true` exchanges the pair.
///
/// # Panics
///
/// Panics if `bits.len()` is not a power of two or is less than 2.
///
/// # Example
///
/// ```
/// use bnb_core::splitter::split;
///
/// let out = split(&[true, true, false, false]);
/// // M_e = M_o: one 1 on even outputs, one on odd.
/// let even: usize = out.outputs.iter().step_by(2).filter(|&&b| b).count();
/// let odd: usize = out.outputs.iter().skip(1).step_by(2).filter(|&&b| b).count();
/// assert_eq!(even, odd);
/// ```
pub fn split(bits: &[bool]) -> SplitOutcome {
    let ctl = controls(bits);
    let mut outputs = Vec::with_capacity(bits.len());
    for (t, &c) in ctl.iter().enumerate() {
        let (a, b) = (bits[2 * t], bits[2 * t + 1]);
        if c {
            outputs.push(b);
            outputs.push(a);
        } else {
            outputs.push(a);
            outputs.push(b);
        }
    }
    SplitOutcome {
        controls: ctl,
        outputs,
    }
}

/// Applies precomputed switch controls to a slice of arbitrary items —
/// how the non-BSN slices of a nested network follow the BSN's routing.
///
/// # Panics
///
/// Panics if `items.len() != 2 * controls.len()`.
pub fn apply_controls<T: Copy>(controls: &[bool], items: &mut [T]) {
    assert_eq!(items.len(), 2 * controls.len(), "one control per item pair");
    for (t, &c) in controls.iter().enumerate() {
        if c {
            items.swap(2 * t, 2 * t + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_odd_ones(outputs: &[bool]) -> (usize, usize) {
        let even = outputs.iter().step_by(2).filter(|&&b| b).count();
        let odd = outputs.iter().skip(1).step_by(2).filter(|&&b| b).count();
        (even, odd)
    }

    /// Theorem 3, exhaustively for p = 1..4: every even-weight input is
    /// split so that M_e = M_o, and the output is a permutation of the
    /// input bits.
    #[test]
    fn theorem_3_exhaustive() {
        for p in 1..=4usize {
            let n = 1 << p;
            for pattern in 0..(1u32 << n) {
                let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                let ones = bits.iter().filter(|&&b| b).count();
                let valid = if p == 1 { ones == 1 } else { ones % 2 == 0 };
                if !valid {
                    continue;
                }
                let out = split(&bits);
                let (e, o) = even_odd_ones(&out.outputs);
                if p == 1 {
                    // Definition 3, p = 1: 0 to the even output, 1 to the odd.
                    assert_eq!(out.outputs, vec![false, true], "sp(1) input {pattern:b}");
                } else {
                    assert_eq!(e, o, "sp({p}) input {pattern:b}");
                }
                assert_eq!(e + o, ones, "splitter must conserve bits");
            }
        }
    }

    #[test]
    fn p1_sorts_zero_up_one_down() {
        assert_eq!(split(&[true, false]).outputs, vec![false, true]);
        assert_eq!(split(&[false, true]).outputs, vec![false, true]);
    }

    #[test]
    fn type2_pair_with_flag_zero_routes_one_down() {
        // Lemma 1: flags 0 => input 1 goes to OL (odd output).
        // A lone type-2 pair in a 4-wide splitter paired with a type-1 pair:
        // arbiter: node over (0,1) is type-2 -> forwards root echo.
        let out = split(&[false, true, true, true]);
        // Input has 3 ones — invalid under the even assumption; use a valid
        // one instead: (0,1,1,0): two type-2 pairs.
        let out2 = split(&[false, true, true, false]);
        let (e, o) = even_odd_ones(&out2.outputs);
        assert_eq!(e, 1);
        assert_eq!(o, 1);
        // The invalid input must still produce *some* routing (hardware
        // never halts), just without the M_e = M_o guarantee.
        assert_eq!(out.outputs.len(), 4);
    }

    #[test]
    fn check_balanced_accepts_and_rejects() {
        let site = SplitterSite::default();
        assert!(check_balanced(&[true, false], site).is_ok());
        assert!(check_balanced(&[true, true], site).is_err());
        assert!(check_balanced(&[true, true, false, false], site).is_ok());
        let err = check_balanced(&[true, true, true, false], site).unwrap_err();
        assert!(matches!(
            err,
            RouteError::UnbalancedSplitter {
                ones: 3,
                width: 4,
                ..
            }
        ));
    }

    #[test]
    fn apply_controls_swaps_pairs() {
        let mut items = [10, 20, 30, 40];
        apply_controls(&[true, false], &mut items);
        assert_eq!(items, [20, 10, 30, 40]);
    }

    #[test]
    fn controls_match_split_routing() {
        let bits = [true, false, false, true, true, true, false, false];
        let out = split(&bits);
        let mut copy = bits;
        apply_controls(&out.controls, &mut copy);
        assert_eq!(copy.to_vec(), out.outputs);
    }

    #[test]
    fn controls_into_matches_controls_exhaustively() {
        let mut up = Vec::new();
        let mut out = Vec::new();
        for p in 1..=4usize {
            let n = 1 << p;
            for pattern in 0..(1u32 << n) {
                let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                controls_into(&bits, &mut up, &mut out);
                assert_eq!(out, controls(&bits), "p = {p}, pattern = {pattern:b}");
            }
        }
    }

    #[test]
    fn controls_into_matches_on_wide_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(14);
        let mut up = Vec::new();
        let mut out = Vec::new();
        for p in [6usize, 9] {
            let n = 1 << p;
            for _ in 0..20 {
                let bits: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
                controls_into(&bits, &mut up, &mut out);
                assert_eq!(out, controls(&bits), "p = {p}");
            }
        }
    }

    #[test]
    fn splitter_is_conservative_even_on_invalid_inputs() {
        // Permissive hardware semantics: any input is routed (bits are
        // conserved), only the even-split guarantee is lost.
        for pattern in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|j| pattern >> j & 1 == 1).collect();
            let out = split(&bits);
            let in_ones = bits.iter().filter(|&&b| b).count();
            let out_ones = out.outputs.iter().filter(|&&b| b).count();
            assert_eq!(in_ones, out_ones);
        }
    }
}
