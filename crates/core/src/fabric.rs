//! The [`PermutationNetwork`] trait: one object-safe interface over every
//! permutation-capable network in this workspace (the BNB network and all
//! baselines), so comparisons, registries and generic harnesses don't need
//! to know which design they are driving.

use bnb_topology::record::Record;

use crate::error::RouteError;
use crate::network::BnbNetwork;

/// An `N`-input network that can deliver a full permutation of records in
/// one pass.
///
/// Implementations exist for [`BnbNetwork`] here and for every baseline in
/// `bnb-baselines` (Batcher, bitonic, Benes, Koppelman, crossbar, cellular
/// array, Clos). The trait is object-safe so heterogeneous collections of
/// networks can be swept generically.
///
/// # Example
///
/// ```
/// use bnb_core::fabric::PermutationNetwork;
/// use bnb_core::network::BnbNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net: Box<dyn PermutationNetwork> = Box::new(BnbNetwork::with_inputs(8)?);
/// let p = Permutation::try_from(vec![4, 0, 7, 1, 6, 2, 5, 3])?;
/// let out = net.route_records(&records_for_permutation(&p))?;
/// assert!(all_delivered(&out));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait PermutationNetwork {
    /// Network width `N`.
    fn inputs(&self) -> usize;

    /// Routes one record per input; on success `out[j].dest() == j`.
    ///
    /// # Errors
    ///
    /// Implementation-specific [`RouteError`]s for malformed input; a
    /// permutation network never fails on a *valid* permutation.
    fn route_records(&self, records: &[Record]) -> Result<Vec<Record>, RouteError>;

    /// Human-readable design name for reports.
    fn name(&self) -> &'static str;

    /// Whether switch settings are derived locally (self-routing) or by a
    /// global algorithm.
    fn is_self_routing(&self) -> bool;
}

impl PermutationNetwork for BnbNetwork {
    fn inputs(&self) -> usize {
        BnbNetwork::inputs(self)
    }

    fn route_records(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    fn name(&self) -> &'static str {
        "BNB"
    }

    fn is_self_routing(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};

    #[test]
    fn bnb_is_usable_through_the_trait_object() {
        let net: Box<dyn PermutationNetwork> =
            Box::new(BnbNetwork::builder(3).data_width(32).build());
        assert_eq!(net.inputs(), 8);
        assert_eq!(net.name(), "BNB");
        assert!(net.is_self_routing());
        let p = Permutation::try_from(vec![2, 5, 0, 7, 4, 1, 6, 3]).unwrap();
        let out = net.route_records(&records_for_permutation(&p)).unwrap();
        assert!(all_delivered(&out));
    }
}
