//! The [`PermutationNetwork`] trait: one object-safe interface over every
//! permutation-capable network in this workspace (the BNB network and all
//! baselines), so comparisons, registries and generic harnesses don't need
//! to know which design they are driving.

use std::cell::RefCell;

use bnb_topology::record::Record;

use crate::error::RouteError;
use crate::network::BnbNetwork;
use crate::stages::{validate_lines, RouteSpan, StageScratch};

/// An `N`-input network that can deliver a full permutation of records in
/// one pass.
///
/// Implementations exist for [`BnbNetwork`] here and for every baseline in
/// `bnb-baselines` (Batcher, bitonic, Benes, Koppelman, crossbar, cellular
/// array, Clos). The trait is object-safe so heterogeneous collections of
/// networks can be swept generically.
///
/// # Example
///
/// ```
/// use bnb_core::fabric::PermutationNetwork;
/// use bnb_core::network::BnbNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net: Box<dyn PermutationNetwork> =
///     Box::new(BnbNetwork::builder_for(8)?.build());
/// let p = Permutation::try_from(vec![4, 0, 7, 1, 6, 2, 5, 3])?;
/// let out = net.route(&records_for_permutation(&p))?;
/// assert!(all_delivered(&out));
///
/// // Reusing one output buffer across frames avoids the per-route
/// // allocation in steady-state sweeps:
/// let mut out_buf = Vec::new();
/// net.route_into(&records_for_permutation(&p), &mut out_buf)?;
/// assert!(all_delivered(&out_buf));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait PermutationNetwork {
    /// Network width `N`.
    fn inputs(&self) -> usize;

    /// Routes one record per input; on success `out[j].dest() == j`.
    ///
    /// # Errors
    ///
    /// Implementation-specific [`RouteError`]s for malformed input; a
    /// permutation network never fails on a *valid* permutation.
    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError>;

    /// Routes into a caller-owned buffer so sweeps can reuse one
    /// allocation across frames. `out` is cleared first; on success it
    /// holds the output lines.
    ///
    /// The default delegates to [`route`](PermutationNetwork::route) and
    /// still allocates the intermediate vector; implementations with an
    /// in-place path (the BNB network) override it to route directly in
    /// `out`'s storage.
    ///
    /// # Errors
    ///
    /// Same contract as [`route`](PermutationNetwork::route). On error the
    /// contents of `out` are unspecified (but valid).
    fn route_into(&self, records: &[Record], out: &mut Vec<Record>) -> Result<(), RouteError> {
        let routed = self.route(records)?;
        out.clear();
        out.extend_from_slice(&routed);
        Ok(())
    }

    /// Renamed to [`route`](PermutationNetwork::route).
    ///
    /// # Errors
    ///
    /// Same contract as [`route`](PermutationNetwork::route).
    #[deprecated(since = "0.2.0", note = "renamed to `route`")]
    fn route_records(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route(records)
    }

    /// Human-readable design name for reports.
    fn name(&self) -> &'static str;

    /// Whether switch settings are derived locally (self-routing) or by a
    /// global algorithm.
    fn is_self_routing(&self) -> bool;
}

thread_local! {
    /// Scratch for the trait-level in-place route: one set of reusable
    /// buffers per thread, so `route_into` through `&dyn
    /// PermutationNetwork` is allocation-free in steady state without the
    /// trait growing a `&mut self` method.
    static ROUTE_SCRATCH: RefCell<(StageScratch, Vec<usize>)> =
        RefCell::new((StageScratch::default(), Vec::new()));
}

impl PermutationNetwork for BnbNetwork {
    fn inputs(&self) -> usize {
        BnbNetwork::inputs(self)
    }

    fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        BnbNetwork::route(self, records)
    }

    fn route_into(&self, records: &[Record], out: &mut Vec<Record>) -> Result<(), RouteError> {
        out.clear();
        out.extend_from_slice(records);
        ROUTE_SCRATCH.with(|cell| {
            let (scratch, seen) = &mut *cell.borrow_mut();
            validate_lines(self, out, seen)?;
            RouteSpan::new().run(self, out, 0, 0..self.m(), scratch)
        })
    }

    fn name(&self) -> &'static str {
        "BNB"
    }

    fn is_self_routing(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};

    #[test]
    fn bnb_is_usable_through_the_trait_object() {
        let net: Box<dyn PermutationNetwork> =
            Box::new(BnbNetwork::builder(3).data_width(32).build());
        assert_eq!(net.inputs(), 8);
        assert_eq!(net.name(), "BNB");
        assert!(net.is_self_routing());
        let p = Permutation::try_from(vec![2, 5, 0, 7, 4, 1, 6, 3]).unwrap();
        let out = net.route(&records_for_permutation(&p)).unwrap();
        assert!(all_delivered(&out));
    }

    #[test]
    #[allow(deprecated)] // pins the renamed method's compatibility alias
    fn route_records_aliases_route() {
        let net = BnbNetwork::new(3);
        let p = Permutation::try_from(vec![2, 5, 0, 7, 4, 1, 6, 3]).unwrap();
        let records = records_for_permutation(&p);
        assert_eq!(
            PermutationNetwork::route_records(&net, &records).unwrap(),
            PermutationNetwork::route(&net, &records).unwrap()
        );
    }

    #[test]
    fn route_into_matches_route_and_reuses_the_buffer() {
        let net: Box<dyn PermutationNetwork> = Box::new(BnbNetwork::new(3));
        let mut out = Vec::new();
        for k in [0u64, 777, 40_319] {
            let p = Permutation::nth_lexicographic(8, k);
            let records = records_for_permutation(&p);
            net.route_into(&records, &mut out).unwrap();
            assert_eq!(out, net.route(&records).unwrap(), "perm #{k}");
        }
        let ptr = out.as_ptr();
        let p = Permutation::identity(8);
        net.route_into(&records_for_permutation(&p), &mut out)
            .unwrap();
        assert_eq!(
            out.as_ptr(),
            ptr,
            "steady-state reroute must reuse the buffer"
        );
    }

    #[test]
    fn route_into_propagates_errors() {
        let net = BnbNetwork::new(2);
        let mut out = Vec::new();
        assert!(matches!(
            PermutationNetwork::route_into(&net, &[Record::new(0, 0)], &mut out),
            Err(RouteError::WidthMismatch { .. })
        ));
    }
}
