//! Partial-permutation routing on the BNB network.
//!
//! The paper's network assumes a *full* permutation — every splitter needs
//! a balanced bit vector, which idle inputs would break. The classic fix
//! (and the one a real fabric adapter uses) is **destination completion**:
//! idle inputs are loaned the unused destination addresses, the completed
//! full permutation self-routes, and the loaned records are blanked at the
//! outputs. This extension implements that adapter on top of
//! [`BnbNetwork::route`].

use bnb_obs::{NoopObserver, Observer};
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

use crate::error::RouteError;
use crate::network::BnbNetwork;

/// Result of a partial route: per-output slots plus fill statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialRouteOutcome {
    /// One slot per output line; `None` where no real record was destined.
    pub outputs: Vec<Option<Record>>,
    /// Real records routed.
    pub active: usize,
    /// Filler records the adapter had to inject.
    pub fillers: usize,
}

impl BnbNetwork {
    /// Routes a *partial* mapping: idle inputs are `None`; active inputs
    /// must have distinct in-range destinations. Internally the idle
    /// inputs are assigned the unused destinations (in ascending order),
    /// the full permutation is self-routed, and filler deliveries are
    /// blanked.
    ///
    /// # Errors
    ///
    /// - [`RouteError::WidthMismatch`] if the slot count differs from the
    ///   network width.
    /// - [`RouteError::DestinationTooWide`] for an out-of-range active
    ///   destination. (Payload width is *not* checked: the adapter routes
    ///   positional index tags, so payloads of any width ride along.)
    /// - [`RouteError::DuplicateDestination`] if two active records share
    ///   a destination (reported with their input line numbers).
    ///
    /// # Example
    ///
    /// ```
    /// use bnb_core::network::BnbNetwork;
    /// use bnb_topology::record::Record;
    ///
    /// let net = BnbNetwork::builder_for(8)?.build();
    /// let mut slots = vec![None; 8];
    /// slots[1] = Some(Record::new(6, 0xAA));
    /// slots[4] = Some(Record::new(0, 0xBB));
    /// let out = net.route_partial(&slots)?;
    /// assert_eq!(out.outputs[6], Some(Record::new(6, 0xAA)));
    /// assert_eq!(out.outputs[0], Some(Record::new(0, 0xBB)));
    /// assert_eq!(out.active, 2);
    /// assert_eq!(out.fillers, 6);
    /// # Ok::<(), bnb_core::RouteError>(())
    /// ```
    pub fn route_partial(
        &self,
        slots: &[Option<Record>],
    ) -> Result<PartialRouteOutcome, RouteError> {
        self.route_partial_observed(slots, &NoopObserver)
    }

    /// [`Self::route_partial`] with instrumentation: the completed
    /// frame's route reports to `observer` exactly as
    /// [`BnbNetwork::route_observed`] does (columns, sweeps, and — for
    /// hop-hungry sinks like [`crate::PathTracer`] — per-cell hops,
    /// where filler cells trace like real ones). This is what makes
    /// scheduler rounds and load sweeps traceable end to end.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::route_partial`].
    pub fn route_partial_observed<O: Observer>(
        &self,
        slots: &[Option<Record>],
        observer: &O,
    ) -> Result<PartialRouteOutcome, RouteError> {
        let completed = self.completed_frame(slots)?;
        let routed = self.index_sibling().route_observed(&completed, observer)?;
        Ok(resolve_completed(slots, &routed))
    }

    /// Validates a partial mapping and completes it into a full frame of
    /// index-tagged records: active slots keep their destinations, idle
    /// slots borrow the unused destinations in ascending order, and every
    /// record's payload is its input line number. Routing the result
    /// through [`Self::index_sibling`] (directly, or batched through the
    /// concurrent engine) and passing the output to [`resolve_completed`]
    /// reproduces [`Self::route_partial`] exactly.
    ///
    /// # Errors
    ///
    /// Same validation as [`Self::route_partial`].
    pub fn completed_frame(&self, slots: &[Option<Record>]) -> Result<Vec<Record>, RouteError> {
        let n = self.inputs();
        if slots.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: slots.len(),
            });
        }
        // Validate actives and find the unused destinations.
        let mut owner = vec![usize::MAX; n];
        for (i, slot) in slots.iter().enumerate() {
            let Some(r) = slot else { continue };
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
            if owner[r.dest()] != usize::MAX {
                return Err(RouteError::DuplicateDestination {
                    dest: r.dest(),
                    first_input: owner[r.dest()],
                    second_input: i,
                });
            }
            owner[r.dest()] = i;
        }
        let mut unused = (0..n).filter(|&d| owner[d] == usize::MAX);
        // Complete: idle input lines borrow the unused destinations. The
        // inner route works on (dest, input-index) pairs so the original
        // payloads never need to fit the filler records.
        Ok(slots
            .iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(r) => Record::new(r.dest(), i as u64),
                None => {
                    let d = unused
                        .next()
                        .expect("counts match: one unused per idle input");
                    Record::new(d, i as u64)
                }
            })
            .collect())
    }

    /// The width-64 sibling network used to route index-tagged frames:
    /// same size, policy, and wiring, but payloads up to 64 bits (an input
    /// index always fits, regardless of this network's own data width).
    pub fn index_sibling(&self) -> BnbNetwork {
        BnbNetwork::builder(self.m())
            .data_width(64)
            .policy(self.policy())
            .wiring(self.wiring())
            .build()
    }

    /// Routes records whose data field is an input index (always fits),
    /// bypassing the data-width check but keeping all other validation.
    fn route_indices(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.index_sibling().route(records)
    }

    /// The permutation this network realizes for the given destination
    /// assignment — a convenience that routes index-tagged records and
    /// reads off where each input surfaced.
    ///
    /// For a valid permutation input this is the permutation itself;
    /// under a broken [`crate::network::WiringMode`] it reveals what the
    /// network actually did (used by the ablation analysis).
    ///
    /// # Errors
    ///
    /// Same as [`BnbNetwork::route`].
    pub fn realized_mapping(&self, dests: &[usize]) -> Result<Vec<usize>, RouteError> {
        let n = self.inputs();
        if dests.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: dests.len(),
            });
        }
        let records: Vec<Record> = dests
            .iter()
            .enumerate()
            .map(|(i, &d)| Record::new(d, i as u64))
            .collect();
        let out = self.route_indices(&records)?;
        let mut mapping = vec![0usize; n];
        for (j, r) in out.iter().enumerate() {
            mapping[r.data() as usize] = j;
        }
        Ok(mapping)
    }
}

/// Reconstructs the partial-route outcome from a routed completed frame:
/// `routed[j].data()` names the input line delivered to output `j`, so each
/// output slot is the original record from that line (or `None` for a
/// filler). Inverse of [`BnbNetwork::completed_frame`] after routing.
pub fn resolve_completed(slots: &[Option<Record>], routed: &[Record]) -> PartialRouteOutcome {
    let outputs: Vec<Option<Record>> = routed.iter().map(|r| slots[r.data() as usize]).collect();
    let active = slots.iter().flatten().count();
    PartialRouteOutcome {
        outputs,
        active,
        fillers: slots.len() - active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn full_slots_behave_like_route() {
        let net = BnbNetwork::new(3);
        let p = Permutation::try_from(vec![4, 2, 7, 1, 0, 6, 3, 5]).unwrap();
        let slots: Vec<Option<Record>> = (0..8)
            .map(|i| Some(Record::new(p.apply(i), i as u64)))
            .collect();
        let out = net.route_partial(&slots).unwrap();
        assert_eq!(out.active, 8);
        assert_eq!(out.fillers, 0);
        for (j, slot) in out.outputs.iter().enumerate() {
            let r = slot.expect("full traffic fills all outputs");
            assert_eq!(r.dest(), j);
        }
    }

    #[test]
    fn empty_slots_deliver_nothing() {
        let net = BnbNetwork::new(3);
        let out = net.route_partial(&[None; 8]).unwrap();
        assert_eq!(out.active, 0);
        assert_eq!(out.fillers, 8);
        assert!(out.outputs.iter().all(Option::is_none));
    }

    #[test]
    fn random_partial_traffic_agrees_with_crossbar_semantics() {
        let mut rng = StdRng::seed_from_u64(2);
        for m in [3usize, 5, 7] {
            let n = 1usize << m;
            let net = BnbNetwork::new(m);
            for _ in 0..10 {
                // Random injective partial mapping.
                let perm = Permutation::random(n, &mut rng);
                let slots: Vec<Option<Record>> = (0..n)
                    .map(|i| {
                        if rng.random_bool(0.5) {
                            Some(Record::new(perm.apply(i), i as u64))
                        } else {
                            None
                        }
                    })
                    .collect();
                let out = net.route_partial(&slots).unwrap();
                let active = slots.iter().flatten().count();
                assert_eq!(out.active, active);
                for (j, slot) in out.outputs.iter().enumerate() {
                    match slot {
                        Some(r) => assert_eq!(r.dest(), j),
                        None => {
                            // No active record targeted j.
                            assert!(slots.iter().flatten().all(|r| r.dest() != j));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partial_duplicates_are_rejected_with_input_lines() {
        let net = BnbNetwork::new(2);
        let slots = vec![Some(Record::new(1, 0)), None, Some(Record::new(1, 2)), None];
        match net.route_partial(&slots).unwrap_err() {
            RouteError::DuplicateDestination {
                dest,
                first_input,
                second_input,
            } => {
                assert_eq!((dest, first_input, second_input), (1, 0, 2));
            }
            other => panic!("expected duplicate detection, got {other:?}"),
        }
    }

    #[test]
    fn partial_validates_width_and_ranges() {
        let net = BnbNetwork::new(2);
        assert!(matches!(
            net.route_partial(&[None]),
            Err(RouteError::WidthMismatch {
                expected: 4,
                actual: 1
            })
        ));
        let slots = vec![Some(Record::new(9, 0)), None, None, None];
        assert!(matches!(
            net.route_partial(&slots),
            Err(RouteError::DestinationTooWide { dest: 9, .. })
        ));
    }

    #[test]
    fn wide_payloads_survive_partial_routing() {
        // The adapter routes index tags, so payloads wider than the
        // network's own w still work.
        let net = BnbNetwork::builder(3).data_width(8).build();
        let mut slots = vec![None; 8];
        slots[0] = Some(Record::new(5, u64::MAX));
        let out = net.route_partial(&slots).unwrap();
        assert_eq!(out.outputs[5], Some(Record::new(5, u64::MAX)));
    }

    #[test]
    fn realized_mapping_reads_back_the_permutation() {
        let net = BnbNetwork::new(4);
        let p = Permutation::random(16, &mut StdRng::seed_from_u64(3));
        let mapping = net.realized_mapping(p.as_slice()).unwrap();
        assert_eq!(mapping, p.as_slice());
    }

    #[test]
    fn realized_mapping_exposes_broken_wiring() {
        use crate::network::{RoutePolicy, WiringMode};
        let net = BnbNetwork::builder(3)
            .policy(RoutePolicy::Permissive)
            .wiring(WiringMode::Identity)
            .build();
        let p = Permutation::try_from(vec![3, 6, 1, 4, 7, 2, 5, 0]).unwrap();
        let mapping = net.realized_mapping(p.as_slice()).unwrap();
        assert_ne!(
            mapping,
            p.as_slice(),
            "identity wiring must misroute this permutation"
        );
    }
}
