//! Switch-setting enumeration: what the BNB *topology* can realize when
//! the arbiters are bypassed and the `m(m+1)/2 · N/2` switches are set
//! arbitrarily.
//!
//! Theorem 2 says the arbiters find a correct setting for every
//! permutation; this module quantifies the other direction — how much
//! *redundancy* the topology carries. At `N = 4` there are `2^6 = 64`
//! settings realizing all `4! = 24` permutations, so some permutations own
//! multiple settings: the network is strictly richer than a minimal
//! rearrangeable fabric (which is why a blocking-free local strategy can
//! exist at all).

use std::collections::HashMap;

use bnb_topology::bitops::unshuffle;
use bnb_topology::perm::Permutation;

/// The exact column layout of the flattened BNB network: for each switch
/// column, `(main_stage, internal_stage)`.
pub fn column_layout(m: usize) -> Vec<(usize, usize)> {
    let mut cols = Vec::new();
    for main_stage in 0..m {
        for internal in 0..(m - main_stage) {
            cols.push((main_stage, internal));
        }
    }
    cols
}

/// Total switches in the flattened 1-bit-slice network:
/// `m(m+1)/2 · N/2`.
pub fn switch_count(m: usize) -> usize {
    let n = 1usize << m;
    m * (m + 1) / 2 * (n / 2)
}

/// Applies one explicit switch-setting vector (one bool per switch, column
/// major, top to bottom) and returns the realized permutation
/// (input line → output line).
///
/// # Panics
///
/// Panics if `settings.len() != switch_count(m)`.
pub fn realize(m: usize, settings: &[bool]) -> Permutation {
    let n = 1usize << m;
    assert_eq!(settings.len(), switch_count(m), "one bool per switch");
    let mut lines: Vec<usize> = (0..n).collect(); // lines[j] = source of line j
    let mut cursor = 0usize;
    for (main_stage, internal) in column_layout(m) {
        let k = m - main_stage;
        for t in 0..n / 2 {
            if settings[cursor + t] {
                lines.swap(2 * t, 2 * t + 1);
            }
        }
        cursor += n / 2;
        let box_size = 1usize << (k - internal);
        let last_internal = internal + 1 == k;
        let mut wired = vec![0usize; n];
        if !last_internal {
            let span_log = box_size.trailing_zeros() as usize;
            for (j, &src) in lines.iter().enumerate() {
                let base = j & !(box_size - 1);
                let local = j & (box_size - 1);
                wired[base | unshuffle(span_log, span_log, local)] = src;
            }
            lines = wired;
        } else if main_stage + 1 < m {
            for (j, &src) in lines.iter().enumerate() {
                wired[unshuffle(k, m, j)] = src;
            }
            lines = wired;
        }
    }
    // lines[j] = source input of output j; the realized permutation maps
    // source -> output.
    let mut images = vec![0usize; n];
    for (j, &src) in lines.iter().enumerate() {
        images[src] = j;
    }
    Permutation::try_from(images).expect("switch settings realize a bijection")
}

/// Enumerates every setting of a tiny network and returns, per realized
/// permutation, how many settings produce it.
///
/// # Panics
///
/// Panics if the setting space exceeds `2^24` (m ≥ 3 is already 2^24 at
/// N = 8 — allowed; m ≥ 4 is not).
pub fn realization_census(m: usize) -> HashMap<Vec<usize>, u64> {
    let bits = switch_count(m);
    assert!(bits <= 24, "setting space too large to enumerate");
    let mut census: HashMap<Vec<usize>, u64> = HashMap::new();
    for pattern in 0..(1u64 << bits) {
        let settings: Vec<bool> = (0..bits).map(|b| pattern >> b & 1 == 1).collect();
        let p = realize(m, &settings);
        *census.entry(p.as_slice().to_vec()).or_insert(0) += 1;
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::record::{all_delivered, records_for_permutation};

    use crate::network::BnbNetwork;

    #[test]
    fn layout_and_switch_count_match_eq7() {
        for m in 1..=6 {
            assert_eq!(column_layout(m).len(), m * (m + 1) / 2);
            assert_eq!(switch_count(m), m * (m + 1) / 2 * (1 << (m - 1)));
        }
    }

    #[test]
    fn the_topology_realizes_every_permutation_at_n4() {
        // Rearrangeability of the raw topology, independent of arbiters:
        // the 64 settings cover all 24 permutations.
        let census = realization_census(2);
        assert_eq!(census.len(), 24, "all 4! permutations must be realizable");
        let total: u64 = census.values().sum();
        assert_eq!(total, 64);
        // Redundancy exists but is not uniform: settings per permutation
        // range over more than one value... verify min >= 1 and max > 1.
        let max = census.values().max().copied().unwrap();
        assert!(max > 1, "64 settings over 24 permutations must collide");
    }

    #[test]
    fn arbiter_chosen_settings_realize_the_offered_permutation() {
        // Extract the arbiter's switch choices from a trace and replay
        // them through `realize`: the raw topology with those settings
        // must produce the same permutation.
        let m = 3usize;
        let net = BnbNetwork::new(m);
        for k in [0u64, 123, 4567, 40_319] {
            let p = Permutation::nth_lexicographic(8, k);
            let (out, trace) = net.route_traced(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out));
            let settings: Vec<bool> = trace
                .columns
                .iter()
                .flat_map(|c| c.controls.iter().copied())
                .collect();
            let realized = realize(m, &settings);
            assert_eq!(realized, p, "replayed settings must realize {p}");
        }
    }

    #[test]
    fn all_straight_settings_realize_a_fixed_wiring_permutation() {
        // With every switch straight, the network realizes the composition
        // of its fixed wirings — input 0 always maps to output 0.
        let m = 3usize;
        let settings = vec![false; switch_count(m)];
        let p = realize(m, &settings);
        assert_eq!(p.apply(0), 0);
        // And it is consistent: realizing twice gives the same answer.
        assert_eq!(realize(m, &settings), p);
    }
}
