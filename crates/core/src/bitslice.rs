//! Bit-sliced (64-lane) bit-sorter network.
//!
//! The paper's whole point is that splitter control is *one-bit logic*:
//! XORs up a tree, AND/OR flags down, XOR at the switch. One-bit logic
//! vectorizes for free — pack 64 independent BSN instances into the 64 bit
//! lanes of a `u64` per line and the entire network, arbiters included,
//! runs branchlessly on whole words:
//!
//! - up-sweep: `zu = a ^ b` per tree node (one XOR for 64 instances);
//! - down-sweep: `y1 = zu & zd`, `y2 = !zu | zd`;
//! - switch: `control = s ⊕ flag`, and a masked swap
//!   `even = (a & !c) | (b & c)` routes all 64 instances at once.
//!
//! [`BitSorter64`] is property-tested lane-for-lane against the scalar
//! [`crate::bsn::BitSorter`] and benchmarked in `bnb-bench` (it is the
//! "hardware-shaped" software implementation of the paper's design).

use bnb_topology::bitops::unshuffle;
use bnb_topology::connection::require_power_of_two;

use crate::error::RouteError;

/// A 64-lane bit-sorter network over `2^k` lines: `lanes[j]` carries the
/// bit of line `j` for 64 independent instances (bit `i` = instance `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSorter64 {
    k: usize,
}

impl BitSorter64 {
    /// A 64-lane BSN over `2^k` lines.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "bit-sorter needs at least 2 lines");
        BitSorter64 { k }
    }

    /// A 64-lane BSN over `n` lines.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        let k = require_power_of_two(n)?;
        if k == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(BitSorter64 { k })
    }

    /// Line count.
    pub fn inputs(&self) -> usize {
        1 << self.k
    }

    /// Routes 64 instances at once. Instance `i` of the output satisfies
    /// Theorem 1 whenever instance `i` of the input is balanced; the other
    /// lanes get hardware (permissive) semantics.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`] if `lanes.len()` differs from
    /// the line count.
    pub fn route(&self, lanes: &[u64]) -> Result<Vec<u64>, RouteError> {
        let n = self.inputs();
        if lanes.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: lanes.len(),
            });
        }
        let k = self.k;
        let mut lines = lanes.to_vec();
        let mut scratch = vec![0u64; n];
        let mut up = vec![0u64; n]; // up-sweep levels, reused per splitter
        let mut down = vec![0u64; n];
        for stage in 0..k {
            let size = 1usize << (k - stage);
            for start in (0..n).step_by(size) {
                split64(&lines[start..start + size], &mut up, &mut down);
                // `down` now holds per-pair controls in its first size/2
                // slots; apply the masked swaps.
                for t in 0..size / 2 {
                    let c = down[t];
                    let a = lines[start + 2 * t];
                    let b = lines[start + 2 * t + 1];
                    lines[start + 2 * t] = (a & !c) | (b & c);
                    lines[start + 2 * t + 1] = (b & !c) | (a & c);
                }
            }
            if stage + 1 < k {
                for (j, &v) in lines.iter().enumerate() {
                    scratch[unshuffle(k - stage, k, j)] = v;
                }
                lines.copy_from_slice(&scratch);
            }
        }
        Ok(lines)
    }
}

/// Computes the 64-lane splitter controls for `bits` (one `u64` per line)
/// into `down[0..bits.len()/2]`, using `up` as scratch.
fn split64(bits: &[u64], up: &mut [u64], down: &mut [u64]) {
    let n = bits.len();
    if n == 2 {
        // sp(1): control = s(0) per lane.
        down[0] = bits[0];
        return;
    }
    let p = n.trailing_zeros() as usize;
    // Up-sweep: level l (1..=p) stored at offset n − (n >> (l−1)).
    for t in 0..n / 2 {
        up[t] = bits[2 * t] ^ bits[2 * t + 1];
    }
    let mut level_start = 0usize;
    let mut level_len = n / 2;
    let mut write = n / 2;
    for _ in 2..=p {
        for t in 0..level_len / 2 {
            up[write + t] = up[level_start + 2 * t] ^ up[level_start + 2 * t + 1];
        }
        level_start += level_len;
        level_len /= 2;
        write += level_len;
        debug_assert_eq!(write - level_len, level_start);
    }
    // Down-sweep, expanding in place inside `down`.
    let root = up[level_start]; // the single root zu
    down[0] = root;
    let mut zu_start = level_start;
    let mut len = 1usize;
    for _ in (1..=p).rev() {
        for t in (0..len).rev() {
            let zd = down[t];
            let zu = up[zu_start + t];
            // type-2 (zu=1): forward zd to both; type-1 (zu=0): 0 / 1.
            let y1 = zu & zd;
            let y2 = !zu | zd;
            down[2 * t] = y1;
            down[2 * t + 1] = y2;
        }
        len *= 2;
        if len < n {
            zu_start -= len;
        }
    }
    // Controls: c_t = s(2t) ^ flag(2t), compacted in place.
    for t in 0..n / 2 {
        down[t] = bits[2 * t] ^ down[2 * t];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsn::BitSorter;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn pack(lane_inputs: &[Vec<bool>]) -> Vec<u64> {
        let n = lane_inputs[0].len();
        (0..n)
            .map(|j| {
                lane_inputs
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, v)| acc | (u64::from(v[j]) << i))
            })
            .collect()
    }

    fn unpack(lanes: &[u64], i: usize) -> Vec<bool> {
        lanes.iter().map(|&v| v >> i & 1 == 1).collect()
    }

    #[test]
    fn lanes_match_scalar_bsn_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(31);
        for k in [1usize, 2, 3, 5, 7] {
            let n = 1usize << k;
            let scalar = BitSorter::new(k);
            let vector = BitSorter64::new(k);
            let lane_inputs: Vec<Vec<bool>> = (0..64)
                .map(|_| (0..n).map(|_| rng.random_bool(0.5)).collect())
                .collect();
            let out = vector.route(&pack(&lane_inputs)).unwrap();
            for (i, input) in lane_inputs.iter().enumerate() {
                let expected = scalar.route_permissive(input).unwrap();
                assert_eq!(unpack(&out, i), expected, "k = {k}, lane {i}");
            }
        }
    }

    #[test]
    fn balanced_lanes_sort_to_interleaved() {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(32);
        let k = 6usize;
        let n = 1usize << k;
        let vector = BitSorter64::new(k);
        let lane_inputs: Vec<Vec<bool>> = (0..64)
            .map(|_| {
                let mut bits: Vec<bool> = (0..n).map(|j| j % 2 == 0).collect();
                bits.shuffle(&mut rng);
                bits
            })
            .collect();
        let out = vector.route(&pack(&lane_inputs)).unwrap();
        for i in 0..64 {
            let lane = unpack(&out, i);
            assert!(
                lane.iter().enumerate().all(|(j, &b)| b == (j % 2 == 1)),
                "lane {i} not interleaved"
            );
        }
    }

    #[test]
    fn exhaustive_agreement_at_k2() {
        let scalar = BitSorter::new(2);
        let vector = BitSorter64::new(2);
        // All 16 patterns fit in 16 lanes simultaneously.
        let lane_inputs: Vec<Vec<bool>> = (0..16u32)
            .map(|p| (0..4).map(|j| p >> j & 1 == 1).collect())
            .collect();
        let out = vector.route(&pack(&lane_inputs)).unwrap();
        for (i, input) in lane_inputs.iter().enumerate() {
            assert_eq!(
                unpack(&out, i),
                scalar.route_permissive(input).unwrap(),
                "lane {i}"
            );
        }
    }

    #[test]
    fn width_is_validated() {
        let v = BitSorter64::new(3);
        assert!(v.route(&[0; 4]).is_err());
        assert!(BitSorter64::with_inputs(6).is_err());
    }
}
