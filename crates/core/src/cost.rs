//! Hardware-cost accounting (paper §5.1, eqs. (1)–(6)).
//!
//! Costs are expressed in the paper's abstract units: 2×2 switches
//! (`C_SW`), one-bit arbiter function nodes (`C_FN`), and — for the
//! Koppelman comparison row of Table 1 — adder slices. Every count is
//! available two ways:
//!
//! - **counted**: enumerate the constructed structure box by box
//!   ([`HardwareCost::bnb_counted`]);
//! - **closed form**: the paper's polynomial, eq. (6)
//!   ([`HardwareCost::bnb_closed_form`]).
//!
//! Their equality for all `m`, `w` is a property test — a strong check that
//! the implementation builds exactly the structure the paper analyzed.
//!
//! Note the paper's slice-count subtlety (eq. (2)): a `P`-input nested
//! network carries `log P + w` slices, not `m + w` — address bits already
//! consumed by earlier main stages are dropped, since the sub-network a
//! record sits in encodes them positionally.

use std::ops::Add;

use serde::{Deserialize, Serialize};

use crate::arbiter;

/// A hardware budget in the paper's abstract units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareCost {
    /// 2×2 switches (`C_SW` units).
    pub switches: u64,
    /// Arbiter function nodes / one-bit function slices (`C_FN` units).
    pub function_nodes: u64,
    /// Adder slices (only nonzero for the Koppelman network of Table 1).
    pub adder_slices: u64,
}

impl HardwareCost {
    /// Collapses to a single scalar with unit weights — used when a single
    /// comparable number is needed.
    pub fn total_units(&self) -> u64 {
        self.switches + self.function_nodes + self.adder_slices
    }

    /// Weighted total: `switches·c_sw + function_nodes·c_fn +
    /// adder_slices·c_add`.
    pub fn weighted(&self, c_sw: f64, c_fn: f64, c_add: f64) -> f64 {
        self.switches as f64 * c_sw
            + self.function_nodes as f64 * c_fn
            + self.adder_slices as f64 * c_add
    }

    /// Exact BNB cost, **counted** by enumerating every nested network,
    /// slice, splitter and arbiter of a `2^m`-input, `w`-data-bit network.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn bnb_counted(m: usize, w: usize) -> HardwareCost {
        assert!(m >= 1, "network needs at least 2 inputs");
        let mut switches: u64 = 0;
        let mut function_nodes: u64 = 0;
        for main_stage in 0..m {
            let k = m - main_stage; // nested networks have 2^k lines
            let nested_count = 1u64 << main_stage;
            let slices = (k + w) as u64; // log P + w slices (eq. (2))
                                         // Switches per slice of one nested network: k internal stages of
                                         // 2^{k-1} switches each (eq. (3)).
            let per_slice = (k as u64) * (1u64 << (k - 1));
            switches += nested_count * slices * per_slice;
            // Arbiter nodes of the BSN slice: stage j has 2^j splitters
            // sp(k-j), each with an A(k-j) of 2^{k-j} − 1 nodes (A(1) = 0).
            let mut nodes: u64 = 0;
            for j in 0..k {
                nodes += (1u64 << j) * arbiter::node_count(k - j) as u64;
            }
            function_nodes += nested_count * nodes;
        }
        HardwareCost {
            switches,
            function_nodes,
            adder_slices: 0,
        }
    }

    /// Exact BNB cost from the paper's closed form, eq. (6):
    ///
    /// ```text
    /// C_BNB(N) = (N/6·log³N + N/4·log²N + N/12·log N
    ///             + N·w/4·(log²N + log N)) · C_SW
    ///          + (N/2·log²N − N·log N + N − 1) · C_FN
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn bnb_closed_form(m: usize, w: usize) -> HardwareCost {
        assert!(m >= 1, "network needs at least 2 inputs");
        let n = 1u128 << m;
        let mu = m as u128;
        let wu = w as u128;
        // N/6·m³ + N/4·m² + N/12·m  ==  (N/12)·m(m+1)(2m+1), exactly.
        let addr_switches = n * mu * (mu + 1) * (2 * mu + 1) / 12;
        // N·w/4·(m² + m)  ==  (N·w/4)·m(m+1); m(m+1) is even and N ≥ 2.
        let data_switches = n * wu * mu * (mu + 1) / 4;
        let fn_nodes = {
            let n = n as i128;
            let mu = mu as i128;
            u128::try_from(n * mu * mu / 2 - n * mu + n - 1).expect("count is non-negative")
        };
        HardwareCost {
            switches: u64::try_from(addr_switches + data_switches).expect("cost fits u64"),
            function_nodes: u64::try_from(fn_nodes).expect("cost fits u64"),
            adder_slices: 0,
        }
    }

    /// Cost of one `P = 2^p`-input nested network with `w` data bits —
    /// the paper's eq. (5).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn nested_network(p: usize, w: usize) -> HardwareCost {
        assert!(p >= 1, "nested network needs at least 2 inputs");
        let pl = 1u64 << p;
        let switches = (pl / 2) * p as u64 * (p + w) as u64;
        // P·log(P/2) − P/2 + 1, with the p = 1 case (A(1) = wiring) giving 0.
        let function_nodes = if p >= 2 {
            pl * (p as u64 - 1) - pl / 2 + 1
        } else {
            0
        };
        HardwareCost {
            switches,
            function_nodes,
            adder_slices: 0,
        }
    }

    /// Table 1 leading terms for the BNB network: `N/6·log³N` switches and
    /// `N/2·log²N` function slices, as `f64`s.
    pub fn bnb_leading_terms(m: usize) -> (f64, f64) {
        let n = (1u64 << m) as f64;
        let mf = m as f64;
        (n / 6.0 * mf.powi(3), n / 2.0 * mf.powi(2))
    }
}

impl Add for HardwareCost {
    type Output = HardwareCost;

    fn add(self, rhs: HardwareCost) -> HardwareCost {
        HardwareCost {
            switches: self.switches + rhs.switches,
            function_nodes: self.function_nodes + rhs.function_nodes,
            adder_slices: self.adder_slices + rhs.adder_slices,
        }
    }
}

impl std::iter::Sum for HardwareCost {
    fn sum<I: Iterator<Item = HardwareCost>>(iter: I) -> HardwareCost {
        iter.fold(HardwareCost::default(), Add::add)
    }
}

impl std::fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} switches + {} function nodes",
            self.switches, self.function_nodes
        )?;
        if self.adder_slices > 0 {
            write!(f, " + {} adder slices", self.adder_slices)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The central validation: structure-enumerated counts equal the
    /// paper's eq. (6) for every m and several data widths.
    #[test]
    fn counted_equals_closed_form() {
        for m in 1..=14 {
            for w in [0usize, 1, 8, 16, 32] {
                assert_eq!(
                    HardwareCost::bnb_counted(m, w),
                    HardwareCost::bnb_closed_form(m, w),
                    "m = {m}, w = {w}"
                );
            }
        }
    }

    /// Recurrence (1): C_BNB(N) = 2·C_BNB(N/2) + C_NB(N)… with the caveat
    /// that the nested-network cost of eq. (5) already uses log P + w
    /// slices, so the recurrence telescopes the counted structure exactly.
    #[test]
    fn recurrence_equation_1_holds() {
        for m in 2..=10 {
            for w in [0usize, 8] {
                let whole = HardwareCost::bnb_counted(m, w);
                let half = HardwareCost::bnb_counted(m - 1, w);
                let nested = HardwareCost::nested_network(m, w);
                assert_eq!(
                    whole,
                    HardwareCost {
                        switches: 2 * half.switches + nested.switches,
                        function_nodes: 2 * half.function_nodes + nested.function_nodes,
                        adder_slices: 0,
                    },
                    "m = {m}, w = {w}"
                );
            }
        }
    }

    /// Spot-check eq. (6) by hand for m = 3, w = 0:
    /// switches = (8/12)·3·4·7 = 56; fn = 8·9/2 − 24 + 8 − 1 = 19.
    #[test]
    fn closed_form_spot_check_m3() {
        let c = HardwareCost::bnb_closed_form(3, 0);
        assert_eq!(c.switches, 56);
        assert_eq!(c.function_nodes, 19);
    }

    /// m = 1: a single sp(1) = one switch, no arbiter nodes.
    #[test]
    fn smallest_network_is_one_switch() {
        let c = HardwareCost::bnb_counted(1, 0);
        assert_eq!(c.switches, 1);
        assert_eq!(c.function_nodes, 0);
        assert_eq!(c, HardwareCost::bnb_closed_form(1, 0));
    }

    #[test]
    fn nested_network_matches_eq5() {
        // P = 8, w = 2: switches = 4·3·5 = 60; fn = 8·2 − 4 + 1 = 13.
        let c = HardwareCost::nested_network(3, 2);
        assert_eq!(c.switches, 60);
        assert_eq!(c.function_nodes, 13);
    }

    #[test]
    fn leading_terms_dominate_at_large_n() {
        let (sw_lead, fn_lead) = HardwareCost::bnb_leading_terms(16);
        let exact = HardwareCost::bnb_closed_form(16, 0);
        // The leading terms are within 30% of the exact counts at N = 65536.
        assert!((sw_lead / exact.switches as f64 - 1.0).abs() < 0.3);
        assert!((fn_lead / exact.function_nodes as f64 - 1.0).abs() < 0.3);
    }

    #[test]
    fn arithmetic_and_display() {
        let a = HardwareCost {
            switches: 1,
            function_nodes: 2,
            adder_slices: 0,
        };
        let b = HardwareCost {
            switches: 10,
            function_nodes: 20,
            adder_slices: 5,
        };
        let s = a + b;
        assert_eq!(s.switches, 11);
        assert_eq!(s.total_units(), 11 + 22 + 5);
        assert_eq!(s.weighted(1.0, 1.0, 1.0), 38.0);
        assert!(s.to_string().contains("11 switches"));
        assert!(s.to_string().contains("adder slices"));
        let summed: HardwareCost = [a, b].into_iter().sum();
        assert_eq!(summed, s);
    }

    #[test]
    fn data_width_adds_switch_slices_only() {
        let narrow = HardwareCost::bnb_counted(5, 0);
        let wide = HardwareCost::bnb_counted(5, 16);
        assert!(wide.switches > narrow.switches);
        assert_eq!(wide.function_nodes, narrow.function_nodes);
    }
}
