//! Word-parallel (bit-packed) stage-span routing: the unobserved fast
//! path behind [`crate::stages::route_span`].
//!
//! The paper's arbiter (Definition 6) computes every switch setting from
//! one-bit local information: XOR parities sweep *up* a binary tree and
//! flags echo *down*. Because the per-line control state is exactly one
//! bit, 64 adjacent lines pack into a `u64` and each sweep level becomes a
//! handful of shift/XOR/mask operations:
//!
//! - **Bit-planes** — each cell's `m` destination bits are extracted once
//!   per span into per-stage `u64` planes (`plane[s]` bit `j` = paper bit
//!   `s` of the record currently on line `j`) and kept in permuted order
//!   as cells move through switches and wirings, replacing the per-column
//!   `paper_bit` loop of the scalar path.
//! - **Up-sweep** — level-`l` parities of every box in a column at once:
//!   `lev[l] = (lev[l-1] ^ (lev[l-1] >> 2^(l-1))) & STRIDE[l]`.
//! - **Down-sweep** — the flag echo as masked select/merge words: a node
//!   with `zu = 1` forwards its descending `zd` to both children, a node
//!   with `zu = 0` overrides with the constants (0 left, 1 right) — the
//!   same rule [`crate::splitter::controls_into`] applies one node at a
//!   time. Boxes wider than a word compose per-word sweeps with a scalar
//!   cross-tree over the word parities.
//! - **Balance checks** — XOR-folds and `count_ones()` on masked words.
//! - **Exchanges** — one packed flag word per 64 lines, consumed directly:
//!   `trailing_zeros` iteration swaps the position permutation and a
//!   masked pair-swap updates every live plane. Records move once, at the
//!   end of the span, through a single gather.
//!
//! The kernel is byte-identical to the scalar path on success and returns
//! identical error values on failure; only the (unspecified) contents of
//! `lines` after an error may differ. Faulted columns fall back to the
//! scalar per-box arbiter — reading bits from the planes, never
//! re-deriving them — so fault semantics stay exactly those of
//! [`FaultMap`]; healthy columns of a faulted route stay packed.

use std::ops::Range;

use bnb_topology::record::Record;

use crate::error::RouteError;
use crate::fault::FaultMap;
use crate::network::{BnbNetwork, RoutePolicy, WiringMode};
use crate::splitter::{check_balanced, controls_into, SplitterSite};
use crate::stages::StageScratch;

/// Bits at even positions: the switch-control positions (`2t`).
const EVEN: u64 = 0x5555_5555_5555_5555;

/// `STRIDE[l]`: bits at positions that are multiples of `2^l` — where the
/// level-`l` sweep nodes live.
const STRIDE: [u64; 7] = [
    !0,
    0x5555_5555_5555_5555,
    0x1111_1111_1111_1111,
    0x0101_0101_0101_0101,
    0x0001_0001_0001_0001,
    0x0000_0001_0000_0001,
    0x0000_0000_0000_0001,
];

/// Delta-swap masks for the in-word unshuffle cascade: step `j` (1-based)
/// swaps the `2^(j-1)`-bit block at offset `2^(j-1)` of every
/// `2^(j+1)`-bit field with the block beside it.
const UNSHUFFLE_STEP: [u64; 5] = [
    0x2222_2222_2222_2222,
    0x0C0C_0C0C_0C0C_0C0C,
    0x00F0_00F0_00F0_00F0,
    0x0000_FF00_0000_FF00,
    0x0000_0000_FFFF_0000,
];

/// Reusable buffers for the packed kernel, owned by
/// [`StageScratch`]. Sized on first use, steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedScratch {
    /// Destination bit-planes, flattened `[stage_rel][word]`.
    planes: Vec<u64>,
    /// One exchange-flag word per 64-line window of the current column.
    flags: Vec<u64>,
    /// Word scratch for multi-word block wiring.
    tmp: Vec<u64>,
    /// `perm[pos]` = line index (into the span) of the record currently
    /// on line `pos`; records are gathered once at the end of the span.
    perm: Vec<u32>,
    /// Scatter scratch for wiring `perm`.
    tmp_perm: Vec<u32>,
    /// Word-root parities feeding the cross-tree (one per word of a box).
    roots: Vec<bool>,
    /// Cross-tree output: the `zd` passed into each word's subtree.
    zds: Vec<bool>,
    /// Cross-tree up-sweep scratch.
    tree: Vec<bool>,
    /// Index bit-planes for the batched permissive path: bit `b` of each
    /// cell's *original within-frame line*, carried through every exchange
    /// and wiring exactly like `perm`, but word-parallel.
    iplanes: Vec<u64>,
    /// Double buffers for the batched kernel's final frame-blocked
    /// gather/scatter (swapped with the batch's own storage, never copied).
    out_dests: Vec<u32>,
    /// See [`PackedScratch::out_dests`].
    out_data: Vec<u64>,
}

impl PackedScratch {
    fn ensure(&mut self, span: usize, words: usize, num_stages: usize) {
        self.planes.clear();
        self.planes.resize(num_stages * words, 0);
        self.flags.resize(words, 0);
        self.tmp.resize(words, 0);
        self.perm.resize(span, 0);
        self.tmp_perm.resize(span, 0);
        self.roots.resize(words, false);
        self.zds.resize(words, false);
    }

    fn ensure_batch(&mut self, cells: usize, words: usize, m: usize, index_planes: bool) {
        self.planes.clear();
        self.planes.resize(m * words, 0);
        self.iplanes.clear();
        if index_planes {
            self.iplanes.resize(m * words, 0);
        }
        self.flags.resize(words, 0);
        self.tmp.resize(words, 0);
        self.roots.resize(words, false);
        self.zds.resize(words, false);
        self.out_dests.resize(cells, 0);
        self.out_data.resize(cells, 0);
    }
}

/// Bit `b` of a position's in-word index (`j & 63`), for `b < 6`: the
/// initial contents of the batched kernel's low index planes.
const IBIT: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Applies one word of exchange flags to `items`: bit `2t` set means swap
/// `items[2t]` and `items[2t + 1]`. Returns the number of exchanges.
///
/// This is the single pair-swap implementation shared by the packed
/// kernel (on the position permutation) and the scalar path (which packs
/// each box's `Vec<bool>` controls into flag words before applying).
#[inline]
pub(crate) fn apply_flag_word<T>(mut f: u64, items: &mut [T]) -> u64 {
    let mut exchanges = 0;
    while f != 0 {
        let t = f.trailing_zeros() as usize;
        items.swap(t, t + 1);
        exchanges += 1;
        f &= f - 1;
    }
    exchanges
}

/// Exchanges flagged bit-pairs of a plane word: `ce` has both bits of
/// every flagged pair set (`f | f << 1`).
#[inline]
fn swap_pairs_word(x: u64, ce: u64) -> u64 {
    let swapped = ((x & EVEN) << 1) | ((x >> 1) & EVEN);
    (x & !ce) | (swapped & ce)
}

/// Up-sweep of one word: `lev[l]` holds the level-`l` subtree parities at
/// the node positions (`STRIDE[l]`), for `l = 1..=p`.
#[inline]
fn word_levels(x: u64, p: usize) -> [u64; 7] {
    let mut lev = [0u64; 7];
    lev[0] = x;
    for l in 1..=p {
        lev[l] = (lev[l - 1] ^ (lev[l - 1] >> (1 << (l - 1)))) & STRIDE[l];
    }
    lev
}

/// Down-sweep of one word: from `zd_root` (the `zd` entering each lane's
/// root, at the `STRIDE[p]` positions) to the per-leaf flags. A node with
/// `zu = 1` forwards `zd` to both children; a node with `zu = 0` sends 0
/// left and 1 right — all lanes of the word in parallel.
#[inline]
fn lane_flags(lev: &[u64; 7], p: usize, zd_root: u64) -> u64 {
    let mut zd = zd_root;
    for l in (1..=p).rev() {
        let zu = lev[l];
        let lz = zu & zd;
        let rz = (lz | !zu) & STRIDE[l];
        zd = lz | (rz << (1 << (l - 1)));
    }
    zd
}

/// The arbiter's descending `zd` at each leaf of a scalar tree whose
/// leaves carry up-values `leaf_zu` — the cross-tree over word parities
/// for boxes wider than a word. The root echoes its own up-value
/// (Definition 6), interior nodes apply the same forward/override rule as
/// [`lane_flags`].
fn zd_into_leaves(leaf_zu: &[bool], up: &mut Vec<bool>, out: &mut Vec<bool>) {
    let n = leaf_zu.len();
    debug_assert!(n >= 2 && n.is_power_of_two());
    out.clear();
    if n == 2 {
        let root = leaf_zu[0] ^ leaf_zu[1];
        out.push(root);
        out.push(true);
        return;
    }
    let p = n.trailing_zeros() as usize;
    up.clear();
    for t in 0..n / 2 {
        up.push(leaf_zu[2 * t] ^ leaf_zu[2 * t + 1]);
    }
    let mut level_start = 0usize;
    let mut level_len = n / 2;
    for _ in 2..=p {
        for t in 0..level_len / 2 {
            let v = up[level_start + 2 * t] ^ up[level_start + 2 * t + 1];
            up.push(v);
        }
        level_start += level_len;
        level_len /= 2;
    }
    let root_zu = *up.last().expect("p >= 2 has at least one level");
    out.push(root_zu);
    let mut zu_start = up.len() - 1;
    let mut len = 1usize;
    for _ in (1..=p).rev() {
        out.resize(2 * len, false);
        for t in (0..len).rev() {
            let zd = out[t];
            let zu = up[zu_start + t];
            let (y1, y2) = if zu { (zd, zd) } else { (false, true) };
            out[2 * t] = y1;
            out[2 * t + 1] = y2;
        }
        len *= 2;
        if len < n {
            zu_start -= len;
        }
    }
    debug_assert_eq!(out.len(), n);
}

/// In-word switch controls for every `2^p`-wide lane of `x` at once
/// (`2 <= p <= 6`): up-sweep, root echo, down-sweep, then
/// `control = s(2t) ^ flag(2t)` masked to the even positions.
#[inline]
fn word_controls(x: u64, p: usize) -> u64 {
    let lev = word_levels(x, p);
    let zd = lane_flags(&lev, p, lev[p]);
    (x ^ zd) & EVEN
}

#[inline]
fn delta_swap(x: u64, mask: u64, shift: u32) -> u64 {
    let t = (x ^ (x >> shift)) & mask;
    x ^ t ^ (t << shift)
}

/// Unshuffle of every `2^r`-bit field of `x` (`2 <= r <= 6`): even field
/// positions to the low half, odd to the high half, order preserved —
/// i.e. the low `r` index bits rotated right by one.
#[inline]
fn unshuffle_word(x: u64, r: usize) -> u64 {
    let mut x = x;
    for j in 1..r {
        x = delta_swap(x, UNSHUFFLE_STEP[j - 1], 1 << (j - 1));
    }
    x
}

/// Inverse of [`unshuffle_word`]: the delta swaps are involutions, so the
/// cascade runs backwards.
#[inline]
fn shuffle_word(x: u64, r: usize) -> u64 {
    let mut x = x;
    for j in (1..r).rev() {
        x = delta_swap(x, UNSHUFFLE_STEP[j - 1], 1 << (j - 1));
    }
    x
}

/// Unshuffle of one multi-word block: per-word cascade packs each word's
/// even bits into its low half, then a word-level merge interleaves the
/// halves into the block's low and high word ranges.
fn unshuffle_words(words: &mut [u64], tmp: &mut [u64]) {
    const LO: u64 = 0xFFFF_FFFF;
    for w in words.iter_mut() {
        *w = unshuffle_word(*w, 6);
    }
    let half = words.len() / 2;
    for i in 0..half {
        let a = words[2 * i];
        let b = words[2 * i + 1];
        tmp[i] = (a & LO) | ((b & LO) << 32);
        tmp[half + i] = (a >> 32) | (b & !LO);
    }
    words.copy_from_slice(&tmp[..words.len()]);
}

/// Inverse of [`unshuffle_words`].
fn shuffle_words(words: &mut [u64], tmp: &mut [u64]) {
    const LO: u64 = 0xFFFF_FFFF;
    let half = words.len() / 2;
    for i in 0..half {
        let e = words[i];
        let o = words[half + i];
        tmp[2 * i] = (e & LO) | ((o & LO) << 32);
        tmp[2 * i + 1] = (e >> 32) | (o & !LO);
    }
    words.copy_from_slice(&tmp[..words.len()]);
    for w in words.iter_mut() {
        *w = shuffle_word(*w, 6);
    }
}

/// Applies the column wiring (rotate the low `r` index bits within every
/// `2^r`-line block) to one plane.
fn wire_plane(plane: &mut [u64], r: usize, wiring: WiringMode, tmp: &mut [u64]) {
    if r < 2 || matches!(wiring, WiringMode::Identity) {
        return; // rotating a 1-bit field is the identity
    }
    if r <= 6 {
        for w in plane.iter_mut() {
            *w = match wiring {
                WiringMode::Unshuffle => unshuffle_word(*w, r),
                WiringMode::Shuffle => shuffle_word(*w, r),
                WiringMode::Identity => unreachable!(),
            };
        }
    } else {
        let block_words = 1usize << (r - 6);
        for block in plane.chunks_mut(block_words) {
            match wiring {
                WiringMode::Unshuffle => unshuffle_words(block, tmp),
                WiringMode::Shuffle => shuffle_words(block, tmp),
                WiringMode::Identity => unreachable!(),
            }
        }
    }
}

/// Body of the fused column pass — see [`exchange_and_wire_plane`] for
/// the contract. Kept `#[inline(always)]` so the `#[target_feature]`
/// wrappers below each get their own fully-inlined copy that LLVM can
/// autovectorize at that feature level: every operation here is a
/// lane-wise 64-bit shift/mask/blend over sequential words, exactly the
/// shape that maps onto 4-wide (AVX2) and 8-wide (AVX-512) vector code.
/// The exchange is branchless — a zero flag word yields `ce = 0` and the
/// blend keeps `x` — so no flag-dependent control flow blocks the
/// vectorizer. `r` is dispatched through a `match` so each arm sees a
/// constant cascade depth.
#[inline(always)]
fn exchange_and_wire_body(
    plane: &mut [u64],
    flags: &[u64],
    r: usize,
    wiring: WiringMode,
    tmp: &mut [u64],
) {
    #[inline(always)]
    fn swapped(x: u64, f: u64) -> u64 {
        swap_pairs_word(x, f | (f << 1))
    }
    #[inline(always)]
    fn word_pass<const R: usize, const SHUF: bool>(plane: &mut [u64], flags: &[u64]) {
        for (x, &f) in plane.iter_mut().zip(flags) {
            let mut y = swapped(*x, f);
            if SHUF {
                let mut j = R - 1;
                while j >= 1 {
                    y = delta_swap(y, UNSHUFFLE_STEP[j - 1], 1 << (j - 1));
                    j -= 1;
                }
            } else {
                for j in 1..R {
                    y = delta_swap(y, UNSHUFFLE_STEP[j - 1], 1 << (j - 1));
                }
            }
            *x = y;
        }
    }
    if r < 2 || matches!(wiring, WiringMode::Identity) {
        for (x, &f) in plane.iter_mut().zip(flags) {
            *x = swapped(*x, f);
        }
        return;
    }
    if r <= 6 {
        match (wiring, r) {
            (WiringMode::Unshuffle, 2) => word_pass::<2, false>(plane, flags),
            (WiringMode::Unshuffle, 3) => word_pass::<3, false>(plane, flags),
            (WiringMode::Unshuffle, 4) => word_pass::<4, false>(plane, flags),
            (WiringMode::Unshuffle, 5) => word_pass::<5, false>(plane, flags),
            (WiringMode::Unshuffle, _) => word_pass::<6, false>(plane, flags),
            (WiringMode::Shuffle, 2) => word_pass::<2, true>(plane, flags),
            (WiringMode::Shuffle, 3) => word_pass::<3, true>(plane, flags),
            (WiringMode::Shuffle, 4) => word_pass::<4, true>(plane, flags),
            (WiringMode::Shuffle, 5) => word_pass::<5, true>(plane, flags),
            (WiringMode::Shuffle, _) => word_pass::<6, true>(plane, flags),
            (WiringMode::Identity, _) => unreachable!(),
        }
        return;
    }
    // Multi-word blocks: same dataflow as `unshuffle_words` /
    // `shuffle_words`, with the exchange folded into the first read of
    // each word and the in-word cascade folded into the merge passes.
    const LO: u64 = 0xFFFF_FFFF;
    let block_words = 1usize << (r - 6);
    let half = block_words / 2;
    if matches!(wiring, WiringMode::Unshuffle) {
        // Two disjoint plane-wide passes so each one vectorizes: the
        // exchange plus in-word cascade runs contiguously into `tmp`,
        // then the cross-word half of the unshuffle — a pure
        // deinterleave of 32-bit halves within each block (even words'
        // halves land low, odd words' halves land high) — reads `tmp`
        // back into the plane with no aliasing to defeat the vectorizer.
        for (t, (&x, &f)) in tmp.iter_mut().zip(plane.iter().zip(flags)) {
            *t = unshuffle_word(swapped(x, f), 6);
        }
        deinterleave_u32_halves(&tmp[..plane.len()], plane, block_words);
        return;
    }
    for (block, bflags) in plane
        .chunks_exact_mut(block_words)
        .zip(flags.chunks_exact(block_words))
    {
        match wiring {
            WiringMode::Shuffle => {
                for i in 0..half {
                    let e = swapped(block[i], bflags[i]);
                    let o = swapped(block[half + i], bflags[half + i]);
                    tmp[2 * i] = (e & LO) | ((o & LO) << 32);
                    tmp[2 * i + 1] = (e >> 32) | (o & !LO);
                }
                for (x, &t) in block.iter_mut().zip(tmp[..block_words].iter()) {
                    *x = shuffle_word(t, 6);
                }
            }
            WiringMode::Unshuffle | WiringMode::Identity => unreachable!(),
        }
    }
}

/// Scalar body of [`deinterleave_u32_halves`]: within each
/// `block_words`-word block, the 32-bit halves of even-indexed words are
/// packed into the low half of the block and the halves of odd-indexed
/// words into the high half, preserving order — the cross-word part of
/// an unshuffle once the in-word cascade has handled the low six index
/// bits.
#[inline(always)]
fn deinterleave_u32_body(src: &[u64], dst: &mut [u64], block_words: usize) {
    const LO: u64 = 0xFFFF_FFFF;
    let half = block_words / 2;
    for (d, s) in dst
        .chunks_exact_mut(block_words)
        .zip(src.chunks_exact(block_words))
    {
        for i in 0..half {
            let a = s[2 * i];
            let b = s[2 * i + 1];
            d[i] = (a & LO) | ((b & LO) << 32);
            d[half + i] = (a >> 32) | (b & !LO);
        }
    }
}

/// [`deinterleave_u32_body`] as explicit AVX-512 permutes: the
/// deinterleave is one in-lane or cross-lane 32-bit shuffle per 512-bit
/// register regardless of block size — `vpshufd` when a 128-bit lane
/// holds a whole 2-word block, `vpermd` when a block fits one register,
/// and two-source `vpermt2d` for wider blocks.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn deinterleave_u32_avx512(src: &[u64], dst: &mut [u64], block_words: usize) {
    use std::arch::x86_64::*;
    let n = src.len();
    debug_assert_eq!(dst.len(), n);
    debug_assert_eq!(n % block_words, 0);
    if n < 8 {
        deinterleave_u32_body(src, dst, block_words);
        return;
    }
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    // SAFETY: every offset below stays within the `n`-word slices, and
    // the caller guaranteed AVX-512F via runtime detection.
    unsafe {
        match block_words {
            2 => {
                // One block per 128-bit lane: [a.lo a.hi b.lo b.hi] →
                // [a.lo b.lo a.hi b.hi] is an in-lane dword shuffle.
                let mut w = 0;
                while w + 8 <= n {
                    let v = _mm512_loadu_si512(sp.add(w).cast());
                    let p = _mm512_shuffle_epi32::<{ _MM_PERM_DBCA }>(v);
                    _mm512_storeu_si512(dp.add(w).cast(), p);
                    w += 8;
                }
                deinterleave_u32_body(&src[w..], &mut dst[w..], block_words);
            }
            4 | 8 => {
                // A block fits one register: deinterleave dwords within
                // each 256-bit half (4-word blocks) or the full register
                // (8-word blocks) independently.
                let idx = if block_words == 4 {
                    _mm512_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7, 8, 10, 12, 14, 9, 11, 13, 15)
                } else {
                    _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15)
                };
                let mut w = 0;
                while w + 8 <= n {
                    let v = _mm512_loadu_si512(sp.add(w).cast());
                    let p = _mm512_permutexvar_epi32(idx, v);
                    _mm512_storeu_si512(dp.add(w).cast(), p);
                    w += 8;
                }
                deinterleave_u32_body(&src[w..], &mut dst[w..], block_words);
            }
            _ => {
                // Blocks of 16+ words: each pair of source registers
                // yields one register of low halves (for the block's low
                // half) and one of high halves (for its high half).
                let lo =
                    _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30);
                let hi =
                    _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31);
                let half = block_words / 2;
                for base in (0..n).step_by(block_words) {
                    for i in (0..half).step_by(8) {
                        let z0 = _mm512_loadu_si512(sp.add(base + 2 * i).cast());
                        let z1 = _mm512_loadu_si512(sp.add(base + 2 * i + 8).cast());
                        let l = _mm512_permutex2var_epi32(z0, lo, z1);
                        let h = _mm512_permutex2var_epi32(z0, hi, z1);
                        _mm512_storeu_si512(dp.add(base + i).cast(), l);
                        _mm512_storeu_si512(dp.add(base + half + i).cast(), h);
                    }
                }
            }
        }
    }
}

/// Cross-word unshuffle step: see [`deinterleave_u32_body`]. Dispatches
/// to the AVX-512 permute build when the CPU supports it (once per plane
/// pass — callers hand in whole planes, not single blocks).
fn deinterleave_u32_halves(src: &[u64], dst: &mut [u64], block_words: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F was just detected.
            unsafe { deinterleave_u32_avx512(src, dst, block_words) };
            return;
        }
    }
    deinterleave_u32_body(src, dst, block_words);
}

/// [`apply_column_body`]: every live plane of one column pushed through
/// the fused exchange-and-wire pass in a single function body, so the
/// SIMD dispatch and call overhead are paid once per column instead of
/// once per plane (the batched kernel applies `O(m)` planes per column).
#[inline(always)]
fn apply_column_body(
    live: &mut [u64],
    words: usize,
    flags: &[u64],
    r: usize,
    wiring: WiringMode,
    tmp: &mut [u64],
) {
    for plane in live.chunks_exact_mut(words) {
        exchange_and_wire_body(plane, flags, r, wiring, tmp);
    }
}

/// [`apply_column_body`] compiled with AVX-512 enabled; reachable only
/// after a runtime feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn apply_column_avx512(
    live: &mut [u64],
    words: usize,
    flags: &[u64],
    r: usize,
    wiring: WiringMode,
    tmp: &mut [u64],
) {
    apply_column_body(live, words, flags, r, wiring, tmp);
}

/// [`apply_column_body`] compiled with AVX2 enabled; reachable only after
/// a runtime feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn apply_column_avx2(
    live: &mut [u64],
    words: usize,
    flags: &[u64],
    r: usize,
    wiring: WiringMode,
    tmp: &mut [u64],
) {
    apply_column_body(live, words, flags, r, wiring, tmp);
}

/// Applies one column's exchange-and-wire pass to a concatenation of
/// live planes (each `words` long), dispatching once to the widest SIMD
/// build this CPU supports.
fn apply_column(
    live: &mut [u64],
    words: usize,
    flags: &[u64],
    r: usize,
    wiring: WiringMode,
    tmp: &mut [u64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: the features the wrapper enables were just detected.
            unsafe { apply_column_avx512(live, words, flags, r, wiring, tmp) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected.
            unsafe { apply_column_avx2(live, words, flags, r, wiring, tmp) };
            return;
        }
    }
    apply_column_body(live, words, flags, r, wiring, tmp);
}

/// Scalar destination-bit extraction over whole words: for each word of
/// 64 cells, bit `j` of plane `srel` receives destination bit
/// `m - 1 - srel` of cell `j`.
#[inline(always)]
fn extract_planes_words_body(
    dests: &[u32],
    planes: &mut [u64],
    words: usize,
    m: usize,
    w0: usize,
    w1: usize,
) {
    let mut acc = [0u64; 24];
    for w in w0..w1 {
        acc[..m].fill(0);
        for (j, &d) in dests[w << 6..(w + 1) << 6].iter().enumerate() {
            let d = u64::from(d);
            for (srel, a) in acc[..m].iter_mut().enumerate() {
                *a |= ((d >> (m - 1 - srel)) & 1) << j;
            }
        }
        for (srel, &a) in acc[..m].iter().enumerate() {
            planes[srel * words + w] = a;
        }
    }
}

/// AVX-512 destination-bit extraction: loads each word's 64 `u32`
/// destinations as four 16-lane vectors once, then peels one plane per
/// `vptestm` mask round — `4 + 4m` vector ops per word against the
/// scalar body's `64m` shift-and-or steps.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn extract_planes_avx512(
    dests: &[u32],
    planes: &mut [u64],
    words: usize,
    m: usize,
    w0: usize,
    w1: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(dests.len() >= w1 << 6);
    for w in w0..w1 {
        let base = w << 6;
        // SAFETY: the caller guarantees cells `base..base + 64` exist;
        // unaligned loads are explicitly allowed by `loadu`.
        let (v0, v1, v2, v3) = unsafe {
            let p = dests.as_ptr().add(base);
            (
                _mm512_loadu_si512(p.cast()),
                _mm512_loadu_si512(p.add(16).cast()),
                _mm512_loadu_si512(p.add(32).cast()),
                _mm512_loadu_si512(p.add(48).cast()),
            )
        };
        for srel in 0..m {
            let bit = _mm512_set1_epi32(1 << (m - 1 - srel));
            let m0 = _mm512_test_epi32_mask(v0, bit) as u64;
            let m1 = _mm512_test_epi32_mask(v1, bit) as u64;
            let m2 = _mm512_test_epi32_mask(v2, bit) as u64;
            let m3 = _mm512_test_epi32_mask(v3, bit) as u64;
            planes[srel * words + w] = m0 | (m1 << 16) | (m2 << 32) | (m3 << 48);
        }
    }
}

/// Fills plane words `w0..w1` from the destination column, one bit-plane
/// row per destination bit. Dispatches to the AVX-512 mask-test path
/// when the CPU has it.
fn extract_planes_words(
    dests: &[u32],
    planes: &mut [u64],
    words: usize,
    m: usize,
    w0: usize,
    w1: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: the features the wrapper enables were just detected.
            unsafe { extract_planes_avx512(dests, planes, words, m, w0, w1) };
            return;
        }
    }
    extract_planes_words_body(dests, planes, words, m, w0, w1);
}

/// First unbalanced box of the column, as `(box_start, ones)`, scanning
/// in line order — the same box the scalar path stops at. `None` when
/// every box satisfies the Definition 3 input assumption (exactly one 1
/// for `sp(1)`, an even count otherwise).
fn first_unbalanced(plane: &[u64], span: usize, box_size: usize) -> Option<(usize, usize)> {
    let span_mask = if span >= 64 {
        !0u64
    } else {
        (1u64 << span) - 1
    };
    if box_size == 2 {
        for (w, &x) in plane.iter().enumerate() {
            // A pair is valid iff its parity is 1; the fold leaves each
            // pair's parity on its even bit.
            let bad = !(x ^ (x >> 1)) & EVEN & span_mask;
            if bad != 0 {
                let t = bad.trailing_zeros() as usize;
                let ones = ((x >> t) & 3).count_ones() as usize;
                return Some((w * 64 + t, ones));
            }
        }
        return None;
    }
    if box_size <= 64 {
        let p = box_size.trailing_zeros() as usize;
        for (w, &x) in plane.iter().enumerate() {
            let mut par = x;
            let mut sh = 1;
            while sh < box_size {
                par ^= par >> sh;
                sh <<= 1;
            }
            // Odd lane parity = odd number of ones = unbalanced.
            let bad = par & STRIDE[p];
            if bad != 0 {
                let t = bad.trailing_zeros() as usize;
                let lane_mask = if box_size == 64 {
                    !0u64
                } else {
                    (1u64 << box_size) - 1
                };
                let ones = ((x >> t) & lane_mask).count_ones() as usize;
                return Some((w * 64 + t, ones));
            }
        }
        return None;
    }
    let box_words = box_size / 64;
    for (b, block) in plane.chunks(box_words).enumerate() {
        let ones: u32 = block.iter().map(|w| w.count_ones()).sum();
        if !ones.is_multiple_of(2) {
            return Some((b * box_size, ones as usize));
        }
    }
    None
}

/// Body of the column-control sweep — see [`column_flags`] for the
/// contract. `#[inline(always)]` so each `#[target_feature]` wrapper
/// below gets its own autovectorizable copy; the in-word arbiter depth
/// `p` is dispatched through a `match` so every arm's up/down sweep
/// unrolls with constant shift amounts.
#[inline(always)]
fn column_flags_body(plane: &[u64], flags: &mut [u64], box_size: usize, pk: &mut ColumnTrees<'_>) {
    #[inline(always)]
    fn sweep<const P: usize>(plane: &[u64], flags: &mut [u64]) {
        for (f, &x) in flags.iter_mut().zip(plane) {
            *f = word_controls(x, P);
        }
    }
    if box_size == 2 {
        // sp(1) has no arbiter: control = s(2t) directly.
        for (f, &x) in flags.iter_mut().zip(plane) {
            *f = x & EVEN;
        }
        return;
    }
    if box_size <= 64 {
        match box_size.trailing_zeros() {
            2 => sweep::<2>(plane, flags),
            3 => sweep::<3>(plane, flags),
            4 => sweep::<4>(plane, flags),
            5 => sweep::<5>(plane, flags),
            _ => sweep::<6>(plane, flags),
        }
        return;
    }
    // Boxes wider than a word. Up to the 64-word (4096-line) box a u64
    // cross-tree can hold, pack each word's parity into one word and run
    // the same SWAR up/down sweep on it that `word_controls` runs in a
    // lane — the cross-tree root echoes its own up-value exactly like the
    // in-word root, so the composite is two nested sweeps with no
    // heap-allocated tree in between. Each word's levels stay in
    // registers (recomputed on the down-sweep instead of spilled).
    let box_words = box_size / 64;
    if box_words <= 64 {
        let q = box_words.trailing_zeros() as usize;
        for (bw, block) in plane.chunks(box_words).enumerate() {
            let mut rootw = 0u64;
            for (w, &x) in block.iter().enumerate() {
                rootw |= u64::from(x.count_ones() & 1) << w;
            }
            let clev = word_levels(rootw, q);
            let zd_words = lane_flags(&clev, q, clev[q]);
            for (w, &x) in block.iter().enumerate() {
                let lev = word_levels(x, 6);
                let zd = lane_flags(&lev, 6, (zd_words >> w) & 1);
                flags[bw * box_words + w] = (x ^ zd) & EVEN;
            }
        }
        return;
    }
    // Boxes past 2^12 lines (m > 12): the word parities no longer fit one
    // u64, so route them through the heap cross-tree.
    for (bw, block) in plane.chunks(box_words).enumerate() {
        for (r, &x) in pk.roots[..box_words].iter_mut().zip(block.iter()) {
            *r = x.count_ones() & 1 == 1;
        }
        zd_into_leaves(&pk.roots[..box_words], pk.tree, pk.zds);
        for (w, &x) in block.iter().enumerate() {
            let lev = word_levels(x, 6);
            let zd = lane_flags(&lev, 6, u64::from(pk.zds[w]));
            flags[bw * box_words + w] = (x ^ zd) & EVEN;
        }
    }
}

/// [`column_flags_body`] compiled with AVX-512 enabled; reachable only
/// after a runtime feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn column_flags_avx512(
    plane: &[u64],
    flags: &mut [u64],
    box_size: usize,
    pk: &mut ColumnTrees<'_>,
) {
    column_flags_body(plane, flags, box_size, pk);
}

/// [`column_flags_body`] compiled with AVX2 enabled; reachable only
/// after a runtime feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn column_flags_avx2(plane: &[u64], flags: &mut [u64], box_size: usize, pk: &mut ColumnTrees<'_>) {
    column_flags_body(plane, flags, box_size, pk);
}

/// Packs the whole column's switch controls into `flags` (bit `2t` of the
/// window word = exchange for the pair on lines `2t`, `2t + 1`), for a
/// column free of faults. Dispatches to the widest SIMD build of the
/// sweep this CPU supports.
fn column_flags(plane: &[u64], flags: &mut [u64], box_size: usize, pk: &mut ColumnTrees<'_>) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: the features the wrapper enables were just detected.
            unsafe { column_flags_avx512(plane, flags, box_size, pk) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was just detected.
            unsafe { column_flags_avx2(plane, flags, box_size, pk) };
            return;
        }
    }
    column_flags_body(plane, flags, box_size, pk);
}

/// The cross-tree working set threaded into [`column_flags`].
struct ColumnTrees<'a> {
    roots: &'a mut [bool],
    zds: &'a mut Vec<bool>,
    tree: &'a mut Vec<bool>,
}

/// Reads one box's true destination bits out of the current plane.
fn bits_from_plane(plane: &[u64], start: usize, box_size: usize, bits: &mut Vec<bool>) {
    bits.clear();
    bits.extend((start..start + box_size).map(|j| plane[j >> 6] >> (j & 63) & 1 == 1));
}

/// Routes `stages` of `net` over one aligned slice, word-parallel. Same
/// contract and error values as the scalar kernel; see the module docs.
pub(crate) fn route_span_packed(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
    faults: Option<&FaultMap>,
) -> Result<(), RouteError> {
    if stages.is_empty() {
        return Ok(());
    }
    let m = net.m();
    let span = lines.len();
    debug_assert!(stages.end <= m, "stage range {stages:?} exceeds m = {m}");
    debug_assert_eq!(
        span,
        1usize << (m - stages.start),
        "slice length must match the starting stage"
    );
    debug_assert_eq!(first_line % span, 0, "slice must be aligned");
    assert!(span <= u32::MAX as usize, "span must fit the position perm");
    let span_log = span.trailing_zeros() as usize;
    let words = span.div_ceil(64);
    let num_stages = stages.end - stages.start;
    let strict = matches!(net.policy(), RoutePolicy::Strict);
    let wiring = net.wiring();
    scratch.ensure(span);
    scratch.packed.ensure(span, words, num_stages);
    let StageScratch {
        lines: gather,
        bits,
        flags: box_flags,
        up,
        tapped,
        packed,
        ..
    } = scratch;
    let PackedScratch {
        planes,
        flags,
        tmp,
        perm,
        tmp_perm,
        roots,
        zds,
        tree,
        ..
    } = packed;

    // Frame cache: each record's address bits, extracted once per span.
    for (srel, stage) in stages.clone().enumerate() {
        let sh = m - 1 - stage;
        for w in 0..words {
            let base = w * 64;
            let mut x = 0u64;
            for (j, r) in lines[base..span.min(base + 64)].iter().enumerate() {
                debug_assert!(r.dest() >> m == 0, "destination must fit in m bits");
                x |= ((r.dest() as u64 >> sh) & 1) << j;
            }
            planes[srel * words + w] = x;
        }
    }
    for (j, p) in perm.iter_mut().enumerate() {
        *p = j as u32;
    }

    for (srel, main_stage) in stages.clone().enumerate() {
        let k = m - main_stage;
        for internal in 0..k {
            let box_size = 1usize << (k - internal);
            let column_faults = faults.filter(|f| f.affects(main_stage, internal));
            // Planes for already-routed stages are dead; the current
            // stage's plane feeds the arbiter, later ones ride along.
            let live = &mut planes[srel * words..];
            let (cur, future) = live.split_at_mut(words);
            if let Some(map) = column_faults {
                // Faulted column: scalar per-box arbiter in line order so
                // fault semantics (taps, overrides, audits) and error
                // ordering match the scalar path exactly; bits come from
                // the plane, never re-derived.
                flags[..words].fill(0);
                for start in (0..span).step_by(box_size) {
                    bits_from_plane(cur, start, box_size, bits);
                    if strict {
                        check_balanced(
                            bits,
                            SplitterSite {
                                main_stage,
                                internal_stage: internal,
                                first_line: first_line + start,
                            },
                        )?;
                    }
                    tapped.clear();
                    tapped.extend_from_slice(bits);
                    map.tap_bits(main_stage, internal, first_line + start, tapped);
                    controls_into(tapped, up, box_flags);
                    map.override_flags(main_stage, internal, first_line + start, tapped, box_flags);
                    for (t, &c) in box_flags.iter().enumerate() {
                        if c {
                            let pos = start + 2 * t;
                            flags[pos >> 6] |= 1 << (pos & 63);
                        }
                    }
                    // Post-swap audit from the pre-swap true bits and the
                    // flags — the swap outcome is determined by both, so
                    // nothing is re-derived from the records.
                    if strict {
                        let mut even_ones = 0usize;
                        let mut odd_ones = 0usize;
                        for (t, &c) in box_flags.iter().enumerate() {
                            let (a, b) = (bits[2 * t], bits[2 * t + 1]);
                            let (pe, po) = if c { (b, a) } else { (a, b) };
                            even_ones += usize::from(pe);
                            odd_ones += usize::from(po);
                        }
                        let balanced = if box_size == 2 {
                            even_ones == 0 && odd_ones == 1
                        } else {
                            even_ones == odd_ones
                        };
                        if !balanced {
                            return Err(RouteError::HardwareFault {
                                main_stage,
                                internal_stage: internal,
                                first_line: first_line + start,
                                width: box_size,
                                even_ones,
                                odd_ones,
                            });
                        }
                    }
                }
            } else {
                if strict {
                    if let Some((start, ones)) = first_unbalanced(cur, span, box_size) {
                        return Err(RouteError::UnbalancedSplitter {
                            main_stage,
                            internal_stage: internal,
                            first_line: first_line + start,
                            width: box_size,
                            ones,
                        });
                    }
                }
                let mut trees = ColumnTrees { roots, zds, tree };
                column_flags(cur, flags, box_size, &mut trees);
            }
            // Exchange: flag words drive the position permutation and
            // every live plane; records move once, at the gather below.
            for w in 0..words {
                let f = flags[w];
                if f == 0 {
                    continue;
                }
                let base = w * 64;
                apply_flag_word(f, &mut perm[base..span.min(base + 64)]);
                let ce = f | (f << 1);
                cur[w] = swap_pairs_word(cur[w], ce);
                for plane in future.chunks_exact_mut(words) {
                    plane[w] = swap_pairs_word(plane[w], ce);
                }
            }
            // Wiring: rotate the low r index bits within each 2^r block
            // (r = box width inside a stage, r = k for the main wiring).
            let last_internal = internal + 1 == k;
            let r = if !last_internal {
                k - internal
            } else if main_stage + 1 < m {
                k
            } else {
                continue;
            };
            if !matches!(wiring, WiringMode::Identity) {
                let bs = 1usize << r;
                for (j, &p) in perm.iter().enumerate().take(span) {
                    let base = j & !(bs - 1);
                    let local = j & (bs - 1);
                    let rl = match wiring {
                        WiringMode::Unshuffle => (local >> 1) | ((local & 1) << (r - 1)),
                        WiringMode::Shuffle => ((local << 1) & (bs - 1)) | (local >> (r - 1)),
                        WiringMode::Identity => unreachable!(),
                    };
                    tmp_perm[base | rl] = p;
                }
                perm[..span].copy_from_slice(&tmp_perm[..span]);
                wire_plane(cur, r, wiring, tmp);
                for plane in future.chunks_exact_mut(words) {
                    wire_plane(plane, r, wiring, tmp);
                }
            }
        }
    }
    let _ = span_log;
    // One gather moves every record to its final line.
    for (dst, &src) in gather[..span].iter_mut().zip(perm.iter()) {
        *dst = lines[src as usize];
    }
    lines.copy_from_slice(&gather[..span]);
    Ok(())
}

/// Routes every valid frame of a [`FrameBatch`] through all `m` stages at
/// once, word-parallel over the *concatenated* frame-major planes: bit
/// `f·n + j` of plane `s` is destination bit `s` of frame `f`'s cell `j`,
/// so every `u64` word is fully occupied regardless of `m` and the
/// arbiter sweeps, exchanges and wirings run at full lane utilisation.
///
/// Frames never interact: each occupies an aligned `n`-cell region, every
/// box (`≤ n` lines, power of two) and wiring block (`2^r ≤ n` lines)
/// divides that alignment, and frames marked `Err` in `valid` contribute
/// all-zero plane regions — zero lanes produce zero exchange flags, so
/// their (skipped) cells are never moved and never read back.
///
/// Output movement:
/// - **Strict** (frames are validated permutations): the sweeps carry the
///   destination planes forward — each column's flags are computed from
///   plane bits whose positions those same sweeps produced — and the final
///   movement short-circuits through the delivery guarantee (Theorem 2:
///   output line `d` holds the record destined `d`), as one frame-blocked
///   scatter. Byte-identical to the scalar oracle by the same theorem.
/// - **Permissive** (arbitrary traffic): `m` *index* bit-planes ride
///   through every exchange and wiring — the word-parallel analogue of
///   the single-frame kernel's position `perm` — and the final gather
///   reconstructs each slot's source index from them.
///
/// Infallible: validation happened in [`crate::batch::route_batch`], and
/// validated strict traffic cannot unbalance a splitter (Theorem 2), which
/// debug builds assert.
///
/// [`FrameBatch`]: crate::batch::FrameBatch
pub(crate) fn route_batch_packed(
    net: &BnbNetwork,
    batch: &mut crate::batch::FrameBatch,
    valid: &[Result<(), RouteError>],
    scratch: &mut StageScratch,
) {
    let m = net.m();
    let n = 1usize << m;
    let frames = batch.frames();
    debug_assert_eq!(batch.width(), n);
    debug_assert_eq!(valid.len(), frames);
    assert!(m <= 24, "batched kernel supports m <= 24");
    let cells = frames * n;
    let words = cells.div_ceil(64);
    let strict = matches!(net.policy(), RoutePolicy::Strict);
    let wiring = net.wiring();
    scratch.packed.ensure_batch(cells, words, m, !strict);
    let PackedScratch {
        planes,
        flags,
        tmp,
        roots,
        zds,
        tree,
        iplanes,
        out_dests,
        out_data,
        ..
    } = &mut scratch.packed;
    let (dests, data) = batch.soa_mut();

    // Extraction: one pass over each valid frame's destinations fills all
    // m planes; invalid frames stay zero (inert lanes).
    for (f, res) in valid.iter().enumerate() {
        if res.is_err() {
            continue;
        }
        let base = f * n;
        if n >= 64 {
            extract_planes_words(dests, planes, words, m, base >> 6, (base + n) >> 6);
        } else {
            for (j, &d) in dests[base..base + n].iter().enumerate() {
                let g = base + j;
                let d = d as u64;
                for srel in 0..m {
                    planes[srel * words + (g >> 6)] |= ((d >> (m - 1 - srel)) & 1) << (g & 63);
                }
            }
        }
    }
    if !strict {
        // Index planes: bit b of the within-frame line. Frame bases are
        // multiples of n = 2^m, so for b < m this is bit b of the global
        // position — a fixed per-word constant.
        for b in 0..m {
            let row = &mut iplanes[b * words..(b + 1) * words];
            if b < 6 {
                row.fill(IBIT[b]);
            } else {
                for (w, x) in row.iter_mut().enumerate() {
                    *x = if (w >> (b - 6)) & 1 == 1 { !0 } else { 0 };
                }
            }
        }
    }

    let all_valid = valid.iter().all(|r| r.is_ok());
    for main_stage in 0..m {
        let srel = main_stage;
        let k = m - main_stage;
        for internal in 0..k {
            let box_size = 1usize << (k - internal);
            let live = &mut planes[srel * words..m * words];
            if strict && all_valid && cells.is_multiple_of(64) {
                // Validated permutations satisfy Definition 3 at every
                // splitter (Theorem 2); there is nothing to detect. (The
                // check reads whole words, so it only applies when no
                // trailing zero lanes pad the last word.)
                debug_assert!(
                    first_unbalanced(&live[..words], cells, box_size).is_none(),
                    "validated strict batch unbalanced at stage {main_stage}.{internal}"
                );
            }
            let mut trees = ColumnTrees { roots, zds, tree };
            column_flags(&live[..words], flags, box_size, &mut trees);
            // One fused pass per live plane applies the column's
            // exchanges and wiring together: the flag words drive the
            // current plane, every future plane, and (permissive) the
            // index planes; cells move once, at the gather below. The
            // fabric's very last column has no wiring (r = 0 sentinel).
            let last_internal = internal + 1 == k;
            let r = if !last_internal {
                k - internal
            } else if main_stage + 1 < m {
                k
            } else {
                0
            };
            apply_column(live, words, flags, r, wiring, tmp);
            if !strict {
                apply_column(iplanes, words, flags, r, wiring, tmp);
            }
        }
    }
    // Final movement, one frame-sized block at a time (a frame's working
    // set — n destinations + n payloads — stays cache-resident while its
    // cells land). Invalid frames are copied through untouched.
    for (f, res) in valid.iter().enumerate() {
        let base = f * n;
        if res.is_err() {
            out_dests[base..base + n].copy_from_slice(&dests[base..base + n]);
            out_data[base..base + n].copy_from_slice(&data[base..base + n]);
            continue;
        }
        if strict {
            // Delivery scatter: output line d holds the record destined
            // d — so the destination column is the identity ramp and
            // only the payloads actually scatter.
            for (j, od) in out_dests[base..base + n].iter_mut().enumerate() {
                *od = j as u32;
            }
            for j in 0..n {
                let g = base + j;
                out_data[base + dests[g] as usize] = data[g];
            }
        } else {
            // Index gather: each slot's source line comes out of the
            // carried index planes.
            for j in 0..n {
                let g = base + j;
                let (w, b) = (g >> 6, g & 63);
                let mut idx = 0usize;
                for (bb, plane) in iplanes.chunks_exact(words).enumerate() {
                    idx |= (((plane[w] >> b) & 1) as usize) << bb;
                }
                let src = base + idx;
                out_dests[g] = dests[src];
                out_data[g] = data[src];
            }
        }
    }
    std::mem::swap(dests, out_dests);
    std::mem::swap(data, out_data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitter::controls;
    use bnb_topology::bitops::{shuffle, unshuffle};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn word_to_bits(x: u64, n: usize) -> Vec<bool> {
        (0..n).map(|j| x >> j & 1 == 1).collect()
    }

    fn flags_to_word(ctl: &[bool]) -> u64 {
        ctl.iter()
            .enumerate()
            .fold(0, |acc, (t, &c)| acc | (u64::from(c) << (2 * t)))
    }

    /// The in-word arbiter agrees with the scalar tree on every lane, for
    /// every box width that fits a word — including unbalanced garbage.
    #[test]
    fn word_controls_match_scalar_tree() {
        let mut rng = StdRng::seed_from_u64(31);
        for p in 2..=6usize {
            let n = 1usize << p;
            for _ in 0..200 {
                let x: u64 = rng.random();
                let mut want = 0u64;
                for lane in 0..(64 / n) {
                    let bits = word_to_bits(x >> (lane * n), n);
                    want |= flags_to_word(&controls(&bits)) << (lane * n);
                }
                assert_eq!(word_controls(x, p), want, "p = {p}, x = {x:#x}");
            }
        }
    }

    /// Multi-word boxes: per-word sweeps plus the cross-tree over word
    /// parities equal one big scalar tree.
    #[test]
    fn cross_tree_controls_match_scalar_tree() {
        let mut rng = StdRng::seed_from_u64(32);
        for p in 7..=9usize {
            let n = 1usize << p;
            let box_words = n / 64;
            for _ in 0..40 {
                let plane: Vec<u64> = (0..box_words).map(|_| rng.random()).collect();
                let bits: Vec<bool> = plane.iter().flat_map(|&w| word_to_bits(w, 64)).collect();
                let want = controls(&bits);
                let mut roots = vec![false; box_words];
                let mut zds = Vec::new();
                let mut tree = Vec::new();
                let mut flags = vec![0u64; box_words];
                let mut trees = ColumnTrees {
                    roots: &mut roots,
                    zds: &mut zds,
                    tree: &mut tree,
                };
                column_flags(&plane, &mut flags, n, &mut trees);
                for (w, &f) in flags.iter().enumerate() {
                    let want_word = flags_to_word(&want[w * 32..(w + 1) * 32]);
                    assert_eq!(f, want_word, "p = {p}, word = {w}");
                }
            }
        }
    }

    /// The delta-swap cascade is the index unshuffle, for every block
    /// width in a word and across words.
    #[test]
    fn wiring_cascade_matches_index_transform() {
        let mut rng = StdRng::seed_from_u64(33);
        for r in 2..=9usize {
            let bs = 1usize << r;
            let words = bs.div_ceil(64).max(2);
            let span = words * 64;
            let src: Vec<bool> = (0..span).map(|_| rng.random_bool(0.5)).collect();
            let mut plane: Vec<u64> = (0..words)
                .map(|w| (0..64).fold(0u64, |acc, j| acc | (u64::from(src[w * 64 + j]) << j)))
                .collect();
            for mode in [WiringMode::Unshuffle, WiringMode::Shuffle] {
                let mut got = plane.clone();
                let mut tmp = vec![0u64; words];
                wire_plane(&mut got, r, mode, &mut tmp);
                for (j, &src_bit) in src.iter().enumerate().take(span) {
                    let base = j & !(bs - 1);
                    let local = j & (bs - 1);
                    let dst = base
                        | match mode {
                            WiringMode::Unshuffle => unshuffle(r, r, local),
                            WiringMode::Shuffle => shuffle(r, r, local),
                            WiringMode::Identity => unreachable!(),
                        };
                    let got_bit = got[dst >> 6] >> (dst & 63) & 1 == 1;
                    assert_eq!(got_bit, src_bit, "r = {r}, {mode:?}, j = {j}");
                }
            }
            plane.rotate_left(1); // keep clippy quiet about unused mut
        }
    }

    /// Balance scanning returns the same first box and ones count the
    /// scalar `check_balanced` sweep finds.
    #[test]
    fn first_unbalanced_matches_scalar_scan() {
        let mut rng = StdRng::seed_from_u64(34);
        for (span, box_size) in [(64usize, 2usize), (64, 8), (64, 64), (256, 128), (32, 4)] {
            let words = span.div_ceil(64);
            for _ in 0..300 {
                let plane: Vec<u64> = (0..words)
                    .map(|w| {
                        let x: u64 = rng.random();
                        if span < 64 {
                            x & ((1 << span) - 1)
                        } else {
                            let _ = w;
                            x
                        }
                    })
                    .collect();
                let bits: Vec<bool> = (0..span)
                    .map(|j| plane[j >> 6] >> (j & 63) & 1 == 1)
                    .collect();
                let want = (0..span).step_by(box_size).find_map(|start| {
                    let ones = bits[start..start + box_size].iter().filter(|&&b| b).count();
                    let ok = if box_size == 2 {
                        ones == 1
                    } else {
                        ones % 2 == 0
                    };
                    (!ok).then_some((start, ones))
                });
                assert_eq!(
                    first_unbalanced(&plane, span, box_size),
                    want,
                    "span = {span}, box = {box_size}"
                );
            }
        }
    }
}
