//! Allocation-free batch routing.
//!
//! [`crate::network::BnbNetwork::route`] allocates fresh line buffers per
//! call — fine for tests, wasteful for a switch fabric routing millions of
//! batches. [`Router`] owns the scratch buffers and routes in place with a
//! double-buffer swap, producing bit-identical results (property-tested
//! against the allocating path).

use bnb_topology::bitops::paper_bit;
use bnb_topology::record::Record;

use crate::error::RouteError;
use crate::network::{BnbNetwork, RoutePolicy, WiringMode};
use crate::splitter::{check_balanced, controls_into, SplitterSite};

/// A reusable router bound to one network configuration.
///
/// # Example
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_core::router::Router;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let mut router = Router::new(BnbNetwork::with_inputs(8)?);
/// let p = Permutation::try_from(vec![6, 3, 0, 5, 2, 7, 4, 1])?;
/// let mut lines = records_for_permutation(&p);
/// router.route_in_place(&mut lines)?;
/// assert!(all_delivered(&lines));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    network: BnbNetwork,
    scratch: Vec<Record>,
    bits: Vec<bool>,
    flags: Vec<bool>,
    up: Vec<bool>,
    seen: Vec<usize>,
}

impl Router {
    /// A router for `network`, with scratch buffers sized to its width.
    pub fn new(network: BnbNetwork) -> Self {
        let n = network.inputs();
        Router {
            network,
            scratch: vec![Record::new(0, 0); n],
            bits: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            up: Vec::with_capacity(2 * n),
            seen: vec![usize::MAX; n],
        }
    }

    /// The bound network.
    pub fn network(&self) -> &BnbNetwork {
        &self.network
    }

    /// Routes `lines` in place: on return, `lines[j]` is the record
    /// delivered to output `j`.
    ///
    /// # Errors
    ///
    /// Identical contract to [`BnbNetwork::route`].
    pub fn route_in_place(&mut self, lines: &mut [Record]) -> Result<(), RouteError> {
        let n = self.network.inputs();
        let m = self.network.m();
        if lines.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: lines.len(),
            });
        }
        let w = self.network.w();
        for r in lines.iter() {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
            if w < 64 && r.data() >> w != 0 {
                return Err(RouteError::DataTooWide { data: r.data(), w });
            }
        }
        let strict = matches!(self.network.policy(), RoutePolicy::Strict);
        if strict {
            self.seen.iter_mut().for_each(|s| *s = usize::MAX);
            for (i, r) in lines.iter().enumerate() {
                if self.seen[r.dest()] != usize::MAX {
                    return Err(RouteError::DuplicateDestination {
                        dest: r.dest(),
                        first_input: self.seen[r.dest()],
                        second_input: i,
                    });
                }
                self.seen[r.dest()] = i;
            }
        }
        for main_stage in 0..m {
            let k = m - main_stage;
            for internal in 0..k {
                let box_size = 1usize << (k - internal);
                for start in (0..n).step_by(box_size) {
                    self.bits.clear();
                    self.bits.extend(
                        lines[start..start + box_size]
                            .iter()
                            .map(|r| paper_bit(m, r.dest(), main_stage)),
                    );
                    if strict {
                        check_balanced(
                            &self.bits,
                            SplitterSite {
                                main_stage,
                                internal_stage: internal,
                                first_line: start,
                            },
                        )?;
                    }
                    controls_into(&self.bits, &mut self.up, &mut self.flags);
                    for (t, &c) in self.flags.iter().enumerate() {
                        if c {
                            lines.swap(start + 2 * t, start + 2 * t + 1);
                        }
                    }
                }
                // Wiring into the scratch buffer, then copy back (the swap
                // is logical: scratch is reused every column).
                let last_internal = internal + 1 == k;
                if !last_internal {
                    #[allow(clippy::needless_range_loop)] // index j is the wiring domain
                    for j in 0..n {
                        let base = j & !(box_size - 1);
                        let local = j & (box_size - 1);
                        let span_log = box_size.trailing_zeros() as usize;
                        let dst = base
                            | match self.network.wiring() {
                                WiringMode::Unshuffle => {
                                    bnb_topology::bitops::unshuffle(span_log, span_log, local)
                                }
                                WiringMode::Identity => local,
                                WiringMode::Shuffle => {
                                    bnb_topology::bitops::shuffle(span_log, span_log, local)
                                }
                            };
                        self.scratch[dst] = lines[j];
                    }
                    lines.copy_from_slice(&self.scratch);
                } else if main_stage + 1 < m {
                    #[allow(clippy::needless_range_loop)] // index j is the wiring domain
                    for j in 0..n {
                        let dst = match self.network.wiring() {
                            WiringMode::Unshuffle => bnb_topology::bitops::unshuffle(k, m, j),
                            WiringMode::Identity => j,
                            WiringMode::Shuffle => bnb_topology::bitops::shuffle(k, m, j),
                        };
                        self.scratch[dst] = lines[j];
                    }
                    lines.copy_from_slice(&self.scratch);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_allocating_route_on_random_permutations() {
        let mut rng = StdRng::seed_from_u64(60);
        for m in [1usize, 3, 5, 8] {
            let net = BnbNetwork::builder(m).data_width(32).build();
            let mut router = Router::new(net);
            let n = 1usize << m;
            for _ in 0..20 {
                let p = Permutation::random(n, &mut rng);
                let records = records_for_permutation(&p);
                let expected = net.route(&records).unwrap();
                let mut lines = records;
                router.route_in_place(&mut lines).unwrap();
                assert_eq!(lines, expected, "m = {m}");
                assert!(all_delivered(&lines));
            }
        }
    }

    #[test]
    fn router_is_reusable_across_batches() {
        let mut router = Router::new(BnbNetwork::new(4));
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..50 {
            let mut lines = records_for_permutation(&Permutation::random(16, &mut rng));
            router.route_in_place(&mut lines).unwrap();
            assert!(all_delivered(&lines));
        }
    }

    #[test]
    fn validation_matches_network_contract() {
        let mut router = Router::new(BnbNetwork::new(2));
        let mut short = vec![Record::new(0, 0)];
        assert!(matches!(
            router.route_in_place(&mut short),
            Err(RouteError::WidthMismatch {
                expected: 4,
                actual: 1
            })
        ));
        let mut dup = vec![
            Record::new(1, 0),
            Record::new(1, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        assert!(matches!(
            router.route_in_place(&mut dup),
            Err(RouteError::DuplicateDestination { dest: 1, .. })
        ));
    }

    #[test]
    fn permissive_router_matches_permissive_network() {
        use rand::RngExt;
        let net = BnbNetwork::builder(3)
            .policy(RoutePolicy::Permissive)
            .data_width(8)
            .build();
        let mut router = Router::new(net);
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..30 {
            let records: Vec<Record> = (0..8)
                .map(|_| Record::new(rng.random_range(0..8), rng.random_range(0..256)))
                .collect();
            let expected = net.route(&records).unwrap();
            let mut lines = records;
            router.route_in_place(&mut lines).unwrap();
            assert_eq!(lines, expected);
        }
    }
}
