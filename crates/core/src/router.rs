//! Allocation-free batch routing.
//!
//! [`crate::network::BnbNetwork::route`] allocates fresh line buffers per
//! call — fine for tests, wasteful for a switch fabric routing millions of
//! batches. [`Router`] owns the scratch buffers and routes in place with a
//! double-buffer swap, producing bit-identical results (property-tested
//! against the allocating path).

use bnb_obs::{NoopObserver, Observer};
use bnb_topology::record::Record;

use crate::error::RouteError;
use crate::network::BnbNetwork;
use crate::stages::{route_span_inner, validate_lines, StageScratch};

/// A reusable router bound to one network configuration.
///
/// The `O` type parameter is the attached [`Observer`]; it defaults to
/// [`NoopObserver`], which costs nothing. Construct observed routers with
/// [`Router::with_observer`] or the network builder's
/// `observer(..).build_router()`.
///
/// # Example
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let mut router = BnbNetwork::builder_for(8)?.build_router();
/// let p = Permutation::try_from(vec![6, 3, 0, 5, 2, 7, 4, 1])?;
/// let mut lines = records_for_permutation(&p);
/// router.route_in_place(&mut lines)?;
/// assert!(all_delivered(&lines));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Attaching a metrics sink (shared by reference, so several routers can
/// feed one sink):
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_obs::Counters;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::records_for_permutation;
///
/// let counters = Counters::new();
/// let mut router = BnbNetwork::builder(3)
///     .observer(&counters)
///     .build_router();
/// let p = Permutation::try_from(vec![6, 3, 0, 5, 2, 7, 4, 1])?;
/// let mut lines = records_for_permutation(&p);
/// router.route_in_place(&mut lines)?;
/// // eq. (7): m(m+1)/2 switching columns for m = 3.
/// assert_eq!(counters.snapshot().columns, 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Router<O: Observer = NoopObserver> {
    network: BnbNetwork,
    scratch: StageScratch,
    seen: Vec<usize>,
    observer: O,
}

impl Router {
    /// An unobserved router for `network`, with scratch buffers sized to
    /// its width.
    pub fn new(network: BnbNetwork) -> Self {
        Router::with_observer(network, NoopObserver)
    }
}

impl<O: Observer> Router<O> {
    /// A router for `network` emitting routing events to `observer`.
    pub fn with_observer(network: BnbNetwork, observer: O) -> Self {
        let n = network.inputs();
        Router {
            network,
            scratch: StageScratch::with_capacity(n),
            seen: vec![usize::MAX; n],
            observer,
        }
    }

    /// The bound network.
    pub fn network(&self) -> &BnbNetwork {
        &self.network
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Routes `lines` in place: on return, `lines[j]` is the record
    /// delivered to output `j`.
    ///
    /// # Errors
    ///
    /// Identical contract to [`BnbNetwork::route`].
    pub fn route_in_place(&mut self, lines: &mut [Record]) -> Result<(), RouteError> {
        validate_lines(&self.network, lines, &mut self.seen)?;
        route_span_inner(
            &self.network,
            lines,
            0,
            0..self.network.m(),
            &mut self.scratch,
            &self.observer,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_allocating_route_on_random_permutations() {
        let mut rng = StdRng::seed_from_u64(60);
        for m in [1usize, 3, 5, 8] {
            let net = BnbNetwork::builder(m).data_width(32).build();
            let mut router = Router::new(net);
            let n = 1usize << m;
            for _ in 0..20 {
                let p = Permutation::random(n, &mut rng);
                let records = records_for_permutation(&p);
                let expected = net.route(&records).unwrap();
                let mut lines = records;
                router.route_in_place(&mut lines).unwrap();
                assert_eq!(lines, expected, "m = {m}");
                assert!(all_delivered(&lines));
            }
        }
    }

    #[test]
    fn router_is_reusable_across_batches() {
        let mut router = Router::new(BnbNetwork::new(4));
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..50 {
            let mut lines = records_for_permutation(&Permutation::random(16, &mut rng));
            router.route_in_place(&mut lines).unwrap();
            assert!(all_delivered(&lines));
        }
    }

    #[test]
    fn validation_matches_network_contract() {
        let mut router = Router::new(BnbNetwork::new(2));
        let mut short = vec![Record::new(0, 0)];
        assert!(matches!(
            router.route_in_place(&mut short),
            Err(RouteError::WidthMismatch {
                expected: 4,
                actual: 1
            })
        ));
        let mut dup = vec![
            Record::new(1, 0),
            Record::new(1, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        assert!(matches!(
            router.route_in_place(&mut dup),
            Err(RouteError::DuplicateDestination { dest: 1, .. })
        ));
    }

    #[test]
    fn permissive_router_matches_permissive_network() {
        use crate::network::RoutePolicy;
        use rand::RngExt;
        let net = BnbNetwork::builder(3)
            .policy(RoutePolicy::Permissive)
            .data_width(8)
            .build();
        let mut router = Router::new(net);
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..30 {
            let records: Vec<Record> = (0..8)
                .map(|_| Record::new(rng.random_range(0..8), rng.random_range(0..256)))
                .collect();
            let expected = net.route(&records).unwrap();
            let mut lines = records;
            router.route_in_place(&mut lines).unwrap();
            assert_eq!(lines, expected);
        }
    }
}
