//! Frame-batched routing: many frames, one kernel invocation.
//!
//! The paper's self-routing property makes control cost per-cell constant,
//! but the single-frame word-parallel kernel ([`crate::stages`]) loses
//! lane occupancy as the network shrinks relative to the word: a frame of
//! `2^m` cells fills only `2^m` of 64 lanes once `m < 6`, and even for
//! large `m` the *later* columns of every stage run on boxes narrower than
//! a word. Batching transposes the problem: [`FrameBatch`] holds `B`
//! frames in frame-major structure-of-arrays order, the planes of all
//! frames concatenate into `B·2^m`-bit bit-planes, and every SWAR sweep,
//! exchange and wiring word is fully occupied *regardless of `m`* — frames
//! narrower than a word simply share words, lane-aligned, and never
//! interact (a box spans at most one frame).
//!
//! [`route_batch`] is the whole-frame, validating entry point: it checks
//! every frame against the network contract (width, destination range,
//! payload width, strict uniqueness — the same checks, in the same scan
//! order, as [`validate_lines`]), routes all valid frames, and reports a
//! per-frame [`Result`] in [`BatchOutcome`]. Invalid frames keep their
//! original contents. Results are byte-identical to routing each frame
//! alone through [`RouteSpan::run`].
//!
//! Options that need per-frame machinery — an enabled observer wanting
//! per-column events, a non-empty [`FaultMap`], [`Kernel::Scalar`] — fall
//! back to frame-at-a-time routing through the same [`RouteSpan`]
//! dispatch, so semantics (fault detection, event streams, error values)
//! never depend on how frames were grouped.
//!
//! [`validate_lines`]: crate::stages::validate_lines
//! [`FaultMap`]: crate::fault::FaultMap

use bnb_topology::record::Record;

use crate::error::RouteError;
use crate::network::{BnbNetwork, RoutePolicy};
use crate::stages::{Kernel, RouteSpan, StageScratch};

/// The batched kernel's plane arithmetic indexes cells with `u32`s and
/// carries one plane per address bit; `m` beyond this falls back to
/// frame-at-a-time routing (a 16M-cell frame has no business batching).
const MAX_BATCHED_M: usize = 24;

/// `B` frames of width `n`, structure-of-arrays: destinations and payloads
/// of frame `f` occupy index range `f·n .. (f+1)·n` of two flat vectors.
///
/// This is the submit/drain currency of the batched routing path: build it
/// once with [`push_frame`](FrameBatch::push_frame), route it in place
/// with [`route_batch`], read results back with
/// [`read_frame_into`](FrameBatch::read_frame_into). The flat layout is
/// what lets the kernel extract *frame-major* bit-planes (all frames'
/// destination bit `b` contiguous) with full word occupancy.
///
/// ```
/// use bnb_core::{route_batch, BatchOutcome, BnbNetwork, FrameBatch, RouteSpan};
/// use bnb_core::stages::StageScratch;
/// use bnb_topology::record::Record;
///
/// let net = BnbNetwork::builder(3).build();
/// let n = net.inputs();
/// let mut batch = FrameBatch::new(n);
/// for f in 0..2u64 {
///     let frame: Vec<Record> = (0..n)
///         .map(|j| Record::new((j + f as usize) % n, 100 * f + j as u64))
///         .collect();
///     batch.push_frame(&frame);
/// }
/// let mut scratch = StageScratch::with_capacity(n);
/// let mut outcome = BatchOutcome::new();
/// route_batch(&net, &mut batch, &RouteSpan::new(), &mut scratch, &mut outcome);
/// assert!(outcome.all_ok());
/// let mut out = Vec::new();
/// batch.read_frame_into(1, &mut out);
/// // Delivered: output line d holds the record destined d.
/// assert!(out.iter().enumerate().all(|(d, r)| r.dest() == d));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameBatch {
    /// Frame width (cells per frame); every frame has exactly this many.
    n: usize,
    /// Destination of cell `j` of frame `f` at index `f * n + j`.
    dests: Vec<u32>,
    /// Payload of cell `j` of frame `f` at index `f * n + j`.
    data: Vec<u64>,
}

impl FrameBatch {
    /// An empty batch of `width`-cell frames.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        FrameBatch::with_capacity(width, 0)
    }

    /// An empty batch with room for `frames` frames of `width` cells.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn with_capacity(width: usize, frames: usize) -> Self {
        assert!(width > 0, "frame width must be positive");
        FrameBatch {
            n: width,
            dests: Vec::with_capacity(width * frames),
            data: Vec::with_capacity(width * frames),
        }
    }

    /// Appends one frame.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len()` differs from the batch width or any
    /// destination exceeds `u32::MAX` (out-of-*range* destinations are
    /// not checked here — [`route_batch`] reports them per frame).
    pub fn push_frame(&mut self, frame: &[Record]) {
        assert_eq!(frame.len(), self.n, "frame width mismatch");
        for r in frame {
            assert!(r.dest() <= u32::MAX as usize, "destination exceeds u32");
            self.dests.push(r.dest() as u32);
            self.data.push(r.data());
        }
    }

    /// Cells per frame.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.dests.len() / self.n
    }

    /// Total cells across all frames.
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Drops all frames, keeping capacity (steady-state reuse).
    pub fn clear(&mut self) {
        self.dests.clear();
        self.data.clear();
    }

    /// Copies frame `f` into `out` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `f >= self.frames()`.
    pub fn read_frame_into(&self, f: usize, out: &mut Vec<Record>) {
        assert!(f < self.frames(), "frame index out of range");
        let base = f * self.n;
        out.clear();
        out.extend(
            self.dests[base..base + self.n]
                .iter()
                .zip(&self.data[base..base + self.n])
                .map(|(&d, &x)| Record::new(d as usize, x)),
        );
    }

    /// Materialises every frame (convenience for tests and callers
    /// leaving the batched path).
    pub fn to_frames(&self) -> Vec<Vec<Record>> {
        let mut out = Vec::with_capacity(self.frames());
        for f in 0..self.frames() {
            let mut frame = Vec::with_capacity(self.n);
            self.read_frame_into(f, &mut frame);
            out.push(frame);
        }
        out
    }

    /// Overwrites frame `f` (the fallback path writes routed frames back).
    pub(crate) fn write_frame(&mut self, f: usize, frame: &[Record]) {
        debug_assert_eq!(frame.len(), self.n);
        let base = f * self.n;
        for (j, r) in frame.iter().enumerate() {
            self.dests[base + j] = r.dest() as u32;
            self.data[base + j] = r.data();
        }
    }

    /// The flat destination/payload columns, for the kernel.
    pub(crate) fn soa_mut(&mut self) -> (&mut Vec<u32>, &mut Vec<u64>) {
        (&mut self.dests, &mut self.data)
    }

    /// The flat destination column (read-only, for validation).
    pub(crate) fn dests(&self) -> &[u32] {
        &self.dests
    }

    /// The flat payload column (read-only, for validation).
    pub(crate) fn data(&self) -> &[u64] {
        &self.data
    }
}

/// Per-frame results of one [`route_batch`] call, reusable across calls
/// (steady state allocates nothing once grown).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    results: Vec<Result<(), RouteError>>,
}

impl BatchOutcome {
    /// An empty outcome.
    pub fn new() -> Self {
        BatchOutcome::default()
    }

    /// One result per frame, in frame order: `Ok(())` means the frame was
    /// routed (delivered, or — permissive — conserved); an error means
    /// the frame failed validation and kept its original contents.
    pub fn results(&self) -> &[Result<(), RouteError>] {
        &self.results
    }

    /// Whether every frame routed.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }

    pub(crate) fn results_mut(&mut self) -> &mut Vec<Result<(), RouteError>> {
        &mut self.results
    }
}

/// Validates one frame against the network contract — the same checks in
/// the same scan order as [`crate::stages::validate_lines`], over the
/// batch's columns instead of a `Record` slice, so the reported error for
/// any frame is identical to what per-frame validation would report.
fn validate_frame(
    net: &BnbNetwork,
    dests: &[u32],
    data: &[u64],
    seen: &mut Vec<usize>,
) -> Result<(), RouteError> {
    let n = net.inputs();
    let w = net.w();
    for (&d, &x) in dests.iter().zip(data) {
        if d as usize >= n {
            return Err(RouteError::DestinationTooWide {
                dest: d as usize,
                n,
            });
        }
        if w < 64 && x >> w != 0 {
            return Err(RouteError::DataTooWide { data: x, w });
        }
    }
    if matches!(net.policy(), RoutePolicy::Strict) {
        seen.clear();
        seen.resize(n, usize::MAX);
        for (i, &d) in dests.iter().enumerate() {
            let d = d as usize;
            if seen[d] != usize::MAX {
                return Err(RouteError::DuplicateDestination {
                    dest: d,
                    first_input: seen[d],
                    second_input: i,
                });
            }
            seen[d] = i;
        }
    }
    Ok(())
}

/// Validates and routes every frame of `batch` through all `m` stages of
/// `net`, in place, with the options in `opts`; per-frame results land in
/// `outcome` (previous contents replaced).
///
/// Each frame behaves exactly as if validated with
/// [`validate_lines`](crate::stages::validate_lines) and routed alone
/// with [`RouteSpan::run`] — byte-identical outputs, identical error
/// values — but fault-free unobserved batches (the steady-state hot path)
/// route through one word-parallel kernel invocation over the
/// concatenated frame-major bit-planes, with every SWAR word fully
/// occupied regardless of `m`. Frames that fail validation (and, under
/// faults, frames whose routing errors) keep their original contents.
///
/// Unlike the span entry points this routes whole frames only: engine
/// workers splitting a span route the slices with [`RouteSpan::run`].
pub fn route_batch(
    net: &BnbNetwork,
    batch: &mut FrameBatch,
    opts: &RouteSpan<'_>,
    scratch: &mut StageScratch,
    outcome: &mut BatchOutcome,
) {
    let n = net.inputs();
    let frames = batch.frames();
    let results = outcome.results_mut();
    results.clear();
    if batch.width() != n {
        // Every frame has the wrong width; nothing can route.
        results.resize(
            frames,
            Err(RouteError::WidthMismatch {
                expected: n,
                actual: batch.width(),
            }),
        );
        return;
    }
    for f in 0..frames {
        let base = f * n;
        results.push(validate_frame(
            net,
            &batch.dests()[base..base + n],
            &batch.data()[base..base + n],
            &mut scratch.seen,
        ));
    }

    let (observer, faults, kernel) = opts.effective();
    // The batched kernel covers exactly the configurations whose per-frame
    // dispatch would take the packed path *and* cannot fail after
    // validation: no faults, no enabled observer demanding events
    // (Kernel::Packed drops events per-frame too), not the scalar oracle,
    // and — under strict policy — the paper's Unshuffle wiring, the only
    // mode whose Theorem 2 guarantees every splitter balances for a
    // validated permutation (the ablation wirings can unbalance mid-route
    // and must keep per-frame error reporting).
    let strict = matches!(net.policy(), RoutePolicy::Strict);
    let batched = faults.is_none()
        && (observer.is_none() || matches!(kernel, Kernel::Packed))
        && !matches!(kernel, Kernel::Scalar)
        && (!strict || matches!(net.wiring(), crate::network::WiringMode::Unshuffle))
        && net.m() <= MAX_BATCHED_M;
    if batched {
        crate::packed::route_batch_packed(net, batch, results, scratch);
        return;
    }

    // Frame-at-a-time fallback: materialise each valid frame, route it
    // through the ordinary RouteSpan dispatch (observer events, fault
    // taps, scalar oracle — all per-frame semantics preserved), write the
    // result back. `frame_buf` is taken out of the scratch so the span
    // call can borrow the rest.
    let mut buf = std::mem::take(&mut scratch.frame_buf);
    for f in 0..frames {
        if outcome.results[f].is_err() {
            continue;
        }
        batch.read_frame_into(f, &mut buf);
        match opts.run(net, &mut buf, 0, 0..net.m(), scratch) {
            Ok(()) => batch.write_frame(f, &buf),
            // Failed frames keep their original contents (the copy in
            // `buf` absorbs the kernel's partial movement).
            Err(e) => outcome.results[f] = Err(e),
        }
    }
    scratch.frame_buf = buf;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::WiringMode;
    use crate::stages::validate_lines;

    fn frame(n: usize, perm: &[usize], tag: u64) -> Vec<Record> {
        perm.iter()
            .enumerate()
            .map(|(j, &d)| {
                assert!(d < n);
                Record::new(d, tag * 1000 + j as u64)
            })
            .collect()
    }

    fn oracle(net: &BnbNetwork, lines: &mut [Record]) -> Result<(), RouteError> {
        let mut scratch = StageScratch::with_capacity(lines.len());
        let mut seen = Vec::new();
        validate_lines(net, lines, &mut seen)?;
        RouteSpan::new()
            .kernel(Kernel::Scalar)
            .run(net, lines, 0, 0..net.m(), &mut scratch)
    }

    #[test]
    fn batched_matches_scalar_oracle_small() {
        for m in 1..=4usize {
            let net = BnbNetwork::builder(m).build();
            let n = net.inputs();
            let mut batch = FrameBatch::new(n);
            let mut expect = Vec::new();
            // A handful of rotations: enough frames to cross word
            // boundaries for small n.
            for f in 0..9usize {
                let perm: Vec<usize> = (0..n).map(|j| (j + f) % n).collect();
                let fr = frame(n, &perm, f as u64);
                let mut want = fr.clone();
                oracle(&net, &mut want).unwrap();
                expect.push(want);
                batch.push_frame(&fr);
            }
            let mut scratch = StageScratch::with_capacity(n);
            let mut outcome = BatchOutcome::new();
            route_batch(
                &net,
                &mut batch,
                &RouteSpan::new(),
                &mut scratch,
                &mut outcome,
            );
            assert!(outcome.all_ok());
            let mut got = Vec::new();
            for (f, want) in expect.iter().enumerate() {
                batch.read_frame_into(f, &mut got);
                assert_eq!(&got, want, "m={m} frame {f}");
            }
        }
    }

    #[test]
    fn invalid_frames_reported_and_untouched() {
        let net = BnbNetwork::builder(3).build();
        let n = net.inputs();
        let mut batch = FrameBatch::new(n);
        let good: Vec<Record> = frame(n, &[3, 1, 0, 2, 7, 6, 5, 4], 1);
        let dup: Vec<Record> = frame(n, &[0, 0, 1, 2, 3, 4, 5, 6], 2);
        batch.push_frame(&good);
        batch.push_frame(&dup);
        batch.push_frame(&good);
        let mut scratch = StageScratch::with_capacity(n);
        let mut outcome = BatchOutcome::new();
        route_batch(
            &net,
            &mut batch,
            &RouteSpan::new(),
            &mut scratch,
            &mut outcome,
        );
        assert!(outcome.results()[0].is_ok());
        assert_eq!(
            outcome.results()[1],
            Err(RouteError::DuplicateDestination {
                dest: 0,
                first_input: 0,
                second_input: 1,
            })
        );
        assert!(outcome.results()[2].is_ok());
        let mut got = Vec::new();
        batch.read_frame_into(1, &mut got);
        assert_eq!(got, dup, "invalid frame must keep its contents");
        batch.read_frame_into(2, &mut got);
        assert!(got.iter().enumerate().all(|(d, r)| r.dest() == d));
    }

    #[test]
    fn width_mismatch_hits_every_frame() {
        let net = BnbNetwork::builder(3).build();
        let mut batch = FrameBatch::new(4);
        batch.push_frame(&frame(4, &[1, 0, 3, 2], 0));
        let mut scratch = StageScratch::with_capacity(8);
        let mut outcome = BatchOutcome::new();
        route_batch(
            &net,
            &mut batch,
            &RouteSpan::new(),
            &mut scratch,
            &mut outcome,
        );
        assert_eq!(
            outcome.results(),
            &[Err(RouteError::WidthMismatch {
                expected: 8,
                actual: 4,
            })]
        );
    }

    #[test]
    fn permissive_batch_matches_oracle() {
        let net = BnbNetwork::builder(2)
            .policy(RoutePolicy::Permissive)
            .build();
        let n = net.inputs();
        let mut batch = FrameBatch::new(n);
        let mut expect = Vec::new();
        // Non-permutation traffic, including duplicates.
        for (f, dests) in [[0usize, 0, 3, 3], [2, 2, 2, 2], [1, 0, 0, 2]]
            .iter()
            .enumerate()
        {
            let fr = frame(n, dests, f as u64);
            let mut want = fr.clone();
            oracle(&net, &mut want).unwrap();
            expect.push(want);
            batch.push_frame(&fr);
        }
        let mut scratch = StageScratch::with_capacity(n);
        let mut outcome = BatchOutcome::new();
        route_batch(
            &net,
            &mut batch,
            &RouteSpan::new(),
            &mut scratch,
            &mut outcome,
        );
        assert!(outcome.all_ok());
        let mut got = Vec::new();
        for (f, want) in expect.iter().enumerate() {
            batch.read_frame_into(f, &mut got);
            assert_eq!(&got, want, "permissive frame {f}");
        }
    }

    #[test]
    fn shuffle_wiring_batch_matches_oracle() {
        // The Shuffle ablation wiring can unbalance a splitter mid-route
        // even for a valid permutation, so strict batches fall back to
        // per-frame routing: successes stay byte-identical, failures
        // report the oracle's exact error and keep their contents.
        let net = BnbNetwork::builder(3).wiring(WiringMode::Shuffle).build();
        let n = net.inputs();
        let mut batch = FrameBatch::new(n);
        let mut inputs = Vec::new();
        let mut expect = Vec::new();
        for f in 0..4usize {
            let perm: Vec<usize> = (0..n).map(|j| j ^ f).collect();
            let fr = frame(n, &perm, f as u64);
            let mut want = fr.clone();
            let res = oracle(&net, &mut want);
            expect.push((res, want));
            batch.push_frame(&fr);
            inputs.push(fr);
        }
        assert!(
            expect.iter().any(|(r, _)| r.is_err()),
            "test premise: shuffle must fail at least one frame"
        );
        let mut scratch = StageScratch::with_capacity(n);
        let mut outcome = BatchOutcome::new();
        route_batch(
            &net,
            &mut batch,
            &RouteSpan::new(),
            &mut scratch,
            &mut outcome,
        );
        let mut got = Vec::new();
        for (f, (res, want)) in expect.iter().enumerate() {
            batch.read_frame_into(f, &mut got);
            match res {
                Ok(()) => {
                    assert_eq!(outcome.results()[f], Ok(()), "shuffle frame {f}");
                    assert_eq!(&got, want, "shuffle frame {f}");
                }
                Err(e) => {
                    assert_eq!(outcome.results()[f], Err(e.clone()), "shuffle frame {f}");
                    assert_eq!(got, inputs[f], "failed frame {f} must keep its contents");
                }
            }
        }
    }
}
