//! Conflict diagnosis — the paper's §4 remark made concrete.
//!
//! > "However, the other flags and the other inputs can be used to deal
//! > with the conflicts if needed in some applications."
//!
//! The arbiter computes two flags per pair but the splitter consumes only
//! one; the spare information suffices to *detect* a violated split
//! locally. [`BnbNetwork::route_diagnosed`] routes with hardware semantics
//! (nothing stops) while reporting, per splitter, whether its balance
//! assumption held — the on-line conflict detector an application would
//! attach to the spare flags — plus the resulting misdeliveries.

use bnb_obs::{ConflictEvent, NoopObserver, Observer};
use bnb_topology::bitops::paper_bit;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

use crate::error::RouteError;
use crate::network::BnbNetwork;
use crate::splitter::{check_balanced, controls, SplitterSite};

/// Outcome of a diagnosed (permissive + instrumented) route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The routed output lines.
    pub outputs: Vec<Record>,
    /// Every splitter whose §4 balance assumption was violated, in
    /// traversal order.
    pub unbalanced: Vec<SplitterSite>,
    /// Output lines whose record did not reach its destination.
    pub misdelivered: Vec<usize>,
}

impl Diagnosis {
    /// `true` when the route was conflict-free and fully delivered.
    pub fn is_clean(&self) -> bool {
        self.unbalanced.is_empty() && self.misdelivered.is_empty()
    }
}

impl BnbNetwork {
    /// Routes with hardware semantics while detecting every violated
    /// splitter assumption — what a deployment would wire to the arbiters'
    /// spare flags. Never fails on unbalanced traffic; structural input
    /// problems are still rejected.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::WidthMismatch`],
    /// [`RouteError::DestinationTooWide`] or [`RouteError::DataTooWide`]
    /// for malformed records.
    pub fn route_diagnosed(&self, records: &[Record]) -> Result<Diagnosis, RouteError> {
        self.route_diagnosed_observed(records, &NoopObserver)
    }

    /// [`BnbNetwork::route_diagnosed`] with instrumentation: every
    /// violated splitter additionally raises a
    /// [`ConflictEvent`] on `observer` as it is detected, so a live sink
    /// sees conflicts in traversal order without waiting for the final
    /// [`Diagnosis`].
    ///
    /// # Errors
    ///
    /// Same as [`BnbNetwork::route_diagnosed`].
    pub fn route_diagnosed_observed<O: Observer>(
        &self,
        records: &[Record],
        observer: &O,
    ) -> Result<Diagnosis, RouteError> {
        let observing = observer.enabled();
        let n = self.inputs();
        let m = self.m();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        for r in records {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
            if self.w() < 64 && r.data() >> self.w() != 0 {
                return Err(RouteError::DataTooWide {
                    data: r.data(),
                    w: self.w(),
                });
            }
        }
        let mut lines = records.to_vec();
        let mut unbalanced = Vec::new();
        for main_stage in 0..m {
            let k = m - main_stage;
            for internal in 0..k {
                let box_size = 1usize << (k - internal);
                for start in (0..n).step_by(box_size) {
                    let bits: Vec<bool> = lines[start..start + box_size]
                        .iter()
                        .map(|r| paper_bit(m, r.dest(), main_stage))
                        .collect();
                    let site = SplitterSite {
                        main_stage,
                        internal_stage: internal,
                        first_line: start,
                    };
                    if check_balanced(&bits, site).is_err() {
                        if observing {
                            observer.splitter_conflict(ConflictEvent {
                                main_stage,
                                internal_stage: internal,
                                first_line: start,
                                width: box_size,
                                ones: bits.iter().filter(|&&b| b).count(),
                            });
                        }
                        unbalanced.push(site);
                    }
                    for (t, &c) in controls(&bits).iter().enumerate() {
                        if c {
                            lines.swap(start + 2 * t, start + 2 * t + 1);
                        }
                    }
                }
                let last_internal = internal + 1 == k;
                let mut wired = vec![Record::new(0, 0); n];
                if !last_internal {
                    for (j, &r) in lines.iter().enumerate() {
                        let base = j & !(box_size - 1);
                        let local = j & (box_size - 1);
                        let span_log = box_size.trailing_zeros() as usize;
                        wired[base | bnb_topology::bitops::unshuffle(span_log, span_log, local)] =
                            r;
                    }
                    lines = wired;
                } else if main_stage + 1 < m {
                    for (j, &r) in lines.iter().enumerate() {
                        wired[bnb_topology::bitops::unshuffle(k, m, j)] = r;
                    }
                    lines = wired;
                }
            }
        }
        let misdelivered = lines
            .iter()
            .enumerate()
            .filter(|(j, r)| r.dest() != *j)
            .map(|(j, _)| j)
            .collect();
        Ok(Diagnosis {
            outputs: lines,
            unbalanced,
            misdelivered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::records_for_permutation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn valid_permutations_diagnose_clean() {
        let mut rng = StdRng::seed_from_u64(70);
        let net = BnbNetwork::builder(4).data_width(32).build();
        for _ in 0..20 {
            let p = Permutation::random(16, &mut rng);
            let d = net.route_diagnosed(&records_for_permutation(&p)).unwrap();
            assert!(d.is_clean(), "clean traffic must diagnose clean");
        }
    }

    #[test]
    fn duplicates_are_localized_by_the_detector() {
        // A duplicated destination trips at least one splitter, and the
        // diagnosis pinpoints misdelivered outputs.
        let net = BnbNetwork::builder(3).data_width(8).build();
        let mut recs = records_for_permutation(&Permutation::identity(8));
        recs[6] = Record::new(1, 6); // 1 appears twice, 6 unserved
        let d = net.route_diagnosed(&recs).unwrap();
        assert!(
            !d.unbalanced.is_empty(),
            "the violated assumption must be detected"
        );
        assert!(!d.misdelivered.is_empty());
        assert!(!d.is_clean());
        // Conservation still holds.
        let mut data: Vec<u64> = d.outputs.iter().map(Record::data).collect();
        data.sort_unstable();
        assert_eq!(data, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn diagnosis_matches_permissive_routing() {
        use crate::network::RoutePolicy;
        let mut rng = StdRng::seed_from_u64(71);
        let strictless = BnbNetwork::builder(3)
            .data_width(8)
            .policy(RoutePolicy::Permissive)
            .build();
        let net = BnbNetwork::builder(3).data_width(8).build();
        for _ in 0..30 {
            let recs: Vec<Record> = (0..8)
                .map(|_| Record::new(rng.random_range(0..8), rng.random_range(0..256)))
                .collect();
            let d = net.route_diagnosed(&recs).unwrap();
            let p = strictless.route(&recs).unwrap();
            assert_eq!(d.outputs, p, "diagnosed route must equal permissive route");
        }
    }

    #[test]
    fn detector_count_bounds_misdeliveries() {
        // Misrouting requires at least one violated splitter somewhere.
        let mut rng = StdRng::seed_from_u64(72);
        let net = BnbNetwork::builder(4).data_width(16).build();
        for _ in 0..30 {
            let recs: Vec<Record> = (0..16)
                .map(|i| Record::new(rng.random_range(0..16), i as u64))
                .collect();
            let d = net.route_diagnosed(&recs).unwrap();
            if !d.misdelivered.is_empty() {
                assert!(
                    !d.unbalanced.is_empty(),
                    "misdelivery without a detected conflict is impossible"
                );
            }
        }
    }

    #[test]
    fn observed_diagnosis_reports_each_conflict_once() {
        use bnb_obs::Counters;
        let net = BnbNetwork::builder(3).data_width(8).build();
        let mut recs = records_for_permutation(&Permutation::identity(8));
        recs[6] = Record::new(1, 6);
        let counters = Counters::new();
        let d = net.route_diagnosed_observed(&recs, &counters).unwrap();
        assert_eq!(
            counters.snapshot().conflicts,
            d.unbalanced.len() as u64,
            "one ConflictEvent per violated splitter"
        );
    }

    #[test]
    fn structural_validation_still_applies() {
        let net = BnbNetwork::new(2);
        assert!(net.route_diagnosed(&[Record::new(0, 0)]).is_err());
    }
}
