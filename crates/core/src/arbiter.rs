//! The tree arbiter `A(p)` (Definition 6), behavioural model.
//!
//! The arbiter is a complete binary tree over the `2^p` one-bit inputs of a
//! splitter. In the **up-sweep** every node sends the XOR of its two
//! children's values to its parent; in the **down-sweep** a node whose
//! up-value is 0 (a *type-1* node) generates flags itself — 0 to the upper
//! child, 1 to the lower — while a node whose up-value is 1 (*type-2*)
//! forwards the flag received from its parent to both children. The root
//! echoes its own up-value as its incoming flag (paper §4, steps 1–4).
//!
//! The effect (Theorem 3): unmatched type-2 switch pairs are paired up by
//! the tree, half of them receiving flag 0 and half flag 1, so ones are
//! split evenly between even and odd splitter outputs.

use serde::{Deserialize, Serialize};

/// Result of one arbiter sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterSweep {
    /// One flag per 2×2 switch (per adjacent input pair). The switch
    /// control is `inputs[2t] ⊕ flags[t]`.
    pub flags: Vec<bool>,
    /// Number of function nodes traversed on the longest up-then-down path:
    /// `2·p` for `p ≥ 2`, `0` for `p = 1` (A(1) is wiring only).
    pub sweep_depth: usize,
    /// Total function nodes in this arbiter: `2^p − 1` for `p ≥ 2`, else 0.
    pub node_count: usize,
}

/// Runs the arbiter `A(p)` over `2^p` input bits and returns the per-switch
/// flags plus depth/size accounting.
///
/// # Panics
///
/// Panics if `bits.len()` is not a power of two or is less than 2.
///
/// # Example
///
/// ```
/// use bnb_core::arbiter::arbiter_sweep;
///
/// // Two type-2 pairs: (0,1) and (1,0). They meet at the root, which
/// // pairs them: one pair gets flag 0, the other flag 1.
/// let sweep = arbiter_sweep(&[false, true, true, false]);
/// assert_eq!(sweep.flags.len(), 2);
/// assert_ne!(sweep.flags[0], sweep.flags[1]);
/// ```
pub fn arbiter_sweep(bits: &[bool]) -> ArbiterSweep {
    let n = bits.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "arbiter needs 2^p >= 2 inputs"
    );
    let p = n.trailing_zeros() as usize;
    if n == 2 {
        // A(1): the input bit itself sets the switch; flag is 0.
        return ArbiterSweep {
            flags: vec![false],
            sweep_depth: 0,
            node_count: 0,
        };
    }
    // Up-sweep: level 0 = inputs; level l has 2^{p-l} up-values.
    let mut levels: Vec<Vec<bool>> = Vec::with_capacity(p + 1);
    levels.push(bits.to_vec());
    for l in 1..=p {
        let below = &levels[l - 1];
        levels.push(
            (0..below.len() / 2)
                .map(|t| below[2 * t] ^ below[2 * t + 1])
                .collect(),
        );
    }
    // Down-sweep: flags entering each node, root echoes its own up-value.
    let mut down = vec![levels[p][0]];
    for l in (1..=p).rev() {
        let mut below = Vec::with_capacity(down.len() * 2);
        for (t, &zd) in down.iter().enumerate() {
            if levels[l][t] {
                // type-2 node: forward the parent flag to both children
                below.push(zd);
                below.push(zd);
            } else {
                // type-1 node: generate 0 (upper) and 1 (lower)
                below.push(false);
                below.push(true);
            }
        }
        down = below;
    }
    debug_assert_eq!(down.len(), n);
    let flags = (0..n / 2).map(|t| down[2 * t]).collect();
    ArbiterSweep {
        flags,
        sweep_depth: 2 * p,
        node_count: n - 1,
    }
}

/// Number of function nodes in an `A(p)` arbiter: `2^p − 1` for `p ≥ 2`;
/// `A(1)` is wiring and contributes 0 (paper §5.1).
pub fn node_count(p: usize) -> usize {
    if p < 2 {
        0
    } else {
        (1 << p) - 1
    }
}

/// Longest up-then-down function-node path through `A(p)`: `2p` for
/// `p ≥ 2`, else 0 (paper §5.2, eq. (8) counts `2·l` per splitter level).
pub fn sweep_depth(p: usize) -> usize {
    if p < 2 {
        0
    } else {
        2 * p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(v: &[bool]) -> usize {
        v.iter().filter(|&&b| b).count()
    }

    /// Count how the flags distribute over type-2 pairs: they must be
    /// half 0 and half 1 whenever the number of type-2 pairs is even.
    #[test]
    fn type2_pairs_receive_balanced_flags() {
        for p in 2..=5usize {
            let n = 1 << p;
            // Exhaust all patterns for small p, sample parity-even patterns.
            for pattern in 0..(1u64 << n.min(16)) {
                let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
                if !ones(&bits).is_multiple_of(2) {
                    continue;
                }
                let sweep = arbiter_sweep(&bits);
                let mut flag0 = 0usize;
                let mut flag1 = 0usize;
                for t in 0..n / 2 {
                    if bits[2 * t] != bits[2 * t + 1] {
                        if sweep.flags[t] {
                            flag1 += 1;
                        } else {
                            flag0 += 1;
                        }
                    }
                }
                assert_eq!(flag0, flag1, "p={p}, pattern={pattern:b}");
                if n > 16 {
                    break;
                }
            }
        }
    }

    #[test]
    fn a1_is_wiring_only() {
        let sweep = arbiter_sweep(&[true, false]);
        assert_eq!(sweep.flags, vec![false]);
        assert_eq!(sweep.node_count, 0);
        assert_eq!(sweep.sweep_depth, 0);
    }

    #[test]
    fn node_count_matches_tree_size() {
        assert_eq!(node_count(1), 0);
        assert_eq!(node_count(2), 3);
        assert_eq!(node_count(3), 7);
        assert_eq!(node_count(4), 15);
        let sweep = arbiter_sweep(&[false; 8]);
        assert_eq!(sweep.node_count, node_count(3));
    }

    #[test]
    fn sweep_depth_is_two_p() {
        assert_eq!(sweep_depth(1), 0);
        assert_eq!(sweep_depth(2), 4);
        assert_eq!(sweep_depth(5), 10);
    }

    #[test]
    fn all_type1_pairs_generate_own_flags() {
        // (1,1) and (0,0) pairs: every node is type-1, all switch flags are
        // the generated upper-child flags = 0.
        let sweep = arbiter_sweep(&[true, true, false, false]);
        assert_eq!(sweep.flags, vec![false, false]);
    }

    #[test]
    #[should_panic(expected = "arbiter needs 2^p >= 2 inputs")]
    fn rejects_non_power_of_two() {
        let _ = arbiter_sweep(&[true, false, true]);
    }
}
