//! The full BNB self-routing permutation network (Definition 5, Theorem 2).
//!
//! An `N = 2^m`-input BNB network is a GBN whose stage-`i` boxes are
//! `q`-bit-slice nested networks `NB(i, l)` of `2^{m-i}` lines. Slice `i` of
//! each nested network is a bit-sorter network; its splitter controls drive
//! the switches of all `q` slices, so the whole record follows the routing
//! decided by address bit `i`. After main stage `i` the `2^{m-i}`-unshuffle
//! partitions records by that bit, and after `m` stages the records emerge
//! in destination order — any permutation is realized without global
//! routing (Theorem 2).
//!
//! [`BnbNetwork::route`] simulates this behaviourally: the nested networks
//! are walked stage by stage, each splitter's arbiter computes its controls
//! from address-bit-`i` values only (the paper's locality claim), and the
//! controls are applied to whole records.

use bnb_obs::{NoopObserver, Observer};
use bnb_topology::bitops::{paper_bit, shuffle, unshuffle};
use bnb_topology::connection::require_power_of_two;
use bnb_topology::gbn::Gbn;
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

use crate::cost::HardwareCost;
use crate::delay::PropagationDelay;
use crate::error::RouteError;
use crate::router::Router;
use crate::splitter::{check_balanced, controls, SplitterSite};
use crate::stages::{route_span_inner, validate_lines, StageScratch};
use crate::trace::{ColumnSnapshot, RouteTrace};

/// How strictly input is validated before routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Validate that inputs form a permutation and that every splitter's
    /// balance assumption holds; violations return typed errors.
    #[default]
    Strict,
    /// Hardware semantics: route whatever arrives. Non-permutation inputs
    /// simply mis-route, exactly like the physical network would.
    Permissive,
}

/// Which inter-stage wiring the network uses — the ablation A2 knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WiringMode {
    /// The paper's `2^k`-unshuffle wiring (correct).
    #[default]
    Unshuffle,
    /// Straight wiring between stages (ablation: breaks the radix sort).
    Identity,
    /// `2^k`-shuffle wiring (ablation: the inverse rotation, also wrong).
    Shuffle,
}

/// Builder for [`BnbNetwork`] and observed [`Router`]s — the one entry
/// point for every configuration knob (width, data bits, policy, wiring,
/// observer).
///
/// # Example
///
/// ```
/// use bnb_core::network::{BnbNetwork, RoutePolicy};
///
/// let net = BnbNetwork::builder(4)
///     .data_width(16)
///     .policy(RoutePolicy::Strict)
///     .build();
/// assert_eq!(net.inputs(), 16);
/// assert_eq!(net.q(), 4 + 16);
/// ```
///
/// Attaching an observer changes the builder's type parameter, and the
/// observer lives in the [`Router`] produced by
/// [`build_router`](BnbNetworkBuilder::build_router) — a [`BnbNetwork`]
/// itself is pure `Copy` configuration and never carries one, so
/// `observer(..)` followed by plain `build()` is a compile error rather
/// than a silently dropped sink:
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_obs::Counters;
///
/// let counters = Counters::new();
/// let router = BnbNetwork::builder(3).observer(&counters).build_router();
/// assert_eq!(router.network().inputs(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct BnbNetworkBuilder<O: Observer = NoopObserver> {
    m: usize,
    w: usize,
    policy: RoutePolicy,
    wiring: WiringMode,
    observer: O,
}

impl<O: Observer> BnbNetworkBuilder<O> {
    /// Sets the data word width `w` (default 32; up to 64 bits).
    ///
    /// # Panics
    ///
    /// Panics if `w > 64`.
    pub fn data_width(mut self, w: usize) -> Self {
        assert!(w <= 64, "data width is limited to 64 bits");
        self.w = w;
        self
    }

    /// Sets the validation policy (default [`RoutePolicy::Strict`]).
    pub fn policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the inter-stage wiring (default
    /// [`WiringMode::Unshuffle`]) — only useful for the ablation study.
    pub fn wiring(mut self, wiring: WiringMode) -> Self {
        self.wiring = wiring;
        self
    }

    /// Attaches an observer; the built [`Router`] will emit routing events
    /// to it. Share one sink across routers by passing a reference
    /// (`&Counters` implements [`Observer`]).
    pub fn observer<O2: Observer>(self, observer: O2) -> BnbNetworkBuilder<O2> {
        BnbNetworkBuilder {
            m: self.m,
            w: self.w,
            policy: self.policy,
            wiring: self.wiring,
            observer,
        }
    }

    fn network(&self) -> BnbNetwork {
        BnbNetwork {
            m: self.m,
            w: self.w,
            policy: self.policy,
            wiring: self.wiring,
        }
    }

    /// Builds an allocation-free [`Router`] carrying the configured
    /// observer.
    pub fn build_router(self) -> Router<O> {
        let network = self.network();
        Router::with_observer(network, self.observer)
    }
}

impl BnbNetworkBuilder {
    /// Builds the network configuration.
    ///
    /// Only available while no observer is attached ([`BnbNetwork`] is
    /// `Copy` configuration and cannot carry one) — after
    /// [`observer`](BnbNetworkBuilder::observer), finish with
    /// [`build_router`](BnbNetworkBuilder::build_router) instead.
    pub fn build(self) -> BnbNetwork {
        self.network()
    }
}

/// An `N = 2^m`-input BNB self-routing permutation network.
///
/// # Example
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::{records_for_permutation, all_delivered};
///
/// let net = BnbNetwork::builder_for(8)?.build();
/// let perm = Permutation::try_from(vec![6, 3, 0, 5, 2, 7, 4, 1])?;
/// let out = net.route(&records_for_permutation(&perm))?;
/// assert!(all_delivered(&out));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbNetwork {
    m: usize,
    w: usize,
    policy: RoutePolicy,
    wiring: WiringMode,
}

impl BnbNetwork {
    /// A network with `2^m` inputs, 32 data bits, strict validation and the
    /// paper's wiring.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        Self::builder(m).build()
    }

    /// Starts a builder for a `2^m`-input network.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn builder(m: usize) -> BnbNetworkBuilder {
        assert!(m >= 1, "network needs at least 2 inputs");
        BnbNetworkBuilder {
            m,
            w: 32,
            policy: RoutePolicy::default(),
            wiring: WiringMode::default(),
            observer: NoopObserver,
        }
    }

    /// Starts a builder for an `n`-input network — the fallible
    /// counterpart of [`BnbNetwork::builder`] for widths not already known
    /// to be powers of two.
    ///
    /// ```
    /// use bnb_core::network::BnbNetwork;
    ///
    /// let net = BnbNetwork::builder_for(16)?.data_width(8).build();
    /// assert_eq!(net.inputs(), 16);
    /// assert!(BnbNetwork::builder_for(12).is_err());
    /// # Ok::<(), bnb_core::RouteError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    pub fn builder_for(n: usize) -> Result<BnbNetworkBuilder, RouteError> {
        let m = require_power_of_two(n)?;
        if m == 0 {
            return Err(RouteError::WidthMismatch {
                expected: 2,
                actual: n,
            });
        }
        Ok(Self::builder(m))
    }

    /// A network with `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not a power of two or is less than 2.
    #[deprecated(
        since = "0.2.0",
        note = "use `BnbNetwork::builder_for(n)?.build()` (or `BnbNetwork::builder(m)` when \
                the exponent is known) — the builder carries every configuration knob"
    )]
    pub fn with_inputs(n: usize) -> Result<Self, RouteError> {
        Self::builder_for(n).map(BnbNetworkBuilder::build)
    }

    /// `log2` of the network width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Data word width in bits.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Word length `q = m + w` (address + data slices).
    pub fn q(&self) -> usize {
        self.m + self.w
    }

    /// Network width `N = 2^m`.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// The validation policy.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The wiring mode.
    pub fn wiring(&self) -> WiringMode {
        self.wiring
    }

    /// The main-network GBN topology.
    pub fn gbn(&self) -> Gbn {
        Gbn::new(self.m)
    }

    /// Exact hardware cost of this network under the paper's model
    /// (eq. (6)), counted from the constructed structure.
    pub fn cost(&self) -> HardwareCost {
        HardwareCost::bnb_counted(self.m, self.w)
    }

    /// Propagation delay of this network under the paper's model
    /// (eq. (9)), counted from the constructed structure.
    pub fn delay(&self) -> PropagationDelay {
        PropagationDelay::bnb_structural(self.m)
    }

    /// Routes one record per input line and returns the output lines.
    ///
    /// On success (with the paper's wiring and a permutation input),
    /// `out[j].dest() == j` for every output `j`.
    ///
    /// # Errors
    ///
    /// - [`RouteError::WidthMismatch`], [`RouteError::DestinationTooWide`],
    ///   [`RouteError::DataTooWide`] — structural input problems, always
    ///   checked.
    /// - [`RouteError::DuplicateDestination`],
    ///   [`RouteError::UnbalancedSplitter`] — only under
    ///   [`RoutePolicy::Strict`].
    pub fn route(&self, records: &[Record]) -> Result<Vec<Record>, RouteError> {
        self.route_impl(records, None)
    }

    /// Like [`BnbNetwork::route`] but emits routing events (columns,
    /// arbiter sweeps, conflicts) to `observer`. Results are bit-identical
    /// to [`BnbNetwork::route`].
    ///
    /// For repeated batches prefer an observed [`Router`]
    /// (`builder(..).observer(..).build_router()`), which reuses its
    /// scratch buffers across calls.
    ///
    /// # Errors
    ///
    /// Same as [`BnbNetwork::route`].
    pub fn route_observed<O: Observer>(
        &self,
        records: &[Record],
        observer: &O,
    ) -> Result<Vec<Record>, RouteError> {
        let mut lines = records.to_vec();
        let mut seen = Vec::new();
        validate_lines(self, &lines, &mut seen)?;
        let mut scratch = StageScratch::with_capacity(lines.len());
        route_span_inner(self, &mut lines, 0, 0..self.m, &mut scratch, observer, None)?;
        Ok(lines)
    }

    /// Like [`BnbNetwork::route`] but also captures a full per-column
    /// trace.
    ///
    /// # Errors
    ///
    /// Same as [`BnbNetwork::route`].
    pub fn route_traced(
        &self,
        records: &[Record],
    ) -> Result<(Vec<Record>, RouteTrace), RouteError> {
        let mut trace = RouteTrace {
            m: self.m,
            inputs: records.to_vec(),
            columns: Vec::new(),
        };
        let out = self.route_impl(records, Some(&mut trace))?;
        Ok((out, trace))
    }

    fn validate(&self, records: &[Record]) -> Result<(), RouteError> {
        let n = self.inputs();
        if records.len() != n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: records.len(),
            });
        }
        for r in records {
            if r.dest() >= n {
                return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
            }
            if self.w < 64 && r.data() >> self.w != 0 {
                return Err(RouteError::DataTooWide {
                    data: r.data(),
                    w: self.w,
                });
            }
        }
        if matches!(self.policy, RoutePolicy::Strict) {
            let mut first_at = vec![usize::MAX; n];
            for (i, r) in records.iter().enumerate() {
                if first_at[r.dest()] != usize::MAX {
                    return Err(RouteError::DuplicateDestination {
                        dest: r.dest(),
                        first_input: first_at[r.dest()],
                        second_input: i,
                    });
                }
                first_at[r.dest()] = i;
            }
        }
        Ok(())
    }

    fn rewire(&self, k: usize, local: usize) -> usize {
        match self.wiring {
            WiringMode::Unshuffle => unshuffle(k, k, local),
            WiringMode::Identity => local,
            WiringMode::Shuffle => shuffle(k, k, local),
        }
    }

    fn route_impl(
        &self,
        records: &[Record],
        mut trace: Option<&mut RouteTrace>,
    ) -> Result<Vec<Record>, RouteError> {
        self.validate(records)?;
        let n = self.inputs();
        let m = self.m;
        let strict = matches!(self.policy, RoutePolicy::Strict);
        let mut lines = records.to_vec();
        for main_stage in 0..m {
            // Nested networks of 2^{m - main_stage} lines; their slice
            // `main_stage` is the BSN, reading address bit `main_stage`.
            let k = m - main_stage;
            for internal in 0..k {
                let box_size = 1usize << (k - internal);
                let mut column_controls = Vec::with_capacity(n / 2);
                for start in (0..n).step_by(box_size) {
                    let bits: Vec<bool> = lines[start..start + box_size]
                        .iter()
                        .map(|r| paper_bit(m, r.dest(), main_stage))
                        .collect();
                    if strict {
                        check_balanced(
                            &bits,
                            SplitterSite {
                                main_stage,
                                internal_stage: internal,
                                first_line: start,
                            },
                        )?;
                    }
                    let ctl = controls(&bits);
                    for (t, &c) in ctl.iter().enumerate() {
                        if c {
                            lines.swap(start + 2 * t, start + 2 * t + 1);
                        }
                    }
                    column_controls.extend(ctl);
                }
                // Wiring after this column: internal GBN wiring within each
                // nested span, or the main unshuffle after the last internal
                // stage of a non-final main stage.
                if internal + 1 < k {
                    let span = box_size; // wiring acts on the splitter spans'
                                         // parent: the nested network of the
                                         // *current* internal level
                    let wired = self.apply_internal_wiring(&lines, k, internal, span);
                    lines = wired;
                } else if main_stage + 1 < m {
                    let mut wired = vec![Record::new(0, 0); n];
                    for (j, &r) in lines.iter().enumerate() {
                        let dst = match self.wiring {
                            WiringMode::Unshuffle => unshuffle(k, m, j),
                            WiringMode::Identity => j,
                            WiringMode::Shuffle => shuffle(k, m, j),
                        };
                        wired[dst] = r;
                    }
                    lines = wired;
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.columns.push(ColumnSnapshot {
                        main_stage,
                        internal_stage: internal,
                        controls: column_controls,
                        lines: lines.clone(),
                    });
                }
            }
        }
        Ok(lines)
    }

    /// Applies the nested-GBN wiring after internal stage `internal` of the
    /// `2^k`-line nested networks: `U_{k-internal}^{k}` on the local index
    /// of each nested span... except the wiring acts within the *current
    /// splitter group* structure: the `2^{k-internal}`-line blocks are
    /// unshuffled in place (their top bits are fixed, like any GBN stage).
    fn apply_internal_wiring(
        &self,
        lines: &[Record],
        _k: usize,
        _internal: usize,
        span: usize,
    ) -> Vec<Record> {
        let n = lines.len();
        let span_log = span.trailing_zeros() as usize;
        let mut wired = vec![Record::new(0, 0); n];
        for (j, &r) in lines.iter().enumerate() {
            let base = j & !(span - 1);
            let local = j & (span - 1);
            wired[base | self.rewire(span_log, local)] = r;
        }
        wired
    }
}

impl Default for BnbNetwork {
    /// An 8-input network with default options.
    fn default() -> Self {
        BnbNetwork::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Theorem 2 for N = 4, exhaustively.
    #[test]
    fn theorem_2_exhaustive_n4() {
        let net = BnbNetwork::new(2);
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p} mis-routed");
        }
    }

    /// Theorem 2 for N = 8, exhaustively (all 40 320 permutations).
    #[test]
    fn theorem_2_exhaustive_n8() {
        let net = BnbNetwork::new(3);
        for k in 0..40_320 {
            let p = Permutation::nth_lexicographic(8, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "perm {p} mis-routed");
        }
    }

    /// Randomized Theorem 2 up to N = 1024.
    #[test]
    fn theorem_2_random_large() {
        let mut rng = StdRng::seed_from_u64(2024);
        for m in [4usize, 6, 8, 10] {
            let net = BnbNetwork::new(m);
            let n = 1 << m;
            for _ in 0..20 {
                let p = Permutation::random(n, &mut rng);
                let out = net.route(&records_for_permutation(&p)).unwrap();
                assert!(all_delivered(&out), "N={n}: perm mis-routed");
            }
        }
    }

    /// Data words must travel with their addresses.
    #[test]
    fn data_words_follow_addresses() {
        let net = BnbNetwork::builder(4).data_width(32).build();
        let mut rng = StdRng::seed_from_u64(5);
        let p = Permutation::random(16, &mut rng);
        let records: Vec<Record> = (0..16)
            .map(|i| Record::new(p.apply(i), 0xABCD_0000 + i as u64))
            .collect();
        let out = net.route(&records).unwrap();
        for (j, r) in out.iter().enumerate() {
            assert_eq!(r.dest(), j);
            assert_eq!(r.data(), 0xABCD_0000 + p.inverse().apply(j) as u64);
        }
    }

    #[test]
    fn trace_has_m_m_plus_1_over_2_columns() {
        for m in 1..=6usize {
            let net = BnbNetwork::new(m);
            let p = Permutation::identity(1 << m);
            let (_, trace) = net.route_traced(&records_for_permutation(&p)).unwrap();
            assert_eq!(trace.column_count(), m * (m + 1) / 2, "eq. (7) stage count");
            assert!(all_delivered(trace.outputs()));
        }
    }

    #[test]
    fn duplicate_destination_rejected_in_strict_mode() {
        let net = BnbNetwork::new(2);
        let records = vec![
            Record::new(1, 0),
            Record::new(1, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        let err = net.route(&records).unwrap_err();
        assert_eq!(
            err,
            RouteError::DuplicateDestination {
                dest: 1,
                first_input: 0,
                second_input: 1
            }
        );
    }

    #[test]
    fn permissive_mode_routes_non_permutations() {
        let net = BnbNetwork::builder(2)
            .policy(RoutePolicy::Permissive)
            .build();
        let records = vec![
            Record::new(1, 0),
            Record::new(1, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        let out = net.route(&records).unwrap();
        // All four records still come out somewhere (conservation).
        let mut datas: Vec<u64> = out.iter().map(|r| r.data()).collect();
        datas.sort_unstable();
        assert_eq!(datas, vec![0, 1, 2, 3]);
    }

    #[test]
    fn structural_validation_is_always_on() {
        let net = BnbNetwork::builder(2)
            .policy(RoutePolicy::Permissive)
            .build();
        assert!(matches!(
            net.route(&[Record::new(0, 0)]),
            Err(RouteError::WidthMismatch {
                expected: 4,
                actual: 1
            })
        ));
        let wide = vec![
            Record::new(7, 0),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&wide),
            Err(RouteError::DestinationTooWide { dest: 7, .. })
        ));
        let fat = vec![
            Record::new(0, u64::MAX),
            Record::new(1, 0),
            Record::new(2, 0),
            Record::new(3, 0),
        ];
        assert!(matches!(
            net.route(&fat),
            Err(RouteError::DataTooWide { .. })
        ));
    }

    /// Ablation A2: replacing the unshuffle wiring breaks routing for most
    /// permutations — the wiring is load-bearing.
    #[test]
    fn wrong_wiring_misroutes() {
        for mode in [WiringMode::Identity, WiringMode::Shuffle] {
            let net = BnbNetwork::builder(3)
                .policy(RoutePolicy::Permissive)
                .wiring(mode)
                .build();
            let mut failures = 0usize;
            for k in 0..500 {
                let p = Permutation::nth_lexicographic(8, k * 80);
                let out = net.route(&records_for_permutation(&p)).unwrap();
                if !all_delivered(&out) {
                    failures += 1;
                }
            }
            assert!(
                failures > 250,
                "{mode:?} wiring should misroute most permutations"
            );
        }
    }

    #[test]
    fn builder_configures_everything() {
        let net = BnbNetwork::builder(5)
            .data_width(0)
            .policy(RoutePolicy::Permissive)
            .wiring(WiringMode::Shuffle)
            .build();
        assert_eq!(net.m(), 5);
        assert_eq!(net.w(), 0);
        assert_eq!(net.q(), 5);
        assert_eq!(net.inputs(), 32);
        assert_eq!(net.policy(), RoutePolicy::Permissive);
        assert_eq!(net.wiring(), WiringMode::Shuffle);
    }

    #[test]
    #[allow(deprecated)] // pins the deprecated constructor's contract
    fn with_inputs_validates() {
        assert!(BnbNetwork::with_inputs(16).is_ok());
        assert!(BnbNetwork::with_inputs(10).is_err());
        assert!(BnbNetwork::with_inputs(1).is_err());
    }

    #[test]
    fn builder_for_validates_width() {
        assert_eq!(BnbNetwork::builder_for(16).unwrap().build().m(), 4);
        assert!(BnbNetwork::builder_for(10).is_err());
        assert!(BnbNetwork::builder_for(1).is_err());
    }

    #[test]
    fn route_observed_matches_route() {
        use bnb_obs::Counters;
        let net = BnbNetwork::new(4);
        let p = Permutation::nth_lexicographic(16, 123_456);
        let records = records_for_permutation(&p);
        let counters = Counters::new();
        let observed = net.route_observed(&records, &counters).unwrap();
        assert_eq!(observed, net.route(&records).unwrap());
        // eq. (7): one ColumnEvent per switching column.
        assert_eq!(counters.snapshot().columns, 4 * 5 / 2);
    }

    #[test]
    fn builder_router_observes_conflicts() {
        use bnb_obs::Counters;
        let counters = Counters::new();
        let mut router = BnbNetwork::builder(2)
            .data_width(8)
            .observer(&counters)
            .build_router();
        let mut lines = vec![
            Record::new(0, 0),
            Record::new(0, 1),
            Record::new(1, 2),
            Record::new(1, 3),
        ];
        // Duplicate destinations are rejected by validation (no conflict
        // event), so drop to a width-2 splitter violation instead: route
        // permissively and watch the conflict-free counters grow.
        assert!(router.route_in_place(&mut lines).is_err());
        let permissive = Counters::new();
        let mut router = BnbNetwork::builder(2)
            .data_width(8)
            .policy(RoutePolicy::Permissive)
            .observer(&permissive)
            .build_router();
        router.route_in_place(&mut lines).unwrap();
        let snap = permissive.snapshot();
        assert_eq!(snap.columns, 3, "m = 2 routes m(m+1)/2 = 3 columns");
        assert!(snap.arbiter_sweeps > 0);
    }

    #[test]
    fn default_is_eight_inputs() {
        assert_eq!(BnbNetwork::default().inputs(), 8);
    }

    /// The identity permutation exercises the maximum number of type-1
    /// pairs; the reversal exercises type-2 pairs. Both must route.
    #[test]
    fn extremal_permutations_route() {
        for m in 1..=8usize {
            let n = 1 << m;
            let net = BnbNetwork::new(m);
            let id = Permutation::identity(n);
            assert!(all_delivered(
                &net.route(&records_for_permutation(&id)).unwrap()
            ));
            let rev = Permutation::from_fn(n, |i| n - 1 - i).unwrap();
            assert!(all_delivered(
                &net.route(&records_for_permutation(&rev)).unwrap()
            ));
        }
    }
}
