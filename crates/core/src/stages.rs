//! Stage-span routing: the reusable kernel behind [`crate::router::Router`]
//! and the concurrent engine.
//!
//! The GBN's main unshuffle after stage `i` partitions traffic into
//! independent subnetworks: every operation at main stages `>= d` stays
//! inside an aligned `2^(m-d)`-line slice. [`RouteSpan::run`] exploits that by
//! routing any contiguous range of main stages over one such slice, so a
//! frame can be routed head-first (`0..d`) and its `2^d` disjoint slices
//! finished (`d..m`) by different workers — with byte-identical results to
//! the sequential full-frame route, because BNB routing is oblivious data
//! movement (switch settings depend only on local destination bits, never
//! on who else is computing).
//!
//! All buffers live in a caller-owned [`StageScratch`], so steady-state
//! routing performs no heap allocation.
//!
//! Two kernels share the entry points: unobserved spans route through the
//! bit-packed word-parallel kernel (`crate::packed` — cached destination
//! bit-planes, word-level arbiter sweeps and balance checks), while an
//! attached observer selects the scalar cell-at-a-time sweep, which emits
//! per-column and per-hop events and doubles as the packed kernel's
//! oracle via [`Kernel::Scalar`]. Both produce byte-identical frames
//! and identical error values. [`RouteSpan`] is the options struct that
//! selects observer, fault map, and kernel; whole frames can also be
//! routed many at a time through [`crate::batch::route_batch`].

use std::ops::Range;

use bnb_obs::{
    ColumnEvent, ConflictEvent, FaultEvent, HopEvent, NoopObserver, Observer, SweepEvent,
};
use bnb_topology::bitops::paper_bit;
use bnb_topology::record::Record;

use crate::error::RouteError;
use crate::fault::FaultMap;
use crate::network::{BnbNetwork, RoutePolicy, WiringMode};
use crate::splitter::{check_balanced, controls_into, SplitterSite};

/// Reusable buffers for [`RouteSpan::run`]. One per worker; capacity
/// grows to the largest span routed and then stays put.
#[derive(Debug, Clone, Default)]
pub struct StageScratch {
    pub(crate) lines: Vec<Record>,
    pub(crate) bits: Vec<bool>,
    pub(crate) flags: Vec<bool>,
    pub(crate) up: Vec<bool>,
    /// Control-plane view of a faulted box's bits (the true bits stay in
    /// `bits` so the post-swap audit never re-derives them).
    pub(crate) tapped: Vec<bool>,
    /// Duplicate-destination scratch for [`crate::batch::route_batch`]'s
    /// per-frame validation (the span entry points take caller-owned
    /// `seen`, see [`validate_lines`]).
    pub(crate) seen: Vec<usize>,
    /// Per-frame staging buffer for the batch API's frame-at-a-time
    /// fallback paths (`lines` is the wiring buffer and cannot double up).
    pub(crate) frame_buf: Vec<Record>,
    /// Word-parallel kernel state (planes, flag words, position perm).
    pub(crate) packed: crate::packed::PackedScratch,
}

impl StageScratch {
    /// Scratch pre-sized for spans up to `n` lines.
    pub fn with_capacity(n: usize) -> Self {
        StageScratch {
            lines: vec![Record::new(0, 0); n],
            bits: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            up: Vec::with_capacity(2 * n),
            tapped: Vec::new(),
            seen: Vec::new(),
            frame_buf: Vec::new(),
            packed: crate::packed::PackedScratch::default(),
        }
    }

    /// Grows the line buffer to hold `n` lines (never shrinks).
    #[inline]
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.lines.len() < n {
            self.lines.resize(n, Record::new(0, 0));
        }
    }
}

/// Validates one frame against the network contract without allocating:
/// width, destination range, payload width, and (under
/// [`RoutePolicy::Strict`]) destination uniqueness. `seen` is caller-owned
/// scratch, resized to the network width on first use.
pub fn validate_lines(
    net: &BnbNetwork,
    lines: &[Record],
    seen: &mut Vec<usize>,
) -> Result<(), RouteError> {
    let n = net.inputs();
    if lines.len() != n {
        return Err(RouteError::WidthMismatch {
            expected: n,
            actual: lines.len(),
        });
    }
    let w = net.w();
    for r in lines {
        if r.dest() >= n {
            return Err(RouteError::DestinationTooWide { dest: r.dest(), n });
        }
        if w < 64 && r.data() >> w != 0 {
            return Err(RouteError::DataTooWide { data: r.data(), w });
        }
    }
    if matches!(net.policy(), RoutePolicy::Strict) {
        seen.clear();
        seen.resize(n, usize::MAX);
        for (i, r) in lines.iter().enumerate() {
            if seen[r.dest()] != usize::MAX {
                return Err(RouteError::DuplicateDestination {
                    dest: r.dest(),
                    first_input: seen[r.dest()],
                    second_input: i,
                });
            }
            seen[r.dest()] = i;
        }
    }
    Ok(())
}

/// Kernel selection for [`RouteSpan`]: which sweep implementation routes
/// the span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Kernel {
    /// The default dispatch: the bit-packed word-parallel kernel whenever
    /// no enabled observer is attached, the scalar sweep otherwise (the
    /// packed kernel cannot attribute per-column events cheaply).
    #[default]
    Auto,
    /// Force the word-parallel kernel. An attached observer receives no
    /// routing events on this path; use [`Kernel::Scalar`] (or `Auto`)
    /// when events matter.
    Packed,
    /// Force the scalar cell-at-a-time sweep — the oracle the packed
    /// equivalence suites and `bitpacked_vs_scalar` benchmark hold the
    /// word-parallel kernel against.
    Scalar,
}

/// Options struct for stage-span routing: observer, fault map, and kernel
/// selection behind one builder, replacing the former
/// `route_span` / `route_span_observed` / `route_span_faulted` /
/// `route_span_scalar` / `route_span_scalar_faulted` free functions
/// (retained as deprecated shims).
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_core::stages::{RouteSpan, StageScratch, validate_lines};
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::records_for_permutation;
///
/// let net = BnbNetwork::builder(3).build();
/// let mut scratch = StageScratch::with_capacity(8);
/// let mut seen = Vec::new();
/// let mut lines = records_for_permutation(&Permutation::identity(8));
/// validate_lines(&net, &lines, &mut seen)?;
/// RouteSpan::new().run(&net, &mut lines, 0, 0..3, &mut scratch)?;
/// # Ok::<(), bnb_core::RouteError>(())
/// ```
///
/// The observer is held as `&dyn Observer`, but the noop fast path stays
/// monomorphic: [`run`](RouteSpan::run) re-checks
/// [`enabled`](Observer::enabled) once and routes disabled observers
/// through the same static [`NoopObserver`] path as no observer at all,
/// so the packed kernel and the zero-alloc guarantees are unaffected.
#[derive(Clone, Copy, Default)]
pub struct RouteSpan<'a> {
    observer: Option<&'a dyn Observer>,
    faults: Option<&'a FaultMap>,
    kernel: Kernel,
}

impl<'a> RouteSpan<'a> {
    /// Unobserved, fault-free, [`Kernel::Auto`] routing options.
    pub fn new() -> Self {
        RouteSpan::default()
    }

    /// Attaches an observer: one [`SweepEvent`] per splitter box, one
    /// [`ColumnEvent`] per switching column (with the exchange tally), a
    /// [`ConflictEvent`] alongside every
    /// [`RouteError::UnbalancedSplitter`], and — for observers that opt
    /// in via [`Observer::wants_hops`] — one [`HopEvent`] per cell per
    /// column, from which a path tracer reconstructs every route.
    /// `enabled()` and `wants_hops()` are hoisted out of the stage loops.
    pub fn observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Routes through damaged hardware: applies the [`FaultMap`]'s
    /// control-plane corruption and, under [`RoutePolicy::Strict`],
    /// re-checks every splitter *output* in a faulted column against the
    /// paper's balance invariant (`M_e = M_o`, Definition 3; exactly
    /// `(0, 1)` for `sp(1)`). Any even split keeps the Theorem 1/2
    /// induction intact, so a route that passes every check is correct
    /// and the first corrupting element is reported as
    /// [`RouteError::HardwareFault`] (with a [`FaultEvent`] when
    /// observing) — never a silent misdelivery. Permissive routes skip
    /// detection and conserve the record multiset. An empty map takes
    /// exactly the fault-free code path.
    pub fn faults(mut self, faults: &'a FaultMap) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Selects the routing kernel (default [`Kernel::Auto`]).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Routes main stages `stages` of `net` over one aligned subnetwork
    /// slice with these options.
    ///
    /// `lines` must be the slice of `2^(m - stages.start)` lines beginning
    /// at global line `first_line` (a multiple of the slice length; pass
    /// `0` with a full frame for the whole network). After main stage `i`
    /// completes, every aligned `2^(m - i - 1)`-line half routes
    /// independently, so a caller may split the slice and continue each
    /// half concurrently.
    ///
    /// No validation is performed here — see [`validate_lines`]. For
    /// whole-frame multi-frame routing use
    /// [`route_batch`](crate::batch::route_batch), which validates.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnbalancedSplitter`] under [`RoutePolicy::Strict`]
    /// when the traffic does not form a permutation (sites in global line
    /// coordinates, identical to the sequential route), plus
    /// [`RouteError::HardwareFault`] when a fault map is attached (see
    /// [`faults`](RouteSpan::faults)).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the slice length or alignment does not
    /// match `stages.start`, or if `stages.end > m`.
    /// The effective options, post-hoisting: a disabled observer and an
    /// empty fault map count as absent, exactly as [`RouteSpan::run`]
    /// dispatches. Lets [`crate::batch::route_batch`] pick the batched
    /// fast path only when these options cannot change the result.
    pub(crate) fn effective(&self) -> (Option<&'a dyn Observer>, Option<&'a FaultMap>, Kernel) {
        (
            self.observer.filter(|o| o.enabled()),
            self.faults.filter(|f| !f.is_empty()),
            self.kernel,
        )
    }

    pub fn run(
        &self,
        net: &BnbNetwork,
        lines: &mut [Record],
        first_line: usize,
        stages: Range<usize>,
        scratch: &mut StageScratch,
    ) -> Result<(), RouteError> {
        let faults = self.faults.filter(|f| !f.is_empty());
        // Disabled observers fold onto the same static path as none at
        // all, keeping the noop case monomorphic (no virtual dispatch in
        // the sweep loops).
        let observer = self.observer.filter(|o| o.enabled());
        match (self.kernel, observer) {
            (Kernel::Scalar, None) => route_span_scalar_inner(
                net,
                lines,
                first_line,
                stages,
                scratch,
                &NoopObserver,
                faults,
            ),
            (Kernel::Scalar, Some(o)) => {
                route_span_scalar_inner(net, lines, first_line, stages, scratch, &o, faults)
            }
            (Kernel::Packed, _) => {
                crate::packed::route_span_packed(net, lines, first_line, stages, scratch, faults)
            }
            (Kernel::Auto, None) => {
                crate::packed::route_span_packed(net, lines, first_line, stages, scratch, faults)
            }
            (Kernel::Auto, Some(o)) => {
                route_span_scalar_inner(net, lines, first_line, stages, scratch, &o, faults)
            }
        }
    }
}

impl std::fmt::Debug for RouteSpan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteSpan")
            .field("observer", &self.observer.map(|o| o.enabled()))
            .field("faults", &self.faults)
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// Routes main stages `stages` of `net` over one aligned subnetwork slice.
///
/// # Errors / Panics
///
/// Identical contract to [`RouteSpan::run`] with default options.
#[deprecated(
    since = "0.3.0",
    note = "use `RouteSpan::new().run(net, lines, first_line, stages, scratch)`"
)]
pub fn route_span(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
) -> Result<(), RouteError> {
    RouteSpan::new().run(net, lines, first_line, stages, scratch)
}

/// Observed stage-span routing.
///
/// # Errors / Panics
///
/// Identical contract to [`RouteSpan::run`] with an observer attached.
#[deprecated(
    since = "0.3.0",
    note = "use `RouteSpan::new().observer(observer).run(net, lines, first_line, stages, scratch)`"
)]
pub fn route_span_observed<O: Observer>(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
    observer: &O,
) -> Result<(), RouteError> {
    route_span_inner(net, lines, first_line, stages, scratch, observer, None)
}

/// Observed stage-span routing through damaged hardware.
///
/// # Errors / Panics
///
/// Identical contract to [`RouteSpan::run`] with observer and faults
/// attached.
#[deprecated(
    since = "0.3.0",
    note = "use `RouteSpan::new().observer(observer).faults(faults).run(net, lines, first_line, stages, scratch)`"
)]
pub fn route_span_faulted<O: Observer>(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
    observer: &O,
    faults: &FaultMap,
) -> Result<(), RouteError> {
    let faults = if faults.is_empty() {
        None
    } else {
        Some(faults)
    };
    route_span_inner(net, lines, first_line, stages, scratch, observer, faults)
}

/// The scalar (cell-at-a-time) oracle kernel.
///
/// # Errors / Panics
///
/// Identical contract to [`RouteSpan::run`] with [`Kernel::Scalar`].
#[deprecated(
    since = "0.3.0",
    note = "use `RouteSpan::new().kernel(Kernel::Scalar).run(net, lines, first_line, stages, scratch)`"
)]
pub fn route_span_scalar(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
) -> Result<(), RouteError> {
    route_span_scalar_inner(net, lines, first_line, stages, scratch, &NoopObserver, None)
}

/// The scalar oracle kernel through damaged hardware.
///
/// # Errors / Panics
///
/// Identical contract to [`RouteSpan::run`] with [`Kernel::Scalar`] and
/// faults attached.
#[deprecated(
    since = "0.3.0",
    note = "use `RouteSpan::new().kernel(Kernel::Scalar).faults(faults).run(net, lines, first_line, stages, scratch)`"
)]
pub fn route_span_scalar_faulted(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
    faults: &FaultMap,
) -> Result<(), RouteError> {
    let faults = if faults.is_empty() {
        None
    } else {
        Some(faults)
    };
    route_span_scalar_inner(
        net,
        lines,
        first_line,
        stages,
        scratch,
        &NoopObserver,
        faults,
    )
}

pub(crate) fn route_span_inner<O: Observer + ?Sized>(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
    observer: &O,
    faults: Option<&FaultMap>,
) -> Result<(), RouteError> {
    // The word-parallel kernel is the default fast path; the scalar sweep
    // remains the path taken when an observer wants per-column (or
    // per-hop) events, which the packed kernel cannot attribute cheaply.
    if !observer.enabled() {
        return crate::packed::route_span_packed(net, lines, first_line, stages, scratch, faults);
    }
    route_span_scalar_inner(net, lines, first_line, stages, scratch, observer, faults)
}

pub(crate) fn route_span_scalar_inner<O: Observer + ?Sized>(
    net: &BnbNetwork,
    lines: &mut [Record],
    first_line: usize,
    stages: Range<usize>,
    scratch: &mut StageScratch,
    observer: &O,
    faults: Option<&FaultMap>,
) -> Result<(), RouteError> {
    let observing = observer.enabled();
    let tracing = observing && observer.wants_hops();
    let m = net.m();
    let span = lines.len();
    debug_assert!(stages.end <= m, "stage range {stages:?} exceeds m = {m}");
    debug_assert_eq!(
        span,
        1usize << (m - stages.start),
        "slice length must match the starting stage"
    );
    debug_assert_eq!(first_line % span, 0, "slice must be aligned");
    let span_log = span.trailing_zeros() as usize;
    let strict = matches!(net.policy(), RoutePolicy::Strict);
    scratch.ensure(span);
    for main_stage in stages {
        let k = m - main_stage;
        for internal in 0..k {
            let box_size = 1usize << (k - internal);
            let mut exchanges = 0u64;
            let column_faults = faults.filter(|f| f.affects(main_stage, internal));
            for start in (0..span).step_by(box_size) {
                scratch.bits.clear();
                scratch.bits.extend(
                    lines[start..start + box_size]
                        .iter()
                        .map(|r| paper_bit(m, r.dest(), main_stage)),
                );
                if strict {
                    if let Err(err) = check_balanced(
                        &scratch.bits,
                        SplitterSite {
                            main_stage,
                            internal_stage: internal,
                            first_line: first_line + start,
                        },
                    ) {
                        if observing {
                            if let RouteError::UnbalancedSplitter { width, ones, .. } = err {
                                observer.splitter_conflict(ConflictEvent {
                                    main_stage,
                                    internal_stage: internal,
                                    first_line: first_line + start,
                                    width,
                                    ones,
                                });
                            }
                        }
                        return Err(err);
                    }
                }
                // Broken-link taps corrupt only the control plane's view,
                // so they land in a copy: `bits` keeps the true bits the
                // post-swap audit below needs.
                let ctl_bits: &[bool] = if let Some(map) = column_faults {
                    scratch.tapped.clear();
                    scratch.tapped.extend_from_slice(&scratch.bits);
                    map.tap_bits(
                        main_stage,
                        internal,
                        first_line + start,
                        &mut scratch.tapped,
                    );
                    &scratch.tapped
                } else {
                    &scratch.bits
                };
                controls_into(ctl_bits, &mut scratch.up, &mut scratch.flags);
                if let Some(map) = column_faults {
                    map.override_flags(
                        main_stage,
                        internal,
                        first_line + start,
                        ctl_bits,
                        &mut scratch.flags,
                    );
                }
                if tracing {
                    // Hops are captured *before* the swap so `port` is the
                    // line each cell occupied entering the column, with the
                    // setting (post fault-override) actually applied to it.
                    let site = first_line + start;
                    for (t, &c) in scratch.flags.iter().enumerate() {
                        for off in 0..2 {
                            let idx = start + 2 * t + off;
                            observer.cell_hop(HopEvent {
                                dest: lines[idx].dest(),
                                main_stage,
                                internal_stage: internal,
                                first_line: site,
                                port: first_line + idx,
                                exchanged: c,
                                sweep: site / box_size,
                            });
                        }
                    }
                }
                exchanges += apply_box_flags(&scratch.flags, &mut lines[start..start + box_size]);
                if observing {
                    observer.arbiter_sweep(SweepEvent {
                        main_stage,
                        internal_stage: internal,
                        first_line: first_line + start,
                        width: box_size,
                        depth: k - internal,
                    });
                }
                // Fault detection: a healthy splitter on a checked input
                // always splits evenly (Theorem 3), so an unbalanced
                // *output* in a faulted column pins the corruption to this
                // box; any balanced output is a valid split and the route
                // stays correct. The output bits are determined by the
                // already-extracted input bits and the flags (switch `t`
                // emits its pair swapped iff flagged), so nothing is
                // re-derived from the records.
                if strict && column_faults.is_some() {
                    let mut even_ones = 0usize;
                    let mut odd_ones = 0usize;
                    for (t, &c) in scratch.flags.iter().enumerate() {
                        let (a, b) = (scratch.bits[2 * t], scratch.bits[2 * t + 1]);
                        let (even, odd) = if c { (b, a) } else { (a, b) };
                        even_ones += usize::from(even);
                        odd_ones += usize::from(odd);
                    }
                    let balanced = if box_size == 2 {
                        even_ones == 0 && odd_ones == 1
                    } else {
                        even_ones == odd_ones
                    };
                    if !balanced {
                        if observing {
                            observer.hardware_fault(FaultEvent {
                                main_stage,
                                internal_stage: internal,
                                first_line: first_line + start,
                                width: box_size,
                                even_ones,
                                odd_ones,
                            });
                        }
                        return Err(RouteError::HardwareFault {
                            main_stage,
                            internal_stage: internal,
                            first_line: first_line + start,
                            width: box_size,
                            even_ones,
                            odd_ones,
                        });
                    }
                }
            }
            if observing {
                observer.column_routed(ColumnEvent {
                    main_stage,
                    internal_stage: internal,
                    first_line,
                    width: span,
                    exchanges,
                });
            }
            // Wiring into the scratch buffer, then copy back (the swap is
            // logical: scratch is reused every column).
            let last_internal = internal + 1 == k;
            if !last_internal {
                let box_log = box_size.trailing_zeros() as usize;
                #[allow(clippy::needless_range_loop)] // index j is the wiring domain
                for j in 0..span {
                    let base = j & !(box_size - 1);
                    let local = j & (box_size - 1);
                    let dst = base
                        | match net.wiring() {
                            WiringMode::Unshuffle => {
                                bnb_topology::bitops::unshuffle(box_log, box_log, local)
                            }
                            WiringMode::Identity => local,
                            WiringMode::Shuffle => {
                                bnb_topology::bitops::shuffle(box_log, box_log, local)
                            }
                        };
                    scratch.lines[dst] = lines[j];
                }
                lines.copy_from_slice(&scratch.lines[..span]);
            } else if main_stage + 1 < m {
                // The main unshuffle rotates only the low k index bits, and
                // k <= span_log for every stage in range, so the aligned
                // slice is closed under it: the global wiring restricted to
                // this slice is exactly the local one.
                #[allow(clippy::needless_range_loop)] // index j is the wiring domain
                for j in 0..span {
                    let dst = match net.wiring() {
                        WiringMode::Unshuffle => bnb_topology::bitops::unshuffle(k, span_log, j),
                        WiringMode::Identity => j,
                        WiringMode::Shuffle => bnb_topology::bitops::shuffle(k, span_log, j),
                    };
                    scratch.lines[dst] = lines[j];
                }
                lines.copy_from_slice(&scratch.lines[..span]);
            }
        }
    }
    Ok(())
}

/// Applies one box's exchange flags to its window of lines and returns
/// the exchange count. The bools are packed into flag words so that both
/// routing paths funnel through the single pair-swap implementation in
/// [`crate::packed::apply_flag_word`].
fn apply_box_flags(flags: &[bool], window: &mut [Record]) -> u64 {
    let mut exchanges = 0;
    let mut t0 = 0usize;
    while t0 < flags.len() {
        let chunk = (flags.len() - t0).min(32); // 32 switches per 64-line word
        let mut f = 0u64;
        for (i, &c) in flags[t0..t0 + chunk].iter().enumerate() {
            f |= u64::from(c) << (2 * i);
        }
        exchanges += crate::packed::apply_flag_word(f, &mut window[2 * t0..2 * (t0 + chunk)]);
        t0 += chunk;
    }
    exchanges
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::records_for_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Routing head stages then each aligned slice independently must be
    /// byte-identical to the sequential full route, for every split depth.
    #[test]
    fn split_routing_matches_sequential_at_every_depth() {
        let mut rng = StdRng::seed_from_u64(7);
        for m in 1usize..=8 {
            let n = 1usize << m;
            let net = BnbNetwork::new(m);
            let mut scratch = StageScratch::with_capacity(n);
            for _ in 0..10 {
                let records = records_for_permutation(&Permutation::random(n, &mut rng));
                let expected = net.route(&records).unwrap();
                for depth in 0..=m {
                    let mut lines = records.clone();
                    RouteSpan::new()
                        .run(&net, &mut lines, 0, 0..depth, &mut scratch)
                        .unwrap();
                    let sub = n >> depth;
                    for (slice_idx, chunk) in lines.chunks_mut(sub).enumerate() {
                        RouteSpan::new()
                            .run(&net, chunk, slice_idx * sub, depth..m, &mut scratch)
                            .unwrap();
                    }
                    assert_eq!(lines, expected, "m = {m}, depth = {depth}");
                }
            }
        }
    }

    /// The same holds under Permissive policy for arbitrary (garbage)
    /// destination patterns: routing is oblivious data movement.
    #[test]
    fn split_routing_matches_sequential_for_garbage_traffic() {
        use crate::network::RoutePolicy;
        use bnb_topology::record::Record;
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(8);
        for m in [2usize, 4, 6] {
            let n = 1usize << m;
            let net = BnbNetwork::builder(m)
                .policy(RoutePolicy::Permissive)
                .build();
            let mut scratch = StageScratch::with_capacity(n);
            for _ in 0..10 {
                let records: Vec<Record> = (0..n)
                    .map(|i| Record::new(rng.random_range(0..n), i as u64))
                    .collect();
                let expected = net.route(&records).unwrap();
                for depth in [0, 1, m / 2, m] {
                    let mut lines = records.clone();
                    RouteSpan::new()
                        .run(&net, &mut lines, 0, 0..depth, &mut scratch)
                        .unwrap();
                    let sub = n >> depth;
                    for (slice_idx, chunk) in lines.chunks_mut(sub).enumerate() {
                        RouteSpan::new()
                            .run(&net, chunk, slice_idx * sub, depth..m, &mut scratch)
                            .unwrap();
                    }
                    assert_eq!(lines, expected, "m = {m}, depth = {depth}");
                }
            }
        }
    }

    /// Strict-policy splitter errors report sites in *global* line
    /// coordinates even when raised from a non-initial slice.
    #[test]
    fn split_routing_reports_global_splitter_sites() {
        use bnb_topology::record::Record;
        let net = BnbNetwork::new(3);
        let mut scratch = StageScratch::with_capacity(8);
        // An all-zero destination slice sails through the 4-wide box (zero
        // ones is even) and unbalances the first elementary splitter; route
        // it as the second depth-1 slice (lines 4..8).
        let mut slice: Vec<_> = (0..4).map(|i| Record::new(0, i as u64)).collect();
        let err = RouteSpan::new()
            .run(&net, &mut slice, 4, 1..3, &mut scratch)
            .unwrap_err();
        match err {
            RouteError::UnbalancedSplitter {
                main_stage,
                internal_stage,
                first_line,
                ..
            } => {
                assert_eq!(main_stage, 1);
                assert_eq!(internal_stage, 1);
                assert_eq!(first_line, 4, "site must be globally addressed");
            }
            other => panic!("expected unbalanced splitter, got {other:?}"),
        }
    }

    /// `validate_lines` agrees with the allocating route's error contract.
    #[test]
    fn validate_lines_matches_route_contract() {
        use bnb_topology::record::Record;
        let net = BnbNetwork::new(2);
        let mut seen = Vec::new();
        let ok: Vec<_> = [2usize, 0, 3, 1]
            .iter()
            .enumerate()
            .map(|(i, &d)| Record::new(d, i as u64))
            .collect();
        assert!(validate_lines(&net, &ok, &mut seen).is_ok());
        assert!(matches!(
            validate_lines(&net, &ok[..2], &mut seen),
            Err(RouteError::WidthMismatch { .. })
        ));
        let dup: Vec<_> = [1usize, 1, 2, 3]
            .iter()
            .enumerate()
            .map(|(i, &d)| Record::new(d, i as u64))
            .collect();
        assert!(matches!(
            validate_lines(&net, &dup, &mut seen),
            Err(RouteError::DuplicateDestination { dest: 1, .. })
        ));
    }
}
