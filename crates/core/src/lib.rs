//! The BNB self-routing permutation network (Lee & Lu, ICDCS 1991).
//!
//! An `N = 2^m`-input BNB network routes **any** of the `N!` permutations of
//! its inputs to its outputs without path conflicts and without any global
//! routing computation: every switch is set from purely local information by
//! tree arbiters ([`arbiter`]), giving `O(N·log³N)` hardware and `O(log³N)`
//! delay — about one third of the hardware and two thirds of the delay of
//! Batcher's sorting network (paper §5).
//!
//! # Architecture
//!
//! - [`arbiter`] — the up/down tree sweep that computes switch flags from
//!   local XOR information (Definition 6, Fig. 5).
//! - [`splitter`] — the `2^p × 2^p` splitter `sp(p)`: arbiter + switch bank,
//!   splitting the one-bits evenly onto even and odd outputs (Definition 3,
//!   Theorem 3).
//! - [`bsn`] — the bit-sorter network: a generalized baseline network (GBN)
//!   of splitters that sorts a balanced 0/1 vector into `0101…`
//!   (Definition 4, Theorem 1).
//! - [`network`] — the full BNB network: a GBN whose stage-`i` boxes are
//!   `q`-bit-slice nested networks, each routed by its slice-`i` BSN
//!   (Definition 5, Theorem 2).
//! - [`cost`] / [`delay`] — exact component counts and propagation-delay
//!   accounting, both *counted from the constructed structure* and as the
//!   paper's closed forms, eqs. (6)–(9).
//! - [`trace`] / [`render`] — per-stage routing traces and the renderers
//!   that regenerate Figs. 2–4.
//! - [`tracer`] — the [`PathTracer`]: per-cell hop recording and route
//!   reconstruction, verified against the Definition 3 / Theorem 3
//!   locality argument (coverage, linkage, radix parity, delivery).
//! - [`partial`] — destination-completion adapter for partial permutations.
//! - [`diagnose`] — per-splitter conflict detection (the paper's "other
//!   flags can deal with the conflicts" remark, §4).
//! - [`fault`] — hardware fault injection ([`fault::FaultMap`]) and
//!   degraded-mode routing ([`fault::FaultyFabric`]): stuck switches, dead
//!   arbiters, and broken links, detected via the Definition 3 balance
//!   invariant under strict policy.
//! - [`router`] — allocation-free batch routing with reusable buffers,
//!   generic over a `bnb_obs::Observer` (defaulting to the zero-cost
//!   `NoopObserver`) for stage-level metrics.
//! - [`stages`] — the stage-span routing kernel behind the [`RouteSpan`]
//!   options struct: routes any contiguous range of main stages over an
//!   aligned subnetwork slice, enabling split-and-conquer parallel
//!   routing. Unobserved spans take a bit-packed word-parallel fast path
//!   (`packed`, crate-internal): destination bits are cached once per
//!   span in per-stage `u64` bit-planes and every arbiter sweep, balance
//!   check and exchange runs as word operations, byte-identical to the
//!   scalar sweep ([`Kernel::Scalar`], the retained oracle).
//! - [`batch`] — frame-batched routing: [`FrameBatch`] holds `B` frames
//!   in structure-of-arrays order and [`route_batch`] routes them through
//!   one kernel invocation over concatenated frame-major bit-planes, so
//!   SWAR word occupancy is independent of `m`.
//! - [`bitslice`] — a 64-lane word-parallel BSN (the one-bit control logic
//!   vectorized).
//! - [`fabric`] — the [`fabric::PermutationNetwork`] trait unifying this
//!   network with every baseline.
//! - [`settings`] — raw switch-setting enumeration and trace replay.
//!
//! # Quickstart
//!
//! ```
//! use bnb_core::network::BnbNetwork;
//! use bnb_topology::perm::Permutation;
//! use bnb_topology::record::{records_for_permutation, all_delivered};
//!
//! let net = BnbNetwork::builder_for(16)?.build();
//! let perm = Permutation::try_from(vec![5, 2, 9, 0, 14, 7, 1, 12, 3, 11, 6, 15, 8, 4, 13, 10])?;
//! let out = net.route(&records_for_permutation(&perm))?;
//! assert!(all_delivered(&out));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod arbiter;
pub mod batch;
pub mod bitslice;
pub mod bsn;
pub mod cost;
pub mod delay;
pub mod diagnose;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod network;
mod packed;
pub mod partial;
pub mod render;
pub mod router;
pub mod settings;
pub mod splitter;
pub mod stages;
pub mod trace;
pub mod tracer;

pub use batch::{route_batch, BatchOutcome, FrameBatch};
pub use bsn::BitSorter;
pub use cost::HardwareCost;
pub use delay::PropagationDelay;
pub use error::RouteError;
pub use fabric::PermutationNetwork;
pub use fault::{FaultKind, FaultMap, FaultSite, FaultyFabric, HardwareFault};
pub use network::{BnbNetwork, BnbNetworkBuilder, RoutePolicy, WiringMode};
pub use router::Router;
pub use stages::{Kernel, RouteSpan};
pub use trace::RouteTrace;
pub use tracer::{PathError, PathTracer};
