//! Propagation-delay accounting (paper §5.2, eqs. (7)–(9)).
//!
//! Delay is expressed in the paper's abstract units: `D_SW` per 2×2 switch
//! column and `D_FN` per arbiter function node on the up/down sweep. As with
//! cost, each quantity is available both **structurally** (walk the network,
//! add up what a signal traverses) and as the paper's **closed form**, and
//! the two are property-tested equal.

use serde::{Deserialize, Serialize};

use crate::arbiter;

/// A propagation delay split into the paper's two unit kinds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationDelay {
    /// Switch columns traversed (`D_SW` units).
    pub switch_units: u64,
    /// Function-node levels traversed (`D_FN` units).
    pub fn_units: u64,
}

impl PropagationDelay {
    /// Weighted total delay `switch_units·d_sw + fn_units·d_fn`.
    pub fn weighted(&self, d_sw: f64, d_fn: f64) -> f64 {
        self.switch_units as f64 * d_sw + self.fn_units as f64 * d_fn
    }

    /// Unit-weight total (the Table 2 convention: `D_SW = D_FN = 1`).
    pub fn total_units(&self) -> u64 {
        self.switch_units + self.fn_units
    }

    /// BNB delay, **structurally**: walk the main stages; each nested
    /// network of `2^k` lines contributes `k` switch columns (eq. (7)) and,
    /// per internal splitter level `sp(l)` with `l ≥ 2`, an up-and-down
    /// arbiter sweep of `2l` node delays (eq. (8)).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn bnb_structural(m: usize) -> PropagationDelay {
        assert!(m >= 1, "network needs at least 2 inputs");
        let mut switch_units = 0u64;
        let mut fn_units = 0u64;
        for main_stage in 0..m {
            let k = m - main_stage;
            switch_units += k as u64;
            for internal in 0..k {
                fn_units += arbiter::sweep_depth(k - internal) as u64;
            }
        }
        PropagationDelay {
            switch_units,
            fn_units,
        }
    }

    /// BNB delay from the paper's closed form, eq. (9):
    ///
    /// ```text
    /// D_BNB = (1/3·log³N + log²N − 4/3·log N) · D_FN
    ///       + (1/2·log²N + 1/2·log N) · D_SW
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn bnb_closed_form(m: usize) -> PropagationDelay {
        assert!(m >= 1, "network needs at least 2 inputs");
        let mu = m as u64;
        // m³/3 + m² − 4m/3 == m(m−1)(m+4)/3, exactly divisible.
        let fn_units = mu * (mu - 1) * (mu + 4) / 3;
        let switch_units = mu * (mu + 1) / 2;
        PropagationDelay {
            switch_units,
            fn_units,
        }
    }

    /// Table 2 combined polynomial for the BNB network with unit weights:
    /// `1/3·log³N + 3/2·log²N − 5/6·log N`, as an `f64`.
    pub fn bnb_table2(m: usize) -> f64 {
        let mf = m as f64;
        mf.powi(3) / 3.0 + 1.5 * mf.powi(2) - 5.0 / 6.0 * mf
    }
}

impl std::fmt::Display for PropagationDelay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}·D_SW + {}·D_FN", self.switch_units, self.fn_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural walk equals the paper's eq. (9) for every m.
    #[test]
    fn structural_equals_closed_form() {
        for m in 1..=20 {
            assert_eq!(
                PropagationDelay::bnb_structural(m),
                PropagationDelay::bnb_closed_form(m),
                "m = {m}"
            );
        }
    }

    /// eq. (7): switch columns = m(m+1)/2.
    #[test]
    fn switch_columns_match_eq7() {
        for m in 1..=12u64 {
            let d = PropagationDelay::bnb_structural(m as usize);
            assert_eq!(d.switch_units, m * (m + 1) / 2);
        }
    }

    /// eq. (8) spot checks: m = 2 → 4 FN units; m = 3 → 14.
    #[test]
    fn fn_units_spot_checks() {
        assert_eq!(PropagationDelay::bnb_structural(1).fn_units, 0);
        assert_eq!(PropagationDelay::bnb_structural(2).fn_units, 4);
        assert_eq!(PropagationDelay::bnb_structural(3).fn_units, 14);
    }

    /// The Table 2 polynomial equals the unit-weight total of eq. (9).
    #[test]
    fn table2_polynomial_matches_components() {
        for m in 1..=16 {
            let d = PropagationDelay::bnb_closed_form(m);
            let poly = PropagationDelay::bnb_table2(m);
            assert!(
                (poly - d.total_units() as f64).abs() < 1e-6,
                "m = {m}: {poly} vs {}",
                d.total_units()
            );
        }
    }

    #[test]
    fn weighted_combines_units() {
        let d = PropagationDelay {
            switch_units: 3,
            fn_units: 14,
        };
        assert_eq!(d.weighted(2.0, 1.0), 20.0);
        assert_eq!(d.total_units(), 17);
        assert_eq!(d.to_string(), "3·D_SW + 14·D_FN");
    }
}
