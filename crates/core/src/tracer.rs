//! The [`PathTracer`]: per-cell route reconstruction from hop events.
//!
//! The paper's locality argument (Definition 3, Theorem 3) is a statement
//! about *paths*: each splitter moves a cell toward even or odd outputs
//! using only local arbiter information, and the composition of those
//! local decisions is a correct global route. The tracer turns that from
//! a proof into a checkable runtime artifact — it records every
//! [`HopEvent`] a route emits, groups them by destination address, and
//! [`verify`](PathTracer::verify)s that the recorded hops form exactly
//! the path the network topology dictates:
//!
//! 1. **Coverage** — each cell crosses every column of every main stage,
//!    `m(m+1)/2` hops in lexicographic `(stage, column)` order.
//! 2. **Linkage** — each hop enters on the port the previous hop's exit
//!    wires to (box unshuffle inside a stage, main unshuffle between
//!    stages).
//! 3. **Radix invariant** — after a stage's last column the cell sits on
//!    a line whose parity equals its destination bit for that stage
//!    (the BSN has sorted the balanced bit-vector into `0101…`).
//! 4. **Delivery** — the exit of the final stage is the destination.
//!
//! Tracing a frame of `N` cells costs `N·m(m+1)/2` hop records, so the
//! tracer is a diagnostic sink, not a production default: it takes a
//! `Mutex` per hop and allocates as paths grow. For always-on recording
//! use `bnb_obs::FlightRecorder` with sampling instead.

use std::sync::Mutex;

use bnb_obs::{HopEvent, Observer};
use bnb_topology::bitops::{paper_bit, shuffle, unshuffle};

use crate::network::{BnbNetwork, WiringMode};

/// A recorded path that contradicts the network topology, the radix-sort
/// invariant, or the delivery contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// A cell recorded the wrong number of hops.
    HopCount {
        /// Destination address of the cell.
        dest: usize,
        /// Hops the topology dictates (`m(m+1)/2`).
        expected: usize,
        /// Hops actually recorded.
        actual: usize,
    },
    /// A hop is out of `(main stage, column)` lexicographic order.
    OutOfOrder {
        /// Destination address of the cell.
        dest: usize,
        /// Index of the offending hop in the cell's sequence.
        index: usize,
    },
    /// A hop entered on a port the previous hop's exit does not wire to.
    BrokenLink {
        /// Destination address of the cell.
        dest: usize,
        /// Main stage of the offending hop.
        main_stage: usize,
        /// Column of the offending hop.
        internal_stage: usize,
        /// Port the wiring dictates.
        expected_port: usize,
        /// Port the hop recorded.
        actual_port: usize,
    },
    /// A hop's splitter site or sweep ordinal disagrees with its port.
    WrongSite {
        /// Destination address of the cell.
        dest: usize,
        /// Main stage of the offending hop.
        main_stage: usize,
        /// Column of the offending hop.
        internal_stage: usize,
    },
    /// After a stage's last column the cell's line parity does not match
    /// its destination bit — the radix-sort invariant is violated.
    ParityViolation {
        /// Destination address of the cell.
        dest: usize,
        /// Main stage whose final column broke the invariant.
        main_stage: usize,
        /// Line the cell exited the column on.
        exit_port: usize,
    },
    /// The final stage delivered the cell to the wrong output line.
    WrongExit {
        /// Destination address of the cell.
        dest: usize,
        /// Line the route actually ends on.
        exit_port: usize,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PathError::HopCount {
                dest,
                expected,
                actual,
            } => write!(
                f,
                "cell {dest}: recorded {actual} hops, topology dictates {expected}"
            ),
            PathError::OutOfOrder { dest, index } => {
                write!(
                    f,
                    "cell {dest}: hop {index} is out of (stage, column) order"
                )
            }
            PathError::BrokenLink {
                dest,
                main_stage,
                internal_stage,
                expected_port,
                actual_port,
            } => write!(
                f,
                "cell {dest}: stage {main_stage} column {internal_stage} entered on port \
                 {actual_port}, wiring dictates {expected_port}"
            ),
            PathError::WrongSite {
                dest,
                main_stage,
                internal_stage,
            } => write!(
                f,
                "cell {dest}: stage {main_stage} column {internal_stage} splitter site \
                 disagrees with the entry port"
            ),
            PathError::ParityViolation {
                dest,
                main_stage,
                exit_port,
            } => write!(
                f,
                "cell {dest}: exited stage {main_stage} on port {exit_port}, whose parity \
                 contradicts destination bit {main_stage} (radix invariant)"
            ),
            PathError::WrongExit { dest, exit_port } => {
                write!(f, "cell {dest}: delivered to output {exit_port}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// Where one hop's exit wires to, mirroring the stage kernel's wiring
/// arms: inside a stage the per-box wiring over the low `bits` index
/// bits, after a stage the main wiring over the low `k` bits of the
/// global line.
fn wire(mode: WiringMode, bits: usize, width_log: usize, line: usize) -> usize {
    match mode {
        WiringMode::Unshuffle => unshuffle(bits, width_log, line),
        WiringMode::Identity => line,
        WiringMode::Shuffle => shuffle(bits, width_log, line),
    }
}

/// An [`Observer`] that records every hop, grouped by destination
/// address, and reconstructs + verifies full routes. See the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use bnb_core::{BnbNetwork, PathTracer};
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::records_for_permutation;
///
/// let net = BnbNetwork::new(3);
/// let tracer = PathTracer::with_inputs(net.inputs());
/// let perm = Permutation::try_from(vec![5, 2, 7, 0, 4, 6, 1, 3])?;
/// net.route_observed(&records_for_permutation(&perm), &tracer)?;
/// tracer.verify(&net)?; // every recorded path matches the topology
/// assert_eq!(tracer.hops_for(5).len(), 3 * 4 / 2); // m(m+1)/2
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PathTracer {
    hops: Mutex<Vec<Vec<HopEvent>>>,
}

impl PathTracer {
    /// A tracer for an `n`-input network. Hops whose destination is out
    /// of range (possible under `RoutePolicy::Permissive` garbage
    /// traffic) are ignored.
    pub fn with_inputs(n: usize) -> Self {
        PathTracer {
            hops: Mutex::new(vec![Vec::new(); n]),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Vec<HopEvent>>> {
        self.hops.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The recorded hops of destination `dest`, in emission order.
    pub fn hops_for(&self, dest: usize) -> Vec<HopEvent> {
        self.lock().get(dest).cloned().unwrap_or_default()
    }

    /// All recorded hops, indexed by destination; the tracer is left
    /// empty (sized as before) for reuse.
    pub fn take(&self) -> Vec<Vec<HopEvent>> {
        let mut guard = self.lock();
        let n = guard.len();
        std::mem::replace(&mut *guard, vec![Vec::new(); n])
    }

    /// Discards all recorded hops.
    pub fn clear(&self) {
        for path in self.lock().iter_mut() {
            path.clear();
        }
    }

    /// Total hops recorded (a full traced route of an `N = 2^m` frame
    /// yields `N·m(m+1)/2`).
    pub fn total_hops(&self) -> usize {
        self.lock().iter().map(Vec::len).sum()
    }

    /// Main-stage hops recorded — hops through a stage's first column
    /// (`internal_stage == 0`); exactly `m` per cell, `N·m` per frame.
    pub fn main_stage_hops(&self) -> usize {
        self.lock()
            .iter()
            .flatten()
            .filter(|h| h.internal_stage == 0)
            .count()
    }

    /// Verifies every recorded path against `net`'s topology: coverage,
    /// linkage, site consistency, the per-stage radix (parity)
    /// invariant, and final delivery. Destinations with no recorded
    /// hops are skipped (supports traced *slices*); call after a traced
    /// full route to check the whole permutation.
    ///
    /// # Errors
    ///
    /// The first [`PathError`] found, scanning destinations in order.
    pub fn verify(&self, net: &BnbNetwork) -> Result<(), PathError> {
        let m = net.m();
        let mode = net.wiring();
        let expected_hops = m * (m + 1) / 2;
        let guard = self.lock();
        for (dest, path) in guard.iter().enumerate() {
            if path.is_empty() {
                continue;
            }
            if path.len() != expected_hops {
                return Err(PathError::HopCount {
                    dest,
                    expected: expected_hops,
                    actual: path.len(),
                });
            }
            let mut port = path[0].port;
            let mut index = 0usize;
            for main_stage in 0..m {
                let k = m - main_stage;
                for internal in 0..k {
                    let hop = &path[index];
                    if hop.main_stage != main_stage || hop.internal_stage != internal {
                        return Err(PathError::OutOfOrder { dest, index });
                    }
                    if hop.port != port {
                        return Err(PathError::BrokenLink {
                            dest,
                            main_stage,
                            internal_stage: internal,
                            expected_port: port,
                            actual_port: hop.port,
                        });
                    }
                    let box_size = 1usize << (k - internal);
                    let site = port & !(box_size - 1);
                    if hop.first_line != site || hop.sweep != site / box_size {
                        return Err(PathError::WrongSite {
                            dest,
                            main_stage,
                            internal_stage: internal,
                        });
                    }
                    // The switch setting actually applied: pairs are
                    // even/odd adjacent, so an exchange flips the low bit.
                    let exit = if hop.exchanged { port ^ 1 } else { port };
                    let last_internal = internal + 1 == k;
                    if last_internal {
                        // Radix invariant: the stage's BSN has sorted the
                        // balanced destination-bit vector into 0101…, so
                        // the exit parity *is* the destination bit.
                        if (exit & 1 == 1) != paper_bit(m, dest, main_stage) {
                            return Err(PathError::ParityViolation {
                                dest,
                                main_stage,
                                exit_port: exit,
                            });
                        }
                        port = if main_stage + 1 < m {
                            wire(mode, k, m, exit)
                        } else {
                            exit
                        };
                    } else {
                        let box_log = k - internal;
                        port = site | wire(mode, box_log, box_log, exit & (box_size - 1));
                    }
                    index += 1;
                }
            }
            if port != dest {
                return Err(PathError::WrongExit {
                    dest,
                    exit_port: port,
                });
            }
        }
        Ok(())
    }

    /// Renders destination `dest`'s recorded path as one line per hop:
    /// stage, column, splitter site, sweep ordinal, entry port, and the
    /// applied setting (`=` straight, `x` exchange).
    pub fn render(&self, dest: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cell {dest}");
        for h in self.hops_for(dest) {
            let exit = if h.exchanged { h.port ^ 1 } else { h.port };
            let _ = writeln!(
                out,
                "  stage {} col {}  splitter@{} sweep {}  port {} {} {}",
                h.main_stage,
                h.internal_stage,
                h.first_line,
                h.sweep,
                h.port,
                if h.exchanged { "x" } else { "=" },
                exit,
            );
        }
        out
    }
}

impl Observer for PathTracer {
    #[inline]
    fn wants_hops(&self) -> bool {
        true
    }

    fn cell_hop(&self, event: HopEvent) {
        let mut guard = self.lock();
        if let Some(path) = guard.get_mut(event.dest) {
            path.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::records_for_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn traced_routes_verify_for_random_permutations() {
        let mut rng = StdRng::seed_from_u64(41);
        for m in 2usize..=4 {
            let n = 1usize << m;
            let net = BnbNetwork::new(m);
            for _ in 0..20 {
                let tracer = PathTracer::with_inputs(n);
                let records = records_for_permutation(&Permutation::random(n, &mut rng));
                net.route_observed(&records, &tracer).unwrap();
                tracer.verify(&net).unwrap();
                assert_eq!(tracer.total_hops(), n * m * (m + 1) / 2);
                assert_eq!(tracer.main_stage_hops(), n * m);
            }
        }
    }

    #[test]
    fn verify_holds_for_every_wiring_mode() {
        use crate::network::WiringMode;
        let mut rng = StdRng::seed_from_u64(42);
        for mode in [
            WiringMode::Unshuffle,
            WiringMode::Identity,
            WiringMode::Shuffle,
        ] {
            let m = 3;
            let n = 1usize << m;
            let net = BnbNetwork::builder(m).wiring(mode).build();
            let tracer = PathTracer::with_inputs(n);
            let records = records_for_permutation(&Permutation::random(n, &mut rng));
            // Non-unshuffle wirings are not guaranteed conflict-free for
            // all permutations; only verify routes that succeed.
            if net.route_observed(&records, &tracer).is_ok() {
                tracer.verify(&net).unwrap();
            }
        }
    }

    #[test]
    fn corrupted_hops_are_caught() {
        let m = 3;
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let tracer = PathTracer::with_inputs(n);
        let perm = Permutation::try_from(vec![5, 2, 7, 0, 4, 6, 1, 3]).unwrap();
        net.route_observed(&records_for_permutation(&perm), &tracer)
            .unwrap();
        tracer.verify(&net).unwrap();

        // Flip one recorded switch setting: the link to the next hop (or
        // the parity/delivery check) must break.
        let mut paths = tracer.take();
        paths[5][2].exchanged = !paths[5][2].exchanged;
        let corrupted = PathTracer {
            hops: Mutex::new(paths),
        };
        assert!(corrupted.verify(&net).is_err());

        // Drop one hop: the count check must fire first.
        let tracer = PathTracer::with_inputs(n);
        net.route_observed(&records_for_permutation(&perm), &tracer)
            .unwrap();
        let mut paths = tracer.take();
        paths[3].pop();
        let short = PathTracer {
            hops: Mutex::new(paths),
        };
        assert_eq!(
            short.verify(&net),
            Err(PathError::HopCount {
                dest: 3,
                expected: 6,
                actual: 5,
            })
        );
    }

    #[test]
    fn render_lists_one_line_per_hop() {
        let m = 2;
        let net = BnbNetwork::new(m);
        let tracer = PathTracer::with_inputs(4);
        let perm = Permutation::try_from(vec![2, 0, 3, 1]).unwrap();
        net.route_observed(&records_for_permutation(&perm), &tracer)
            .unwrap();
        let text = tracer.render(2);
        assert!(text.starts_with("cell 2"));
        assert_eq!(text.lines().count(), 1 + m * (m + 1) / 2);
        assert!(text.contains("stage 0 col 0"));
    }

    #[test]
    fn tracer_is_reusable_after_take_and_clear() {
        let net = BnbNetwork::new(2);
        let tracer = PathTracer::with_inputs(4);
        let perm = Permutation::try_from(vec![2, 0, 3, 1]).unwrap();
        net.route_observed(&records_for_permutation(&perm), &tracer)
            .unwrap();
        assert_eq!(tracer.total_hops(), 4 * 3);
        let taken = tracer.take();
        assert_eq!(taken.iter().map(Vec::len).sum::<usize>(), 12);
        assert_eq!(tracer.total_hops(), 0);
        net.route_observed(&records_for_permutation(&perm), &tracer)
            .unwrap();
        tracer.verify(&net).unwrap();
        tracer.clear();
        assert_eq!(tracer.total_hops(), 0);
    }
}
