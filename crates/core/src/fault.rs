//! Hardware fault injection and degraded-mode routing.
//!
//! The paper's self-routing guarantee (Theorems 3–5) assumes every
//! splitter `sp(p)` and 2×2 switch is healthy. This module models the
//! control plane breaking: a [`FaultMap`] addresses stuck elements by
//! `(main_stage, internal_stage, element)` and [`FaultyFabric`] routes
//! through the damaged network.
//!
//! # Fault model
//!
//! All three [`FaultKind`]s corrupt *control* decisions while the data
//! path keeps moving records, so every route conserves the record
//! multiset — a faulty fabric misdelivers, it never drops:
//!
//! - [`StuckStraight`] / [`StuckExchange`](FaultKind::StuckExchange) — a
//!   2×2 switch latched at 0 (straight) or 1 (exchange), ignoring its
//!   control bit. Addressed by global switch index (switch `e` covers
//!   lines `2e` and `2e + 1`).
//! - [`DeadArbiter`](FaultKind::DeadArbiter) — a splitter whose arbiter
//!   tree (Definition 6) stopped sweeping: every flag reads 0, so switch
//!   `t` falls back to the greedy control `s(2t)`. Addressed by global
//!   splitter-box index in the column.
//! - [`BrokenLink`](FaultKind::BrokenLink) — an address-tap line whose
//!   destination bit reads stuck-at-0 in the control plane while the
//!   record itself passes through unharmed. Addressed by global line.
//!
//! # Detection: the balance check as a built-in tester
//!
//! Detection piggybacks on the paper's local balance invariant
//! (Definition 3). A healthy splitter on a balanced input always
//! produces `M_e = M_o` (Theorem 3), and *any* even split — whichever
//! records it sends up or down — keeps the Theorem 1/2 induction intact,
//! so a route in which every splitter's **output** stays balanced is
//! correct. Conversely, the first splitter whose corrupted controls break
//! the invariant is caught on the spot. Under
//! [`RoutePolicy::Strict`](crate::network::RoutePolicy::Strict),
//! [`FaultyFabric`] therefore re-checks the output bits of every splitter
//! in a faulted column and returns
//! [`RouteError::HardwareFault`] instead of misdelivering: every single
//! injected fault is either *detected* or provably *harmless* (the
//! exhaustive `hardware_faults` test sweeps all of them). Permissive
//! routes skip detection, conserve the records, and let the caller count
//! misdeliveries — the degraded mode the sim campaigns measure.
//!
//! [`StuckStraight`]: FaultKind::StuckStraight

use std::fmt;

use bnb_obs::{NoopObserver, Observer};
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

use crate::error::RouteError;
use crate::network::BnbNetwork;
use crate::stages::{route_span_inner, validate_lines, StageScratch};

/// The ways a switching element can be broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// 2×2 switch stuck-at-0: always passes straight through.
    StuckStraight,
    /// 2×2 switch stuck-at-1: always exchanges its pair.
    StuckExchange,
    /// Splitter arbiter tree dead: all flags read 0, so controls degrade
    /// to the greedy `control_t = s(2t)`.
    DeadArbiter,
    /// Address-tap link broken: the control plane reads this line's
    /// destination bit as 0; the record itself is unaffected.
    BrokenLink,
}

impl FaultKind {
    /// Number of valid [`FaultSite::element`] indices for this kind in
    /// one column of an `N = 2^m` network: switches and links span the
    /// whole column (`N/2` and `N`), arbiters are one per splitter box.
    pub fn elements(self, m: usize, main_stage: usize, internal_stage: usize) -> usize {
        let n = 1usize << m;
        let box_size = 1usize << (m - main_stage - internal_stage);
        match self {
            FaultKind::StuckStraight | FaultKind::StuckExchange => n / 2,
            FaultKind::DeadArbiter => n / box_size,
            FaultKind::BrokenLink => n,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::StuckStraight => "stuck-straight",
            FaultKind::StuckExchange => "stuck-exchange",
            FaultKind::DeadArbiter => "dead-arbiter",
            FaultKind::BrokenLink => "broken-link",
        })
    }
}

/// Where a fault sits: a switching column plus an element index whose
/// domain depends on the [`FaultKind`] (see [`FaultKind::elements`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSite {
    /// Main-network stage (`0..m`).
    pub main_stage: usize,
    /// Column within the stage's nested networks (`0..m - main_stage`).
    pub internal_stage: usize,
    /// Global element index within the column: switch index, splitter-box
    /// index, or line index depending on the kind.
    pub element: usize,
}

impl FaultSite {
    /// A site at the given column and element.
    pub fn new(main_stage: usize, internal_stage: usize, element: usize) -> Self {
        FaultSite {
            main_stage,
            internal_stage,
            element,
        }
    }
}

/// One injected fault: a kind at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HardwareFault {
    /// Where the broken element sits.
    pub site: FaultSite,
    /// How it is broken.
    pub kind: FaultKind,
}

impl HardwareFault {
    /// Whether the site addresses a real element of an `N = 2^m` network.
    pub fn in_bounds(&self, m: usize) -> bool {
        let s = self.site;
        s.main_stage < m
            && s.internal_stage < m - s.main_stage
            && s.element < self.kind.elements(m, s.main_stage, s.internal_stage)
    }
}

/// A set of injected hardware faults, applied by [`FaultyFabric`] (or
/// per-shard by the engine's `FaultPlan`).
///
/// An empty map is the healthy fabric: routing takes exactly the
/// fault-free code path and stays allocation-free (covered by the
/// workspace zero-alloc test).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    faults: Vec<HardwareFault>,
}

impl FaultMap {
    /// An empty (healthy) map.
    pub fn new() -> Self {
        FaultMap::default()
    }

    /// A map holding one fault.
    pub fn single(site: FaultSite, kind: FaultKind) -> Self {
        let mut map = FaultMap::new();
        map.insert(site, kind);
        map
    }

    /// Injects a fault. Duplicate sites are kept; the first matching
    /// entry wins where kinds conflict.
    pub fn insert(&mut self, site: FaultSite, kind: FaultKind) {
        self.faults.push(HardwareFault { site, kind });
    }

    /// Whether the fabric is healthy.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Removes every fault.
    pub fn clear(&mut self) {
        self.faults.clear();
    }

    /// Iterates over the injected faults.
    pub fn iter(&self) -> impl Iterator<Item = &HardwareFault> {
        self.faults.iter()
    }

    /// Whether every fault addresses a real element of an `N = 2^m`
    /// network.
    pub fn in_bounds(&self, m: usize) -> bool {
        self.faults.iter().all(|f| f.in_bounds(m))
    }

    /// Whether any fault sits in the given column.
    pub(crate) fn affects(&self, main_stage: usize, internal_stage: usize) -> bool {
        self.faults
            .iter()
            .any(|f| f.site.main_stage == main_stage && f.site.internal_stage == internal_stage)
    }

    /// Applies broken-link taps to the control plane's view of one
    /// splitter box's destination bits (`bits` covers global lines
    /// `global_start..global_start + bits.len()`).
    pub(crate) fn tap_bits(
        &self,
        main_stage: usize,
        internal_stage: usize,
        global_start: usize,
        bits: &mut [bool],
    ) {
        for f in &self.faults {
            if f.kind == FaultKind::BrokenLink
                && f.site.main_stage == main_stage
                && f.site.internal_stage == internal_stage
                && (global_start..global_start + bits.len()).contains(&f.site.element)
            {
                bits[f.site.element - global_start] = false;
            }
        }
    }

    /// Applies dead-arbiter and stuck-switch overrides to one box's
    /// exchange flags. `bits` is the (tapped) control-plane bit view of
    /// the box starting at global line `global_start`; `flags[t]`
    /// controls the switch over lines `2t` and `2t + 1` of the box.
    pub(crate) fn override_flags(
        &self,
        main_stage: usize,
        internal_stage: usize,
        global_start: usize,
        bits: &[bool],
        flags: &mut [bool],
    ) {
        let box_size = bits.len();
        let box_index = global_start / box_size;
        let first_switch = global_start / 2;
        for f in &self.faults {
            if f.site.main_stage != main_stage || f.site.internal_stage != internal_stage {
                continue;
            }
            match f.kind {
                // Dead arbiter first: stuck switches below still override
                // the greedy fallback, like the physical latch would.
                FaultKind::DeadArbiter if f.site.element == box_index => {
                    for (t, flag) in flags.iter_mut().enumerate() {
                        *flag = bits[2 * t];
                    }
                }
                _ => {}
            }
        }
        for f in &self.faults {
            if f.site.main_stage != main_stage || f.site.internal_stage != internal_stage {
                continue;
            }
            let stuck = match f.kind {
                FaultKind::StuckStraight => false,
                FaultKind::StuckExchange => true,
                _ => continue,
            };
            if let Some(t) = f.site.element.checked_sub(first_switch) {
                if t < flags.len() {
                    flags[t] = stuck;
                }
            }
        }
    }
}

impl FromIterator<HardwareFault> for FaultMap {
    fn from_iter<I: IntoIterator<Item = HardwareFault>>(iter: I) -> Self {
        FaultMap {
            faults: iter.into_iter().collect(),
        }
    }
}

/// A [`Router`](crate::router::Router)-shaped fabric with injected
/// hardware faults: owns its scratch, routes in place, and (under strict
/// policy) detects control corruption via the output balance check
/// instead of misdelivering — see the module docs for the fault model.
///
/// # Example
///
/// ```
/// use bnb_core::fault::{FaultKind, FaultMap, FaultSite, FaultyFabric};
/// use bnb_core::network::BnbNetwork;
/// use bnb_core::RouteError;
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::records_for_permutation;
///
/// let net = BnbNetwork::builder(3).build();
/// // Jam the very first switch into "exchange".
/// let faults = FaultMap::single(FaultSite::new(0, 0, 0), FaultKind::StuckExchange);
/// let mut fabric = FaultyFabric::new(net, faults);
/// let p = Permutation::try_from(vec![6, 3, 0, 5, 2, 7, 4, 1])?;
/// let lines = records_for_permutation(&p);
/// // Strict policy: the stuck switch is caught, never misdelivered.
/// match fabric.route(&lines) {
///     Ok(out) => assert!(bnb_topology::record::all_delivered(&out)),
///     Err(RouteError::HardwareFault { main_stage, .. }) => assert_eq!(main_stage, 0),
///     Err(other) => panic!("unexpected error: {other}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultyFabric<O: Observer = NoopObserver> {
    network: BnbNetwork,
    faults: FaultMap,
    scratch: StageScratch,
    seen: Vec<usize>,
    observer: O,
}

impl FaultyFabric {
    /// An unobserved faulty fabric over `network`.
    pub fn new(network: BnbNetwork, faults: FaultMap) -> Self {
        FaultyFabric::with_observer(network, faults, NoopObserver)
    }
}

impl<O: Observer> FaultyFabric<O> {
    /// A faulty fabric emitting routing (and [`FaultEvent`]) events to
    /// `observer`.
    ///
    /// [`FaultEvent`]: bnb_obs::FaultEvent
    pub fn with_observer(network: BnbNetwork, faults: FaultMap, observer: O) -> Self {
        let n = network.inputs();
        FaultyFabric {
            network,
            faults,
            scratch: StageScratch::with_capacity(n),
            seen: vec![usize::MAX; n],
            observer,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &BnbNetwork {
        &self.network
    }

    /// The injected faults.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Replaces the injected faults (e.g. between campaign trials).
    pub fn set_faults(&mut self, faults: FaultMap) {
        self.faults = faults;
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Routes `lines` in place through the faulted fabric.
    ///
    /// # Errors
    ///
    /// Everything [`BnbNetwork::route`] reports, plus
    /// [`RouteError::HardwareFault`] under strict policy when an injected
    /// fault corrupts a splitter's split. Permissive routes only fail
    /// validation; they conserve the record multiset and may misdeliver.
    pub fn route_in_place(&mut self, lines: &mut [Record]) -> Result<(), RouteError> {
        validate_lines(&self.network, lines, &mut self.seen)?;
        route_span_inner(
            &self.network,
            lines,
            0,
            0..self.network.m(),
            &mut self.scratch,
            &self.observer,
            Some(&self.faults),
        )
    }

    /// Allocating convenience wrapper around [`route_in_place`].
    ///
    /// [`route_in_place`]: FaultyFabric::route_in_place
    pub fn route(&mut self, lines: &[Record]) -> Result<Vec<Record>, RouteError> {
        let mut out = lines.to_vec();
        self.route_in_place(&mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoutePolicy;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::{all_delivered, records_for_permutation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_map_matches_healthy_router() {
        let mut rng = StdRng::seed_from_u64(90);
        for m in [1usize, 3, 5] {
            let net = BnbNetwork::builder(m).build();
            let mut fabric = FaultyFabric::new(net, FaultMap::new());
            for _ in 0..10 {
                let lines = records_for_permutation(&Permutation::random(1 << m, &mut rng));
                let expected = net.route(&lines).unwrap();
                assert_eq!(fabric.route(&lines).unwrap(), expected, "m = {m}");
            }
        }
    }

    #[test]
    fn stuck_exchange_is_detected_under_strict() {
        let net = BnbNetwork::builder(2).build();
        let faults = FaultMap::single(FaultSite::new(1, 0, 0), FaultKind::StuckExchange);
        let mut fabric = FaultyFabric::new(net, faults);
        let mut rng = StdRng::seed_from_u64(91);
        let mut caught = 0;
        for _ in 0..40 {
            let lines = records_for_permutation(&Permutation::random(4, &mut rng));
            match fabric.route(&lines) {
                Ok(out) => assert!(all_delivered(&out), "silent misdelivery"),
                Err(RouteError::HardwareFault {
                    main_stage,
                    internal_stage,
                    ..
                }) => {
                    assert_eq!((main_stage, internal_stage), (1, 0));
                    caught += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(caught > 0, "fault never fired across 40 permutations");
    }

    #[test]
    fn permissive_routes_conserve_records() {
        let net = BnbNetwork::builder(3)
            .policy(RoutePolicy::Permissive)
            .build();
        let faults = FaultMap::single(FaultSite::new(0, 1, 2), FaultKind::DeadArbiter);
        let mut fabric = FaultyFabric::new(net, faults);
        let mut rng = StdRng::seed_from_u64(92);
        for _ in 0..20 {
            let lines = records_for_permutation(&Permutation::random(8, &mut rng));
            let mut out = fabric.route(&lines).unwrap();
            let mut expected = lines.clone();
            out.sort();
            expected.sort();
            assert_eq!(out, expected, "record multiset must be conserved");
        }
    }

    #[test]
    fn broken_link_on_zero_bit_is_harmless() {
        // Line 0's record targets destination 0, so every stage-0 address
        // bit it taps is already 0: the stuck-at-0 tap changes nothing.
        let net = BnbNetwork::builder(3).build();
        let faults = FaultMap::single(FaultSite::new(0, 0, 0), FaultKind::BrokenLink);
        let mut fabric = FaultyFabric::new(net, faults);
        let lines = records_for_permutation(&Permutation::identity(8));
        let out = fabric.route(&lines).unwrap();
        assert!(all_delivered(&out));
    }

    #[test]
    fn element_domains_follow_the_topology() {
        // m = 3, column (0, 0): one 8-wide box, 4 switches, 8 lines.
        assert_eq!(FaultKind::DeadArbiter.elements(3, 0, 0), 1);
        assert_eq!(FaultKind::StuckStraight.elements(3, 0, 0), 4);
        assert_eq!(FaultKind::BrokenLink.elements(3, 0, 0), 8);
        // Column (1, 1): sp(1) boxes, width 2 → 4 boxes.
        assert_eq!(FaultKind::DeadArbiter.elements(3, 1, 1), 4);
        let f = HardwareFault {
            site: FaultSite::new(2, 0, 3),
            kind: FaultKind::DeadArbiter,
        };
        assert!(f.in_bounds(3));
        assert!(!f.in_bounds(2));
    }
}
