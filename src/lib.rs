//! # bnb — the BNB self-routing permutation network
//!
//! A full reproduction of *"BNB Self-Routing Permutation Network"*
//! (Sungchang Lee and Mi Lu, ICDCS 1991): an `N = 2^m`-input multistage
//! switching network that routes **any** of the `N!` permutations of its
//! inputs without path conflicts and without a global routing computation,
//! in `O(N·log³N)` hardware and `O(log³N)` delay — about one third of the
//! hardware and two thirds of the delay of Batcher's sorting network.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! - [`topology`] — permutations, unshuffle wiring, generalized baseline
//!   networks (the substrate everything is built on).
//! - [`core`] — splitters, arbiters, bit-sorter networks, the BNB network
//!   itself, and the paper's cost/delay accounting.
//! - [`gates`] — a gate-level netlist simulator with builders for every
//!   hardware component in the paper (Figs. 4–5), used to cross-validate
//!   the behavioural simulator.
//! - [`baselines`] — Batcher odd–even and bitonic sorters, Benes with
//!   Waksman's looping algorithm, the Koppelman–Oruç SRPN model, crossbar
//!   and omega networks.
//! - [`analysis`] — the paper's Tables 1–2 and the 1/3-hardware /
//!   2/3-delay ratio analysis.
//! - [`sim`] — cycle-level pipelined fabric simulation, classic
//!   parallel-processing workloads, and fault injection.
//! - [`engine`] — a concurrent batched routing engine: bounded submit/
//!   drain queue, scoped worker pool, and intra-batch subnetwork sharding
//!   that mirrors the paper's recursive GBN structure.
//! - [`obs`] — zero-cost-when-disabled observability: the [`obs::Observer`]
//!   event hooks every routing layer emits through, lock-free
//!   [`obs::Counters`], latency histograms, the bounded
//!   [`obs::FlightRecorder`] span ring, and exporters for text, JSON,
//!   Prometheus exposition format, and Chrome trace-event JSON. Per-cell
//!   path tracing ([`core::tracer::PathTracer`]) rides the same hooks.
//! - [`serve`] — a long-lived routing service over `std::net`: a
//!   length-prefixed binary protocol ([`serve::protocol`]), a threaded
//!   server with per-tenant admission control, bounded-queue
//!   backpressure (explicit `RETRY`, never unbounded buffering), graceful
//!   drain, and a Prometheus `/metrics` endpoint
//!   ([`serve::server::Server`]), plus an open/closed-loop load generator
//!   ([`serve::loadgen`]) that verifies every routed permutation.
//!
//! # Quickstart
//!
//! ```
//! use bnb::core::network::BnbNetwork;
//! use bnb::topology::perm::Permutation;
//! use bnb::topology::record::{records_for_permutation, all_delivered};
//!
//! // A 16-input network; every record self-routes to its destination.
//! let net = BnbNetwork::builder_for(16)?.build();
//! let perm = Permutation::try_from(
//!     vec![3, 14, 0, 9, 7, 12, 1, 15, 5, 10, 2, 13, 4, 11, 6, 8],
//! )?;
//! let outputs = net.route(&records_for_permutation(&perm))?;
//! assert!(all_delivered(&outputs));
//!
//! // The paper's complexity model, measured on the constructed network:
//! let cost = net.cost();
//! println!("hardware: {cost}");
//! println!("delay:    {}", net.delay());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use bnb_analysis as analysis;
pub use bnb_baselines as baselines;
pub use bnb_core as core;
pub use bnb_engine as engine;
pub use bnb_gates as gates;
pub use bnb_obs as obs;
pub use bnb_serve as serve;
pub use bnb_sim as sim;
pub use bnb_topology as topology;
