//! Bursty traffic over a permutation network: an input-queued 16-port
//! switch decomposes arbitrary (many-to-one, bursty) traffic into
//! permutation rounds and drains them through the BNB fabric.
//!
//! Demonstrates head-of-line blocking with plain FIFOs versus virtual
//! output queues, against the congestion lower bound.
//!
//! Run with: `cargo run --example traffic_scheduler`

use bnb::core::network::BnbNetwork;
use bnb::sim::scheduler::{QueueDiscipline, VoqSwitch};
use bnb::topology::record::Record;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const M: usize = 4; // 16-port switch
    let n = 1usize << M;

    // A bursty trace: hot output 3 gets 25% of all records.
    let mut rng = StdRng::seed_from_u64(7);
    let trace: Vec<(usize, Record)> = (0..300u64)
        .map(|k| {
            let input = rng.random_range(0..n);
            let dest = if rng.random_bool(0.25) {
                3
            } else {
                rng.random_range(0..n)
            };
            (input, Record::new(dest, k))
        })
        .collect();

    for discipline in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
        let mut sw = VoqSwitch::new(BnbNetwork::builder_for(n)?.build(), discipline);
        for &(input, record) in &trace {
            sw.offer(input, record)?;
        }
        let bound = sw.lower_bound();
        let stats = sw.run_to_completion(100_000)?;
        println!(
            "{discipline:?}: drained {} records in {} rounds (congestion bound {}, efficiency {:.2})",
            stats.delivered,
            stats.rounds,
            bound,
            stats.efficiency()
        );
    }

    println!("\nevery round above was a real pass through the self-routing BNB fabric");
    println!("(partial permutations completed with filler destinations, paper §4 assumption)");
    Ok(())
}
