//! A line-rate fabric scenario: a 256-port switch routes a stream of cell
//! batches through the concurrent `bnb-engine` — bounded submission queue
//! for backpressure, a scoped worker pool, and intra-batch subnetwork
//! sharding that mirrors the paper's recursive GBN structure (after main
//! stage `i`, the unshuffle splits the frame into independent subnetworks
//! that different workers finish concurrently).
//!
//! Prints a worker-scaling table plus the engine's own stats snapshot
//! (latency histogram quantiles, queue high-water mark, utilization).
//!
//! Run with: `cargo run --release --example engine_throughput`

use std::time::Instant;

use bnb::core::network::BnbNetwork;
use bnb::core::router::Router;
use bnb::engine::{Engine, EngineConfig, ShardDepth};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const M: usize = 8; // 256-port switch
    const BATCHES: usize = 200;
    let n = 1usize << M;
    let net = BnbNetwork::builder(M).data_width(48).build();
    let mut rng = StdRng::seed_from_u64(2026);
    let batches: Vec<Vec<Record>> = (0..BATCHES)
        .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
        .collect();

    // Single-threaded reference: the allocation-free Router.
    let mut router = Router::new(net);
    let mut buf = batches[0].clone();
    let t0 = Instant::now();
    for batch in &batches {
        buf.copy_from_slice(batch);
        router.route_in_place(&mut buf)?;
    }
    let base = t0.elapsed();
    let base_rate = (n * BATCHES) as f64 / base.as_secs_f64();
    println!(
        "{n}-port fabric, {BATCHES} batches ({} records)",
        n * BATCHES
    );
    println!("\n  workers  records/sec  speedup  shard-depth  queue-hwm");
    println!("  baseline {base_rate:>12.0}     1.00x  (sequential Router)");

    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(
            net,
            EngineConfig {
                workers,
                queue_capacity: 8,
                shard_depth: ShardDepth::Auto,
            },
        );
        let stats = engine.run(|h| {
            for batch in &batches {
                h.submit(batch.clone());
                while h.try_drain().is_some() {}
            }
            while h.drain().is_some() {}
            h.stats()
        });
        println!(
            "  {workers:>7}  {:>11.0}  {:>6.2}x  {:>11}  {:>9}",
            stats.records_per_sec,
            stats.records_per_sec / base_rate,
            stats.shard_depth,
            stats.queue_high_water,
        );
    }

    // A closer look at one configuration's latency profile.
    let engine = Engine::new(net, EngineConfig::with_workers(4));
    let stats = engine.run(|h| {
        for batch in &batches {
            h.submit(batch.clone());
            while h.try_drain().is_some() {}
        }
        while h.drain().is_some() {}
        h.stats()
    });
    println!("\n4-worker engine, per-batch latency (submit -> drain):");
    println!("  min  {:>10} ns", stats.latency.min_ns);
    println!("  p50  {:>10} ns", stats.latency.p50_ns);
    println!("  p99  {:>10} ns", stats.latency.p99_ns);
    println!("  max  {:>10} ns", stats.latency.max_ns);
    println!("  mean {:>10} ns", stats.latency.mean_ns);
    let busiest = stats
        .worker_utilization
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    println!(
        "  throughput {:.0} records/sec, busiest worker {:.0}% utilized",
        stats.records_per_sec,
        busiest * 100.0
    );
    Ok(())
}
