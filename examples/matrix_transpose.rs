//! Array-processor data alignment (paper §1, Lawrie \[2\]): a 16×16 matrix
//! spread over 256 memory modules must be transposed, bit-reversed (FFT),
//! and accessed with odd strides — each a permutation the interconnection
//! network must realize in one pass.
//!
//! The example streams every classic alignment workload through the
//! pipelined BNB fabric and shows the crossbar delivering the same
//! permutations at 64× the hardware.
//!
//! Run with: `cargo run --example matrix_transpose`

use bnb::baselines::crossbar::Crossbar;
use bnb::core::network::BnbNetwork;
use bnb::sim::pipeline::PipelinedFabric;
use bnb::sim::workload::Workload;
use bnb::topology::record::{all_delivered, records_for_permutation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const M: usize = 8; // N = 256 processing elements / memory modules
    let n = 1usize << M;
    let net = BnbNetwork::builder(M).data_width(32).build();
    let fabric = PipelinedFabric::new(net);

    println!(
        "N = {n} array processor, BNB fabric depth {} cycles\n",
        fabric.depth()
    );

    let workloads = Workload::all_for(n);
    println!("alignment workloads:");
    for w in &workloads {
        let p = w.permutation(n);
        let out = fabric.network().route(&records_for_permutation(&p))?;
        assert!(all_delivered(&out));
        println!("  {w:?}: {} records aligned in one pass", out.len());
    }

    // Stream them back-to-back: one alignment per cycle at steady state.
    let batches: Vec<_> = workloads.iter().map(|w| w.permutation(n)).collect();
    let stats = fabric.run(&batches)?;
    println!(
        "\npipelined: {} alignments in {} cycles (latency {} cycles, throughput {:.2}/cycle)",
        stats.completed, stats.cycles, stats.latency, stats.throughput
    );

    // The crossbar alternative: same capability, quadratic hardware.
    let xbar = Crossbar::new(n);
    let bnb_cost = fabric.network().cost();
    println!("\nhardware comparison at N = {n}:");
    println!("  crossbar: {} crosspoints", xbar.crosspoint_count());
    println!("  BNB:      {bnb_cost}");
    println!(
        "  crosspoints / BNB switches = {:.1}x",
        xbar.crosspoint_count() as f64 / bnb_cost.switches as f64
    );
    Ok(())
}
