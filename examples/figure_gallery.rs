//! Regenerates the paper's structural figures from the constructed
//! objects:
//!
//! - Fig. 1 — the 8-input generalized baseline network `B(3, SB)`;
//! - Fig. 2 — the BNB network `B(3, B_k^3(i, SB_k))` slice structure;
//! - Fig. 3 — the nested-network profile `NB(i, l)`;
//! - Fig. 4 — the 8-input splitter `sp(3)`;
//! - Fig. 5 — the arbiter function node (exhaustive truth table from the
//!   gate-level netlist).
//!
//! Run with: `cargo run --example figure_gallery`

use bnb::core::network::BnbNetwork;
use bnb::core::render::{render_network, render_profile, render_splitter};
use bnb::gates::components::function_node;
use bnb::gates::netlist::Netlist;
use bnb::topology::connection::Connection;
use bnb::topology::gbn::Gbn;
use bnb::topology::render::{render_gbn_ascii, render_gbn_dot, render_wiring};

fn main() {
    println!("==== Fig. 1 — 8-input generalized baseline network ====\n");
    let gbn = Gbn::new(3);
    print!("{}", render_gbn_ascii(&gbn));
    println!("\nwiring detail:");
    print!("{}", render_wiring(&Connection::Unshuffle { k: 3 }, 3));
    print!("{}", render_wiring(&Connection::Unshuffle { k: 2 }, 3));

    println!("\n==== Fig. 2 — BNB network B(3, B_k^3(i, SB_k)) ====\n");
    let net = BnbNetwork::builder(3).data_width(0).build();
    print!("{}", render_network(&net));

    println!("\n==== Fig. 3 — profile of the BNB network ====\n");
    print!("{}", render_profile(3));

    println!("\n==== Fig. 4 — 8-input splitter sp(3) ====\n");
    print!("{}", render_splitter(3));

    println!("\n==== Fig. 5 — function node truth table (gate level) ====\n");
    let mut nl = Netlist::new();
    let x1 = nl.input("x1");
    let x2 = nl.input("x2");
    let zd = nl.input("zd");
    let node = function_node(&mut nl, x1, x2, zd);
    nl.output("zu", node.zu);
    nl.output("y1", node.y1);
    nl.output("y2", node.y2);
    println!("x1 x2 zd | zu y1 y2   (type-1: zu=0 generates 0/1; type-2: forwards zd)");
    for bits in 0..8u8 {
        let inputs = [bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
        let out = nl.eval(&inputs).expect("3 inputs, 3 outputs");
        println!(
            " {}  {}  {} |  {}  {}  {}",
            u8::from(inputs[0]),
            u8::from(inputs[1]),
            u8::from(inputs[2]),
            u8::from(out[0]),
            u8::from(out[1]),
            u8::from(out[2])
        );
    }

    println!("\n==== bonus: Fig. 1 as Graphviz DOT ====\n");
    print!("{}", render_gbn_dot(&gbn));
}
