//! Regenerates the paper's evaluation (§5): Table 1 (hardware), Table 2
//! (delay), and the headline 1/3-hardware / 2/3-delay ratios, from both the
//! closed forms and the constructed networks.
//!
//! Run with: `cargo run --example hardware_comparison`

use bnb::analysis::report::{ablation_local_vs_global, ablation_wiring_summary, ratio_table};
use bnb::analysis::{table1, table2};

fn main() {
    let ms = [3usize, 4, 5, 6, 8, 10];

    println!("{}", table1(&ms, 8).to_markdown());
    println!("{}", table2(&ms).to_markdown());
    println!("{}", ratio_table(&[3, 5, 8, 10, 14, 20], 0).to_markdown());
    println!("{}", ablation_local_vs_global(&ms).to_markdown());
    println!("{}", ablation_wiring_summary(5, 100, 11));

    println!("paper claims (leading terms): hardware ratio -> 1/3, delay ratio -> 2/3");
}
