//! Quickstart: build a BNB network, self-route a permutation, inspect the
//! per-column trace, and print the paper's complexity figures for the
//! constructed network.
//!
//! Run with: `cargo run --example quickstart`

use bnb::core::network::BnbNetwork;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-input BNB network (m = 3): three main stages of nested
    // networks, 6 switch columns in total.
    let net = BnbNetwork::builder_for(8)?.build();

    // Any permutation of 0..8 self-routes; no global routing computation.
    let perm = Permutation::try_from(vec![6, 2, 7, 0, 4, 1, 3, 5])?;
    println!("offered permutation: {perm}");

    let (outputs, trace) = net.route_traced(&records_for_permutation(&perm))?;
    assert!(all_delivered(&outputs));

    println!("\nper-column destination trace (column i.j = main stage i, internal stage j):");
    print!("{trace}");
    println!(
        "\nswitch columns traversed: {} (= m(m+1)/2)",
        trace.column_count()
    );
    println!("exchange settings chosen: {}", trace.exchange_count());

    println!("\noutputs (line <- record):");
    for (j, r) in outputs.iter().enumerate() {
        println!("  output {j}: {r} (came from input {})", r.data());
    }

    // The paper's §5 complexity model, counted on this very network.
    println!("\nhardware (eq. 6):  {}", net.cost());
    println!("delay    (eq. 9):  {}", net.delay());
    Ok(())
}
