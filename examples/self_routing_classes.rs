//! The self-routing landscape the paper's §1 surveys, measured on working
//! implementations:
//!
//! - destination-tag networks (omega/baseline) self-route a tiny class;
//! - bit-controlled Benes (refs [7, 8]) self-routes a *rich* class — all
//!   bit-permute-complement permutations — but not everything;
//! - the BNB network self-routes all N! permutations.
//!
//! Run with: `cargo run --example self_routing_classes`

use bnb::baselines::benes_self::{bpc_permutation, SelfRoutingBenes};
use bnb::baselines::omega::OmegaNetwork;
use bnb::core::network::BnbNetwork;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 8;
    let omega = OmegaNetwork::with_inputs(N)?;
    let benes = SelfRoutingBenes::with_inputs(N)?;
    let bnb = BnbNetwork::builder_for(N)?.build();

    // 1) Class sizes at N = 8 by exhaustive enumeration (40 320 perms).
    let omega_count = omega.count_admissible();
    let benes_count = benes.count_self_routable();
    let mut bnb_count = 0u64;
    for k in 0..40_320u64 {
        let p = Permutation::nth_lexicographic(N, k);
        if bnb
            .route(&records_for_permutation(&p))
            .map(|o| all_delivered(&o))
            .unwrap_or(false)
        {
            bnb_count += 1;
        }
    }
    println!("self-routable permutations at N = {N} (of 40 320):");
    println!(
        "  omega destination-tag:   {omega_count:>6}  ({:.1}%)",
        pct(omega_count)
    );
    println!(
        "  bit-controlled Benes:    {benes_count:>6}  ({:.1}%)",
        pct(benes_count)
    );
    println!(
        "  BNB (this paper):        {bnb_count:>6}  ({:.1}%)",
        pct(bnb_count)
    );

    // 2) The BPC class: every member self-routes on the Benes.
    println!("\nBPC (bit-permute-complement) class on the bit-controlled Benes:");
    let mut bpc_total = 0;
    let mut bpc_ok = 0;
    for k in 0..6u64 {
        let bp = Permutation::nth_lexicographic(3, k);
        for mask in 0..N {
            let p = bpc_permutation(3, bp.as_slice(), mask)?;
            bpc_total += 1;
            if benes.route(&records_for_permutation(&p))?.is_ok() {
                bpc_ok += 1;
            }
        }
    }
    println!("  {bpc_ok}/{bpc_total} BPC permutations self-route (transpose, shuffle,");
    println!("  bit-reversal, complement — every classic alignment pattern)");

    // 3) A permutation only the BNB handles.
    for k in 0..40_320u64 {
        let p = Permutation::nth_lexicographic(N, k);
        let recs = records_for_permutation(&p);
        if omega.route(&recs)?.is_err() && benes.route(&recs)?.is_err() {
            let out = bnb.route(&recs)?;
            assert!(all_delivered(&out));
            println!("\nexample permutation {p}:");
            println!("  omega: blocked; bit-controlled Benes: blocked; BNB: delivered");
            break;
        }
    }
    Ok(())
}

fn pct(count: u64) -> f64 {
    count as f64 / 40_320.0 * 100.0
}
