//! A switching-system scenario (paper §1): a 64-port packet switch uses the
//! BNB network as its fabric. Each cycle, the scheduler offers a batch of
//! cells — usually a full permutation, occasionally malformed traffic. The
//! fabric self-routes valid batches at one batch per cycle and *detects*
//! malformed ones instead of silently misdelivering.
//!
//! Run with: `cargo run --example switch_fabric`

use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::sim::faults::{classify, inject, Fault, Outcome};
use bnb::sim::pipeline::PipelinedFabric;
use bnb::sim::workload::random_batches;
use bnb::topology::perm::Permutation;
use bnb::topology::record::records_for_permutation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const M: usize = 6; // 64-port switch
    let n = 1usize << M;
    let mut rng = StdRng::seed_from_u64(2026);

    // Data path: strict validation — the fabric refuses malformed batches.
    let strict = BnbNetwork::builder(M)
        .data_width(48)
        .policy(RoutePolicy::Strict)
        .build();
    let fabric = PipelinedFabric::new(strict);

    // 1) Steady-state switching: 1000 random cell batches.
    let batches = random_batches(n, 1000, &mut rng);
    let stats = fabric.run(&batches)?;
    println!(
        "switched {} batches ({} cells) in {} cycles — throughput {:.3} batches/cycle, latency {} cycles",
        stats.completed, stats.records_delivered, stats.cycles, stats.throughput, stats.latency
    );

    // 2) Malformed traffic: a scheduler bug duplicates a destination.
    println!("\nfault handling:");
    let p = Permutation::random(n, &mut rng);
    let mut cells = records_for_permutation(&p);
    inject(
        &mut cells,
        Fault::DuplicateDestination {
            line: rng.random_range(0..n),
        },
    );
    match classify(fabric.network(), &cells) {
        Outcome::DetectedAtInput(msg) => {
            println!("  strict fabric rejected the batch at input: {msg}");
        }
        Outcome::DetectedAtSplitter {
            main_stage,
            internal_stage,
        } => {
            println!(
                "  strict fabric detected imbalance at main stage {main_stage}, internal stage {internal_stage}"
            );
        }
        Outcome::Routed { misdelivered } => {
            println!("  UNEXPECTED: routed with {misdelivered} misdeliveries");
        }
        other => println!("  unexpected outcome: {other:?}"),
    }

    // The same batch through a permissive (hardware-faithful) fabric:
    let permissive = BnbNetwork::builder(M)
        .data_width(48)
        .policy(RoutePolicy::Permissive)
        .build();
    if let Outcome::Routed { misdelivered } = classify(&permissive, &cells) {
        println!("  permissive fabric routed anyway: {misdelivered} cells misdelivered");
    }

    println!("\nconclusion: validate at the scheduler, or pay with misdelivered cells.");
    Ok(())
}
